"""Shared benchmark helpers.

Each benchmark runs one figure's experiment at reduced scale (documented
inline; paper-scale parameters are in EXPERIMENTS.md), prints a
paper-vs-measured table straight to the terminal, and asserts the
qualitative shape the paper reports.
"""

from __future__ import annotations


def report(capsys, text: str) -> None:
    """Print around pytest's capture so tables reach the terminal."""
    with capsys.disabled():
        print("\n" + text)
