"""Fig 1 bench: the motivating example's exact numbers."""

import pytest

from benchmarks.conftest import report
from repro.experiments.fig1 import run as run_fig1
from repro.experiments.tables import format_table


def test_fig1_motivation(benchmark, capsys):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    rows = [
        ["fair sharing completions", str(result["paper"]["fair_sharing_completions"]),
         str(result["fair_sharing_completions"])],
        ["fair sharing mean FCT", result["paper"]["fair_sharing_mean"],
         result["fair_sharing_mean"]],
        ["SJF completions", str(result["paper"]["sjf_completions"]),
         str(result["sjf_completions"])],
        ["SJF mean FCT", result["paper"]["sjf_mean"], result["sjf_mean"]],
        ["EDF deadline misses", result["paper"]["edf_deadline_misses"],
         result["edf_deadline_misses"]],
        ["D3 failing arrival orders (of 6)",
         result["paper"]["d3_failing_orders"], result["d3_failing_orders"]],
    ]
    report(capsys, format_table(
        ["quantity", "paper", "measured"], rows,
        title="Fig 1 -- motivating example (fluid models)",
    ))

    assert result["fair_sharing_completions"] == [3.0, 5.0, 6.0]
    assert result["sjf_completions"] == [1.0, 3.0, 6.0]
    assert result["sjf_mean"] == pytest.approx(3.33, abs=0.01)
    assert result["edf_deadline_misses"] == 0
    assert result["d3_failing_orders"] == 5
