"""Fig 3 bench: query aggregation (reduced scale).

Paper scale: up to 25 flows, deadlines 20-60 ms, many seeds. Reduced here:
three flow counts, 1-2 seeds, a subset of protocols per panel. Shape
targets: PDQ(Full) tracks Optimal; the variant order Full >= ES+ET >= ES
>= Basic; D3/RCP/TCP degrade with load; PDQ sustains ~3x D3's flow count
at 99 % application throughput.
"""

import pytest

from benchmarks.conftest import report
from repro.experiments.fig3 import (
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_fig3d,
    run_fig3e,
)
from repro.experiments.tables import format_table
from repro.units import KBYTE, MSEC


def test_fig3a_app_throughput_vs_flows(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig3a(flow_counts=(3, 10, 18), seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    counts = sorted(next(iter(result.values())).keys())
    rows = [
        [name] + [f"{result[name][n] * 100:.1f}%" for n in counts]
        for name in result
    ]
    report(capsys, format_table(
        ["protocol"] + [f"n={n}" for n in counts], rows,
        title="Fig 3a -- application throughput vs #flows (deadline case)",
    ))
    heavy = counts[-1]
    assert result["PDQ(Full)"][heavy] >= result["Optimal"][heavy] - 0.20
    assert result["PDQ(Full)"][heavy] >= result["PDQ(Basic)"][heavy] - 0.02
    assert result["PDQ(Full)"][heavy] > result["RCP"][heavy]
    assert result["PDQ(Full)"][heavy] > result["D3"][heavy]
    assert result["PDQ(Full)"][heavy] > result["TCP"][heavy]


def test_fig3b_app_throughput_vs_size(benchmark, capsys):
    sizes = (100 * KBYTE, 250 * KBYTE)
    result = benchmark.pedantic(
        lambda: run_fig3b(mean_sizes=sizes, seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    rows = [
        [name] + [f"{result[name][s] * 100:.1f}%" for s in sizes]
        for name in result
    ]
    report(capsys, format_table(
        ["protocol"] + [f"{int(s / KBYTE)}KB" for s in sizes], rows,
        title="Fig 3b -- application throughput vs mean flow size (3 flows)",
    ))
    big = sizes[-1]
    assert result["PDQ(Full)"][big] >= result["Optimal"][big] - 0.15
    assert result["PDQ(Full)"][big] >= result["RCP"][big]


def test_fig3c_flows_at_99pct_vs_deadline(benchmark, capsys):
    deadlines = (20 * MSEC, 40 * MSEC)
    result = benchmark.pedantic(
        lambda: run_fig3c(mean_deadlines=deadlines, seeds=(1,), hi=48),
        rounds=1, iterations=1,
    )
    rows = [
        [name] + [result[name][d] for d in deadlines] for name in result
    ]
    report(capsys, format_table(
        ["protocol"] + [f"{d * 1e3:.0f}ms" for d in deadlines], rows,
        title="Fig 3c -- max flows at 99% application throughput "
              "(paper: PDQ >= 3x D3)",
    ))
    # PDQ sustains more flows everywhere; the multiple grows with the mean
    # deadline (paper: >3x overall, larger at longer deadlines -- at short
    # deadlines the 3 ms floor compresses every protocol)
    for d in deadlines:
        assert result["PDQ(Full)"][d] >= result["D3"][d]
        assert result["PDQ(Full)"][d] >= result["RCP"][d]
    last = deadlines[-1]
    assert result["PDQ(Full)"][last] >= 2.5 * max(1, result["D3"][last])
    ratio = {d: result["PDQ(Full)"][d] / max(1, result["D3"][d])
             for d in deadlines}
    assert ratio[deadlines[-1]] >= ratio[deadlines[0]]


def test_fig3d_fct_vs_flows(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig3d(flow_counts=(1, 5, 10), seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    counts = sorted(next(iter(result.values())).keys())
    rows = [[name] + [result[name][n] for n in counts] for name in result]
    report(capsys, format_table(
        ["protocol"] + [f"n={n}" for n in counts], rows,
        title="Fig 3d -- mean FCT normalized to optimal (no deadlines)",
    ))
    for n in counts:
        assert result["PDQ(Full)"][n] >= 0.99  # optimal is a lower bound
        assert result["PDQ(Full)"][n] <= result["RCP"][n] + 0.05
    assert result["PDQ(Full)"][10] < result["TCP"][10]
    # paper: PDQ saves ~30% mean FCT vs fair sharing at load
    assert result["PDQ(Full)"][10] < 0.85 * result["RCP"][10]


def test_fig3e_fct_vs_size(benchmark, capsys):
    sizes = (100 * KBYTE, 300 * KBYTE)
    result = benchmark.pedantic(
        lambda: run_fig3e(mean_sizes=sizes, seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    rows = [[name] + [result[name][s] for s in sizes] for name in result]
    report(capsys, format_table(
        ["protocol"] + [f"{int(s / KBYTE)}KB" for s in sizes], rows,
        title="Fig 3e -- mean FCT normalized to optimal vs flow size",
    ))
    # PDQ approaches optimal as sizes grow (init overhead amortizes)
    assert result["PDQ(Full)"][sizes[-1]] <= result["PDQ(Full)"][sizes[0]] + 0.05
    assert result["PDQ(Full)"][sizes[-1]] < result["RCP"][sizes[-1]]
