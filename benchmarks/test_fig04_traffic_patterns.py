"""Fig 4 bench: traffic patterns (reduced scale).

Paper: six patterns x seven protocols with many seeds; here a protocol
subset and one seed per search probe. Shape target: PDQ(Full) is best (or
tied) on every pattern, for both the deadline metric and mean FCT.
"""

from benchmarks.conftest import report
from repro.experiments.fig4 import PATTERNS, run_fig4a, run_fig4b
from repro.experiments.tables import format_table

PROTOCOLS_A = ("PDQ(Full)", "D3", "RCP")
PROTOCOLS_B = ("PDQ(Full)", "PDQ(Basic)", "RCP", "TCP")


def test_fig4a_flows_at_99pct_by_pattern(benchmark, capsys):
    patterns = ("Aggregation", "Staggered(0.7)", "RandomPermutation")
    result = benchmark.pedantic(
        lambda: run_fig4a(patterns=patterns, protocols=PROTOCOLS_A,
                          seeds=(1,), hi=24),
        rounds=1, iterations=1,
    )
    rows = [
        [pattern] + [result[pattern][p] for p in PROTOCOLS_A]
        for pattern in patterns
    ]
    report(capsys, format_table(
        ["pattern"] + list(PROTOCOLS_A), rows,
        title="Fig 4a -- max flows at 99% app throughput, normalized to "
              "PDQ(Full)",
    ))
    for pattern in patterns:
        assert result[pattern]["PDQ(Full)"] == 1.0
        assert result[pattern]["D3"] <= 1.0
        assert result[pattern]["RCP"] <= 1.0


def test_fig4b_fct_by_pattern(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig4b(patterns=PATTERNS, protocols=PROTOCOLS_B,
                          seeds=(1,), n_flows=12),
        rounds=1, iterations=1,
    )
    rows = [
        [pattern] + [result[pattern][p] for p in PROTOCOLS_B]
        for pattern in PATTERNS
    ]
    report(capsys, format_table(
        ["pattern"] + list(PROTOCOLS_B), rows,
        title="Fig 4b -- mean FCT normalized to PDQ(Full), no deadlines",
    ))
    # PDQ(Full) is best or within 8% of the best protocol on every
    # pattern, and clearly best where contention is real (Aggregation)
    for pattern in PATTERNS:
        best = min(result[pattern].values())
        assert best >= 1.0 / 1.08, (pattern, result[pattern])
    # paper: ~30% mean-FCT savings vs fair sharing on aggregation-style
    # workloads
    assert result["Aggregation"]["RCP"] >= 1.2
    assert result["Aggregation"]["TCP"] >= 1.1
