"""Fig 5 bench: realistic workloads (reduced scale).

Paper: VL2 and EDU1 measured workloads at full datacenter load. Here the
synthetic stand-ins (documented in DESIGN.md) on the 12-server tree with
shorter windows. Shape targets: PDQ sustains the highest short-flow
arrival rate; PDQ(Full)'s long-flow FCT beats RCP (~26 % in the paper) and
TCP (~39 %); PDQ(Full) is the best protocol on the EDU1-like trace.
"""

from benchmarks.conftest import report
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.tables import format_table
from repro.units import MSEC


def test_fig5a_sustainable_arrival_rate(benchmark, capsys):
    deadlines = (20 * MSEC,)
    protocols = ("PDQ(Full)", "D3", "RCP", "TCP")
    result = benchmark.pedantic(
        lambda: run_fig5a(mean_deadlines=deadlines, protocols=protocols,
                          seeds=(1,), duration=0.03, rate_step=1000,
                          hi_steps=8),
        rounds=1, iterations=1,
    )
    rows = [
        [p] + [f"{result[p][d]:.0f}/s" for d in deadlines]
        for p in protocols
    ]
    report(capsys, format_table(
        ["protocol"] + [f"{d*1e3:.0f}ms" for d in deadlines], rows,
        title="Fig 5a -- sustainable short-flow arrival rate at 99% app "
              "throughput (VL2-like mix)",
    ))
    # NOTE (EXPERIMENTS.md): this reproduction's per-flow switchover
    # latency penalizes the extreme tiny-flow-churn regime, so PDQ does
    # not reach the paper's lead over D3/RCP here; it still beats TCP and
    # sustains a usable operating point.
    d = deadlines[0]
    assert result["PDQ(Full)"][d] >= result["TCP"][d]
    assert result["PDQ(Full)"][d] >= 2000


def test_fig5b_long_flow_fct(benchmark, capsys):
    protocols = ("PDQ(Full)", "PDQ(ES)", "RCP", "TCP")
    result = benchmark.pedantic(
        lambda: run_fig5b(protocols=protocols, seeds=(1,),
                          rate_per_sec=1500.0, duration=0.02),
        rounds=1, iterations=1,
    )
    report(capsys, format_table(
        ["protocol", "long-flow FCT / PDQ(Full)"],
        [[p, result[p]] for p in protocols],
        title="Fig 5b -- long-flow FCT normalized to PDQ(Full) "
              "(paper: RCP ~1.35x, TCP ~1.64x)",
    ))
    assert result["RCP"] > 1.0
    assert result["TCP"] > 1.0


def test_fig5c_edu1_trace(benchmark, capsys):
    protocols = ("PDQ(Full)", "PDQ(Basic)", "RCP", "TCP")
    result = benchmark.pedantic(
        lambda: run_fig5c(protocols=protocols, seeds=(1,),
                          duration=0.04, flows_per_second=1500.0),
        rounds=1, iterations=1,
    )
    report(capsys, format_table(
        ["protocol", "FCT / PDQ(Full)"],
        [[p, result[p]] for p in protocols],
        title="Fig 5c -- EDU1-like trace, FCT normalized to PDQ(Full)",
    ))
    # the synthetic EDU1 trace is light, nearly uncontended traffic: every
    # explicit-rate protocol lands within ~15% (see EXPERIMENTS.md); TCP's
    # slow start clearly loses
    assert 0.80 <= result["RCP"] <= 1.15
    assert result["TCP"] > 1.1
