"""Fig 6 bench: convergence dynamics (seamless flow switching)."""

import pytest

from benchmarks.conftest import report
from repro.experiments.fig6 import run_fig6
from repro.experiments.tables import format_table


def test_fig6_seamless_switching(benchmark, capsys):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    rows = [
        ["total completion time", "~42 ms",
         f"{result['total_time'] * 1e3:.2f} ms"],
        ["bottleneck utilization", "~100 %",
         f"{result['mean_utilization'] * 100:.1f} %"],
        ["max queue", "a few packets",
         f"{result['max_queue_packets']} packets"],
        ["packet drops", "0", str(result["drops"])],
        ["completions (ms)", "~[8.4, 16.8, 25.2, 33.6, 42]",
         str([round(c * 1e3, 1) for c in result["completions"]])],
    ]
    report(capsys, format_table(
        ["quantity", "paper", "measured"], rows,
        title="Fig 6 -- five 1MB flows, serial SJF schedule",
    ))

    assert len(result["completions"]) == 5
    assert result["total_time"] == pytest.approx(42e-3, rel=0.05)
    assert result["mean_utilization"] > 0.95
    assert result["max_queue_packets"] < 40
    assert result["drops"] == 0
    gaps = [b - a for a, b in zip(result["completions"],
                                  result["completions"][1:], strict=False)]
    for gap in gaps:  # serial switching, one flow at a time
        assert 7e-3 < gap < 10e-3
