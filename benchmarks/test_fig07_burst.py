"""Fig 7 bench: robustness to bursty traffic."""

from benchmarks.conftest import report
from repro.experiments.fig7 import run_fig7
from repro.experiments.tables import format_table


def test_fig7_burst_preemption(benchmark, capsys):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    start, end = result["preemption_period"]
    rows = [
        ["short flows completed", "50", result["short_completed"]],
        ["utilization during preemption", "91.7 %",
         f"{result['utilization_during_preemption'] * 100:.1f} %"],
        ["steady queue during preemption", "5-10 packets",
         f"{result['max_queue_packets_steady']} packets"],
        ["peak queue (incl. 50-SYN transient)", "--",
         f"{result['max_queue_packets_during_preemption']} packets"],
        ["preemption period", "10 ms .. ~19 ms",
         f"{start * 1e3:.1f} ms .. {end * 1e3:.1f} ms"],
        ["drops", "0", result["drops"]],
    ]
    report(capsys, format_table(
        ["quantity", "paper", "measured"], rows,
        title="Fig 7 -- 50-short-flow burst preempting a long flow",
    ))

    assert result["short_completed"] == 50
    assert result["utilization_during_preemption"] > 0.85
    assert result["max_queue_packets_steady"] <= 20
    assert result["drops"] == 0
    # the long flow finishes after the burst (it was preempted, not
    # starved): long flow alone needs ~50ms for 6MB, plus the ~10ms burst
    assert 0.045 < result["long_flow_fct"] < 0.09
