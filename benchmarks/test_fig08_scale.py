"""Fig 8 bench: network scale, topologies, packet-vs-flow validation.

Paper scale: 16..4096 servers. Reduced here: packet level at 16 servers,
flow level up to 128; one seed. Shape targets: PDQ beats RCP/D3 at every
scale on every topology; flow-level results track packet-level; Fig 8e's
CDF shows a large fraction of flows >=2x faster under PDQ and few slower.
"""

from benchmarks.conftest import report
from repro.experiments.fig8 import (
    run_fct_vs_size,
    run_fig8a,
    run_fig8e,
)
from repro.experiments.tables import format_table


def test_fig8a_deadline_scale(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig8a(sizes=(16,), protocols=("PDQ(Full)", "D3", "RCP"),
                          levels=("packet", "flow"), seeds=(1,), hi=48),
        rounds=1, iterations=1,
    )
    rows = [[key, series[16]] for key, series in sorted(result.items())]
    report(capsys, format_table(
        ["protocol/level", "flows@99% (16 servers)"], rows,
        title="Fig 8a -- fat-tree, deadline flows",
    ))
    assert result["PDQ(Full)/packet"][16] >= result["D3/packet"][16]
    assert result["PDQ(Full)/packet"][16] >= result["RCP/packet"][16]
    assert result["PDQ(Full)/flow"][16] >= result["D3/flow"][16]


def test_fig8bcd_fct_across_topologies(benchmark, capsys):
    def run_all():
        return {
            family: run_fct_vs_size(
                family, sizes=(16,), protocols=("PDQ(Full)", "RCP"),
                levels=("packet", "flow"), seeds=(1,), flows_per_server=2,
            )
            for family in ("fattree", "bcube", "jellyfish")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for family, series in results.items():
        for key, by_size in sorted(series.items()):
            rows.append([family, key, f"{by_size[16] * 1e3:.3f} ms"])
    report(capsys, format_table(
        ["topology", "protocol/level", "mean FCT (16 servers)"], rows,
        title="Fig 8b/c/d -- mean FCT by topology, packet vs flow level",
    ))
    wins = 0
    for family, series in results.items():
        pdq_pkt = series["PDQ(Full)/packet"][16]
        rcp_pkt = series["RCP/packet"][16]
        # PDQ never loses by more than 10% and wins clearly on most
        # topologies (BCube's relay-server hops add PDQ control overhead
        # at this small scale)
        assert pdq_pkt < rcp_pkt * 1.10, family
        if pdq_pkt < rcp_pkt:
            wins += 1
        # flow level tracks packet level (paper: "does not compromise the
        # accuracy significantly")
        pdq_flow = series["PDQ(Full)/flow"][16]
        assert 0.5 < pdq_pkt / pdq_flow < 2.0, family
    assert wins >= 2


def test_fig8e_per_flow_cdf(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig8e(n_servers=128, flows_per_server=2, seeds=(1,)),
        rounds=1, iterations=1,
    )
    rows = [
        ["flows >=2x faster under PDQ", "~40 %",
         f"{result['fraction_pdq_2x_faster'] * 100:.1f} %"],
        ["flows slower under PDQ", "5-15 %",
         f"{result['fraction_pdq_slower'] * 100:.1f} %"],
        ["worst PDQ inflation", "2.57x",
         f"{result['worst_inflation']:.2f}x"],
    ]
    report(capsys, format_table(
        ["quantity", "paper", "measured"], rows,
        title="Fig 8e -- CDF of RCP FCT / PDQ FCT (flow level, 128 servers)",
    ))
    assert result["fraction_pdq_2x_faster"] > 0.2
    assert result["fraction_pdq_slower"] < 0.35
