"""Fig 9 bench: resilience to packet loss.

Shape targets: PDQ sustains its deadline capacity and its FCT grows mildly
under 3 % bidirectional loss (paper: +11.4 %), while TCP degrades much
more (paper: +44.7 %).
"""

from benchmarks.conftest import report
from repro.experiments.fig9 import run_fig9a, run_fig9b
from repro.experiments.tables import format_table

LOSSES = (0.0, 0.01, 0.03)


def test_fig9a_deadline_capacity_under_loss(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig9a(loss_rates=LOSSES, seeds=(1,), hi=24),
        rounds=1, iterations=1,
    )
    rows = [
        [p] + [result[p][l] for l in LOSSES] for p in result
    ]
    report(capsys, format_table(
        ["protocol"] + [f"loss={l:.0%}" for l in LOSSES], rows,
        title="Fig 9a -- max deadline flows at 99% app throughput vs loss",
    ))
    for loss in LOSSES:
        assert result["PDQ(Full)"][loss] >= result["TCP"][loss]
    # PDQ keeps most of its capacity at 3% loss
    assert result["PDQ(Full)"][0.03] >= 0.5 * max(1, result["PDQ(Full)"][0.0])


def test_fig9b_fct_under_loss(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig9b(loss_rates=LOSSES, seeds=(1, 2), n_flows=8),
        rounds=1, iterations=1,
    )
    rows = [[p] + [result[p][l] for l in LOSSES] for p in result]
    report(capsys, format_table(
        ["protocol"] + [f"loss={l:.0%}" for l in LOSSES], rows,
        title="Fig 9b -- mean FCT normalized to lossless PDQ "
              "(paper at 3%: PDQ 1.11, TCP ~1.45 over its own baseline)",
    ))
    pdq_inflation = result["PDQ(Full)"][0.03] / result["PDQ(Full)"][0.0]
    assert pdq_inflation < 1.5  # paper: +11%; generous slack for our RTOs
    # PDQ's absolute FCT stays below TCP's at every loss rate (our TCP --
    # NewReno, 2 ms RTOmin, 4 MB buffers -- is more loss-tolerant than the
    # paper's in relative terms; see EXPERIMENTS.md)
    for loss in LOSSES:
        assert result["PDQ(Full)"][loss] < result["TCP"][loss]
