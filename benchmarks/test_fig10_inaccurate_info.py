"""Fig 10 bench: resilience to inaccurate flow information (flow level)."""

from benchmarks.conftest import report
from repro.experiments.fig10 import SCHEMES, run_fig10
from repro.experiments.tables import format_table


def test_fig10_inaccurate_flow_information(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig10(seeds=tuple(range(1, 11))),
        rounds=1, iterations=1,
    )
    rows = []
    for dist in result:
        for scheme in SCHEMES:
            rows.append([dist, scheme, f"{result[dist][scheme] * 1e3:.2f} ms"])
    report(capsys, format_table(
        ["distribution", "scheme", "mean FCT"], rows,
        title="Fig 10 -- PDQ with perfect / random / estimated flow "
              "information vs RCP",
    ))

    for dist in ("uniform", "pareto"):
        row = result[dist]
        # perfect information is best
        assert row["PDQ perfect"] <= min(row.values()) * 1.001
        # estimation stays competitive with RCP (paper: "compares
        # favorably against RCP in both distributions")
        assert row["PDQ estimation"] <= row["RCP"] * 1.10
    # random criticality hurts most under heavy tails (paper's point (i))
    uniform_penalty = (result["uniform"]["PDQ random"]
                       / result["uniform"]["PDQ perfect"])
    pareto_penalty = (result["pareto"]["PDQ random"]
                      / result["pareto"]["PDQ perfect"])
    assert pareto_penalty > uniform_penalty
