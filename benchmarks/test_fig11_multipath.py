"""Fig 11 bench: Multipath PDQ on BCube(2,3).

Shape targets: M-PDQ beats single-path PDQ, most at light load; the gain
saturates around 3-4 subflows (paper: 4 subflows reach ~97 % of the full
potential); more subflows also help the deadline metric.
"""

from benchmarks.conftest import report
from repro.experiments.fig11 import run_fig11a, run_fig11b, run_fig11c
from repro.experiments.tables import format_table


def test_fig11a_load_sweep(benchmark, capsys):
    loads = (0.25, 1.0)
    result = benchmark.pedantic(
        lambda: run_fig11a(loads=loads, seeds=(1, 2)),
        rounds=1, iterations=1,
    )
    rows = [
        [name] + [f"{result[name][l] * 1e3:.2f} ms" for l in loads]
        for name in ("PDQ", "M-PDQ")
    ]
    report(capsys, format_table(
        ["protocol"] + [f"load={l:.0%}" for l in loads], rows,
        title="Fig 11a -- mean FCT vs load (M-PDQ: 3 subflows)",
    ))
    for load in loads:
        assert result["M-PDQ"][load] < result["PDQ"][load]
    # the multipath advantage is largest at light load
    gain = {l: result["PDQ"][l] / result["M-PDQ"][l] for l in loads}
    assert gain[0.25] >= gain[1.0] * 0.8


def test_fig11b_subflow_sweep(benchmark, capsys):
    counts = (1, 2, 3, 4, 8)
    result = benchmark.pedantic(
        lambda: run_fig11b(subflow_counts=counts, seeds=(1,)),
        rounds=1, iterations=1,
    )
    rows = [[k, f"{result[k] * 1e3:.2f} ms"] for k in counts]
    report(capsys, format_table(
        ["subflows", "mean FCT"], rows,
        title="Fig 11b -- mean FCT vs subflow count at full load "
              "(paper: ~4 subflows reach full potential)",
    ))
    assert result[3] < result[1]
    best = min(result.values())
    assert result[4] <= best * 1.25  # saturation by ~4 subflows


def test_fig11c_deadline_vs_subflows(benchmark, capsys):
    counts = (1, 4)
    result = benchmark.pedantic(
        lambda: run_fig11c(subflow_counts=counts, seeds=(1,), hi=24),
        rounds=1, iterations=1,
    )
    rows = [[k, result[k]] for k in counts]
    report(capsys, format_table(
        ["subflows", "flows@99%"], rows,
        title="Fig 11c -- max deadline flows at 99% app throughput",
    ))
    assert result[4] >= result[1]
