"""Fig 12 bench: flow aging prevents starvation (flow level).

Shape targets: raising the aging rate cuts PDQ's max FCT substantially
(paper: ~48 % at the knee) at a small mean-FCT cost (paper: +1.7 %),
approaching RCP's max-FCT fairness while keeping most of PDQ's mean-FCT
advantage.
"""

from benchmarks.conftest import report
from repro.experiments.fig12 import run_fig12
from repro.experiments.tables import format_table

RATES = (0.0, 2.0, 6.0, 10.0)


def test_fig12_aging(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_fig12(aging_rates=RATES, seeds=(1,)),
        rounds=1, iterations=1,
    )
    rows = [
        [f"alpha={a:g}",
         f"{result['PDQ max'][a] * 1e3:.2f}",
         f"{result['PDQ mean'][a] * 1e3:.2f}",
         f"{result['RCP max'][a] * 1e3:.2f}",
         f"{result['RCP mean'][a] * 1e3:.2f}"]
        for a in RATES
    ]
    report(capsys, format_table(
        ["aging rate", "PDQ max (ms)", "PDQ mean (ms)", "RCP max (ms)",
         "RCP mean (ms)"], rows,
        title="Fig 12 -- flow aging: max/mean FCT vs aging rate",
    ))

    no_aging_max = result["PDQ max"][0.0]
    best_aged_max = min(result["PDQ max"][a] for a in RATES if a > 0)
    assert best_aged_max < no_aging_max * 0.75  # max FCT drops sharply
    # the mean pays a bounded price and stays below fair sharing's
    no_aging_mean = result["PDQ mean"][0.0]
    worst_aged_mean = max(result["PDQ mean"][a] for a in RATES if a > 0)
    assert worst_aged_mean < no_aging_mean * 1.5
    assert worst_aged_mean < result["RCP mean"][0.0]
