#!/usr/bin/env python
"""Flow aging: trading a little mean FCT for a lot of tail fairness (§7).

Pure preemptive SJF can starve large flows under a sustained stream of
smaller ones. The paper's aging knob raises a flow's criticality by
2^(alpha * waiting_time), letting operators bound worst-case completion
times. This example re-parameterizes fig 12's declared experiment panel
(a labeled axis mixing the RCP reference into the PDQ aging sweep) and
runs it on a loaded fat-tree (flow-level simulation), printing the
max/mean FCT trade-off curve against RCP's fair-sharing reference.

Run:  python examples/aging_fairness.py
"""

from repro.experiments import run_panel
from repro.experiments.fig12 import fig12_panel


def main() -> None:
    rates = (0.0, 1.0, 2.0, 6.0, 10.0)
    result = run_panel(fig12_panel(aging_rates=rates, seeds=(1,)))

    print("16-server fat-tree, Poisson random-pair traffic at 85% load\n")
    print(f"{'aging rate':>10s} {'max FCT':>10s} {'mean FCT':>10s}")
    for alpha in rates:
        print(f"{alpha:10.1f} {result['PDQ max'][alpha] * 1e3:8.2f}ms "
              f"{result['PDQ mean'][alpha] * 1e3:8.2f}ms")
    print(f"{'RCP (ref)':>10s} {result['RCP max'][0.0] * 1e3:8.2f}ms "
          f"{result['RCP mean'][0.0] * 1e3:8.2f}ms")

    drop = 1 - min(result["PDQ max"][a] for a in rates if a > 0) / \
        result["PDQ max"][0.0]
    print(f"\nAging cuts the worst flow completion time by {drop:.0%} "
          "(paper: ~48%) while the mean stays below fair sharing's.")


if __name__ == "__main__":
    main()
