#!/usr/bin/env python
"""Flow aging: trading a little mean FCT for a lot of tail fairness (§7).

Pure preemptive SJF can starve large flows under a sustained stream of
smaller ones. The paper's aging knob raises a flow's criticality by
2^(alpha * waiting_time), letting operators bound worst-case completion
times. This example sweeps the aging rate on a loaded fat-tree (flow-level
simulation) and prints the max/mean FCT trade-off curve against RCP's
fair-sharing reference.

Run:  python examples/aging_fairness.py
"""

from repro.experiments.fig12 import run_fig12


def main() -> None:
    rates = (0.0, 1.0, 2.0, 6.0, 10.0)
    result = run_fig12(aging_rates=rates, seeds=(1,))

    print("16-server fat-tree, Poisson random-pair traffic at 85% load\n")
    print(f"{'aging rate':>10s} {'max FCT':>10s} {'mean FCT':>10s}")
    for alpha in rates:
        print(f"{alpha:10.1f} {result['PDQ max'][alpha] * 1e3:8.2f}ms "
              f"{result['PDQ mean'][alpha] * 1e3:8.2f}ms")
    print(f"{'RCP (ref)':>10s} {result['RCP max'][0.0] * 1e3:8.2f}ms "
          f"{result['RCP mean'][0.0] * 1e3:8.2f}ms")

    drop = 1 - min(result["PDQ max"][a] for a in rates if a > 0) / \
        result["PDQ max"][0.0]
    print(f"\nAging cuts the worst flow completion time by {drop:.0%} "
          "(paper: ~48%) while the mean stays below fair sharing's.")


if __name__ == "__main__":
    main()
