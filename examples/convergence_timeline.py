#!/usr/bin/env python
"""Seamless flow switching, rendered as an ASCII timeline (paper Fig 6).

Five ~1 MB flows start together. PDQ runs them one at a time in SJF order
with Early Start overlapping each handover, so the bottleneck never idles:
the whole batch finishes in ~42 ms (40 ms of raw data + ~3 % header
overhead + two-RTT initialization), with only a few packets ever queued.

Run:  python examples/convergence_timeline.py
"""

from repro.experiments.fig6 import run_fig6
from repro.units import MSEC


def bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(min(1.0, value / scale) * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    result = run_fig6()

    print("Per-flow throughput over time (each row = 1 ms):\n")
    print("time    flow1 flow2 flow3 flow4 flow5   bottleneck utilization")
    for (t, rates), (_, util) in zip(
        result["throughput_series"], result["utilization_series"],
        strict=True,
    ):
        cells = " ".join(
            f"{rate / 1e9:5.2f}" if rate > 1e6 else "  .  " for rate in rates
        )
        print(f"{t * 1e3:5.1f}ms {cells}   |{bar(util, 1.0)}|")

    print("\ncompletions:",
          " ".join(f"{c * 1e3:.1f}ms" for c in result["completions"]))
    print(f"total: {result['total_time'] * 1e3:.2f} ms "
          f"(paper: ~42 ms)  "
          f"utilization: {result['mean_utilization']:.1%}  "
          f"max queue: {result['max_queue_packets']} packets  "
          f"drops: {result['drops']}")


if __name__ == "__main__":
    main()
