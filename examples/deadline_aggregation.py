#!/usr/bin/env python
"""Partition-aggregate with deadlines: PDQ vs D3 vs RCP vs TCP.

The paper's motivating datacenter workload (§5.2): many workers answer an
aggregator under soft-real-time deadlines; a response missing its deadline
is dropped from the result. The whole study is *data*: an experiment
declared inline (the same schema ``python -m repro run-spec FILE.json``
loads from disk — see examples/specs/) and executed through the ambient
campaign runner, one scenario per protocol.

Run:  python examples/deadline_aggregation.py
"""

from repro.experiments import load_experiment, run_experiment

STUDY = {
    "name": "deadline-aggregation",
    "title": "14 worker responses -> aggregator h0, deadlines exp(20 ms)",
    "panels": [
        {
            "name": "protocol-comparison",
            "base": {
                "protocol": "PDQ(Full)",
                "topology": {"kind": "single_rooted"},
                "workload": {
                    "kind": "fig3.aggregation",
                    "params": {
                        "n_flows": 14,
                        "mean_size": 100_000.0,
                        "mean_deadline": 0.020,
                    },
                },
                "engine": "packet",
                "seed": 11,
                "sim_deadline": 2.0,
            },
            "axes": [["protocol", ["PDQ(Full)", "D3", "RCP", "TCP"]]],
            "reducer": "table",
            "reducer_params": {
                "metrics": ["application_throughput",
                            "completion_fraction", "mean_fct"],
            },
        },
    ],
}


def main() -> None:
    experiment = load_experiment(STUDY)
    print(f"{experiment.title}\n")
    table = run_experiment(experiment)["protocol-comparison"]
    print(f"{'protocol':10s} {'app throughput':>15s} {'completed':>10s} "
          f"{'mean fct':>10s}")
    for protocol, app_tput, completed, mean_fct in table["rows"]:
        print(f"{protocol:10s} {app_tput:14.1%} {completed:9.1%} "
              f"{mean_fct * 1e3:8.2f}ms")

    print(
        "\nPDQ schedules earliest-deadline-first with preemption and sheds "
        "hopeless flows early (Early Termination); the deadline-agnostic "
        "protocols spread bandwidth across all flows and miss far more."
    )


if __name__ == "__main__":
    main()
