#!/usr/bin/env python
"""Partition-aggregate with deadlines: PDQ vs D3 vs RCP vs TCP.

The paper's motivating datacenter workload (§5.2): many workers answer an
aggregator under soft-real-time deadlines; a response missing its deadline
is dropped from the result. This example runs the same query-aggregation
scenario under all four protocols and reports application throughput (the
fraction of flows meeting their deadlines) and what happened to each flow.

Run:  python examples/deadline_aggregation.py
"""

from repro import Network, SingleRootedTree
from repro.experiments.scenario import make_stack
from repro.units import KBYTE, MSEC
from repro.workload import (
    aggregation_flows,
    exponential_deadlines,
    uniform_sizes,
)

N_FLOWS = 14
SEED = 11


def build_workload():
    sizes = uniform_sizes(N_FLOWS, 100 * KBYTE, rng=SEED)
    deadlines = exponential_deadlines(N_FLOWS, mean=20 * MSEC, rng=SEED)
    workers = [f"h{i}" for i in range(1, 12)]  # h0 is the aggregator
    return aggregation_flows(workers, "h0", sizes, deadlines=deadlines,
                             rng=SEED)


def main() -> None:
    flows = build_workload()
    print(f"{N_FLOWS} worker responses -> aggregator h0, deadlines "
          "exp(20 ms) with a 3 ms floor\n")
    print(f"{'protocol':10s} {'met':>4s} {'missed':>7s} {'terminated':>11s} "
          f"{'app throughput':>15s}")
    for protocol in ("PDQ(Full)", "D3", "RCP", "TCP"):
        network = Network(SingleRootedTree(), make_stack(protocol))
        network.launch(flows)
        network.run_until_quiet(deadline=2.0)
        records = network.metrics.all_records()
        met = sum(1 for r in records if r.met_deadline)
        terminated = sum(1 for r in records if r.terminated)
        missed = len(records) - met - terminated
        throughput = network.metrics.application_throughput()
        print(f"{protocol:10s} {met:4d} {missed:7d} {terminated:11d} "
              f"{throughput:14.1%}")

    print(
        "\nPDQ schedules earliest-deadline-first with preemption and sheds "
        "hopeless flows early (Early Termination); the deadline-agnostic "
        "protocols spread bandwidth across all flows and miss far more."
    )


if __name__ == "__main__":
    main()
