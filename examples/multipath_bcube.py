#!/usr/bin/env python
"""Multipath PDQ on BCube: striping one flow over several NICs (§6).

BCube(2,3) gives every server four NICs and up to four parallel two-hop
paths between far-apart servers. M-PDQ splits a flow into subflows, pins
each onto its own path via flow-level ECMP, and periodically shifts load
from paused subflows to the one with the least remaining work. For a large
transfer this multiplies throughput until the subflow count exceeds the
usable path diversity.

Run:  python examples/multipath_bcube.py
"""

from repro import BCube, FlowSpec, MpdqStack, Network, PdqStack
from repro.units import MBYTE


def fct_with(stack, flows) -> float:
    network = Network(BCube(n=2, k=3), stack)
    network.launch(flows)
    network.run_until_quiet(deadline=1.0)
    return network.metrics.mean_fct()


def main() -> None:
    # h0 (address 0000) -> h15 (address 1111): all four digits differ, so
    # four parallel paths exist
    flows = [FlowSpec(fid=0, src="h0", dst="h15", size_bytes=4 * MBYTE)]

    print("4 MB transfer h0 -> h15 on BCube(2,3), 1 Gbps links\n")
    print(f"{'configuration':16s} {'mean FCT':>10s} {'speedup':>8s}")
    base = fct_with(PdqStack(), flows)
    print(f"{'PDQ (1 path)':16s} {base * 1e3:8.2f}ms {'1.00x':>8s}")
    for subflows in (2, 3, 4, 6):
        fct = fct_with(MpdqStack(n_subflows=subflows), flows)
        print(f"M-PDQ({subflows} subflows) {fct * 1e3:8.2f}ms "
              f"{base / fct:7.2f}x")

    print(
        "\nThe gain saturates once subflows exceed the path diversity "
        "(four here) -- the paper's Fig 11b observes the same knee around "
        "four subflows."
    )


if __name__ == "__main__":
    main()
