#!/usr/bin/env python
"""Multipath PDQ on BCube: striping one flow over several NICs (§6).

BCube(2,3) gives every server four NICs and up to four parallel two-hop
paths between far-apart servers. M-PDQ splits a flow into subflows, pins
each onto its own path via flow-level ECMP, and periodically shifts load
from paused subflows to the one with the least remaining work. For a large
transfer this multiplies throughput until the subflow count exceeds the
usable path diversity.

The sweep is one declarative Panel: a *labeled* axis varies the protocol
and the ``n_subflows`` option together (1 subflow = single-path PDQ), on
the builtin ``single_flow`` workload kind.

Run:  python examples/multipath_bcube.py
"""

from repro.campaign import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.experiments import Panel, run_panel
from repro.units import MBYTE

SUBFLOW_COUNTS = (1, 2, 3, 4, 6)


def subflow_panel() -> Panel:
    # h0 (address 0000) -> h15 (address 1111): all four digits differ, so
    # four parallel paths exist
    return Panel(
        name="mpdq-subflows",
        title="4 MB transfer h0 -> h15 on BCube(2,3)",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TopologySpec("bcube", {"n": 2, "k": 3}),
            workload=WorkloadSpec("single_flow", {
                "src": "h0", "dst": "h15", "size_bytes": 4 * MBYTE,
            }),
            engine="packet",
            sim_deadline=1.0,
            options={"n_subflows": 1},
        ),
        axes=(("subflows", tuple(
            (count, {"protocol": "PDQ(Full)" if count == 1 else "M-PDQ",
                     "options.n_subflows": count})
            for count in SUBFLOW_COUNTS
        )),),
        reducer="series",
        reducer_params={"x": "subflows", "metric": "mean_fct"},
    )


def main() -> None:
    panel = subflow_panel()
    print(f"{panel.title}, 1 Gbps links\n")
    fct_by_count = run_panel(panel)

    base = fct_by_count[1]
    print(f"{'configuration':16s} {'mean FCT':>10s} {'speedup':>8s}")
    print(f"{'PDQ (1 path)':16s} {base * 1e3:8.2f}ms {'1.00x':>8s}")
    for count in SUBFLOW_COUNTS[1:]:
        fct = fct_by_count[count]
        print(f"M-PDQ({count} subflows) {fct * 1e3:8.2f}ms "
              f"{base / fct:7.2f}x")

    print(
        "\nThe gain saturates once subflows exceed the path diversity "
        "(four here) -- the paper's Fig 11b observes the same knee around "
        "four subflows."
    )


if __name__ == "__main__":
    main()
