#!/usr/bin/env python
"""Quickstart: preemptive flow scheduling in thirty lines.

Two senders share a 1 Gbps bottleneck toward one receiver. A 1 MB flow is
in full flight when a 100 KB flow arrives: under PDQ the switch pauses the
long flow, lets the short one finish at line rate, then resumes the long
flow -- the preemptive behaviour that motivates the paper (Fig 1).

Run:  python examples/quickstart.py
"""

from repro import FlowSpec, Network, PdqConfig, PdqStack, SingleBottleneck
from repro.units import KBYTE, MBYTE, MSEC


def main() -> None:
    topology = SingleBottleneck(n_senders=2)
    network = Network(topology, PdqStack(PdqConfig.full()))

    network.launch([
        FlowSpec(fid=0, src="send0", dst="recv", size_bytes=1 * MBYTE),
        FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE,
                 arrival=3 * MSEC),
    ])
    network.run_until_quiet(deadline=0.1)

    print("flow  size     arrival  completion  fct")
    for record in network.metrics.all_records():
        spec = record.spec
        print(
            f"{spec.fid:4d}  {spec.size_bytes // 1000:4d}KB  "
            f"{spec.arrival * 1e3:6.1f}ms  "
            f"{record.completion_time * 1e3:8.3f}ms  "
            f"{record.fct * 1e3:7.3f}ms"
        )

    short = network.metrics.record(1)
    long_flow = network.metrics.record(0)
    print(
        f"\nThe short flow finished in {short.fct * 1e3:.2f} ms -- about "
        "line rate, as if the long flow were not there (it was paused)."
    )
    print(
        f"The long flow took {long_flow.fct * 1e3:.2f} ms: its own 8.4 ms "
        "plus the ~0.9 ms it stood aside."
    )
    print(
        "\nNext step: declare whole scenario grids as data instead of "
        "wiring networks by hand -- see examples/deadline_aggregation.py "
        "and examples/specs/*.json (run with `python -m repro run-spec`)."
    )


if __name__ == "__main__":
    main()
