"""Setup shim.

The environment has no `wheel` package, so PEP 660 editable installs fail;
this shim lets `pip install -e . --no-use-pep517 --no-build-isolation`
(and plain `python setup.py develop`) work offline.
"""

from setuptools import setup

setup()
