"""Setup shim.

The environment has no `wheel` package, so PEP 660 editable installs fail;
this shim lets `pip install -e . --no-use-pep517 --no-build-isolation`
(and plain `python setup.py develop`) work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro-pdq",
    version="1.1.0",
    description=(
        "Reproduction of 'Finishing Flows Quickly with Preemptive "
        "Scheduling' (PDQ), SIGCOMM 2012"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro=repro.campaign.cli:main",
        ],
    },
)
