"""repro: a reproduction of "Finishing Flows Quickly with Preemptive
Scheduling" (PDQ), Hong, Caesar & Godfrey, SIGCOMM 2012.

The package provides:

* a packet-level discrete-event simulator (:mod:`repro.events`,
  :mod:`repro.net`) with the paper's delay/queue model;
* the PDQ protocol (:mod:`repro.core`) -- senders, receivers, switch flow
  and rate controllers, Early Start / Early Termination / Suppressed
  Probing, multipath PDQ;
* the paper's baselines (:mod:`repro.transport`): TCP Reno, RCP, D3;
* a flow-level equilibrium simulator (:mod:`repro.flowsim`) for large
  scales;
* topologies, workloads, metrics and the per-figure experiment harness
  (:mod:`repro.experiments`) regenerating every evaluation figure;
* a campaign layer (:mod:`repro.campaign`): declarative scenario specs
  with content-hash keys, a parallel runner with a persistent result
  store, and the ``python -m repro`` CLI (``run-fig``, ``sweep``, ``ls``).

Quickstart::

    from repro import PdqConfig, PdqStack, Network, SingleBottleneck, FlowSpec

    topo = SingleBottleneck(n_senders=2)
    net = Network(topo, PdqStack(PdqConfig.full()))
    net.launch([
        FlowSpec(fid=0, src="send0", dst="recv", size_bytes=100_000),
        FlowSpec(fid=1, src="send1", dst="recv", size_bytes=50_000),
    ])
    net.run_until_quiet(deadline=1.0)
    print(net.metrics.mean_fct())
"""

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
    run_scenarios,
    use_runner,
)
from repro.core import MpdqStack, PdqConfig, PdqStack
from repro.events import Simulator
from repro.metrics import FlowRecord, MetricsCollector, SummaryStats
from repro.net import Network
from repro.net.network import NetworkConfig
from repro.topology import (
    BCube,
    FatTree,
    Jellyfish,
    SingleBottleneck,
    SingleRootedTree,
)
from repro.transport import D3Stack, RcpStack, TcpStack
from repro.workload import FlowSpec

__version__ = "1.1.0"

__all__ = [
    "BCube",
    "CampaignRunner",
    "D3Stack",
    "FatTree",
    "FlowRecord",
    "FlowSpec",
    "Jellyfish",
    "MetricsCollector",
    "MpdqStack",
    "Network",
    "NetworkConfig",
    "PdqConfig",
    "PdqStack",
    "RcpStack",
    "ResultStore",
    "ScenarioSpec",
    "Simulator",
    "SingleBottleneck",
    "SingleRootedTree",
    "SummaryStats",
    "TcpStack",
    "TopologySpec",
    "WorkloadSpec",
    "__version__",
    "expand_grid",
    "run_scenarios",
    "use_runner",
]
