"""``python -m repro`` entry point."""

import sys

from repro.campaign.cli import main

sys.exit(main())
