"""AST-based static analysis enforcing the repo's contracts at lint time.

``python -m repro check`` runs five checkers over the library source
(plus ``examples/`` and ``benchmarks/``), each guarding an invariant a
past PR paid for:

==========  ========================================================
RPL001      pool lifecycle: no raw Packet/Header construction;
            acquires need a reachable terminal-sink release
RPL002      hot-path purity: ``# repro: hot`` functions stay
            closure-, logging- and allocation-free
RPL003      registry discipline: kind/engine/reducer string literals
            resolve against the live registries
RPL004      hash-pin guard: cache-key canonicalization functions
            match their pinned normalized-AST fingerprints
RPL005      event shape: delivery callbacks are scheduled only at
            the Link tx-finish site
==========  ========================================================

Importing this package populates :data:`repro.analysis.core.CHECKERS`.
"""

from repro.analysis import (  # noqa: F401  (imported for registration)
    rpl001_pool,
    rpl002_hotpath,
    rpl003_registry,
    rpl004_fingerprint,
    rpl005_events,
)
from repro.analysis.core import (
    CHECKERS,
    AnalysisBroken,
    AnalysisContext,
    HOT_MARKER,
)
from repro.analysis.diagnostics import Diagnostic, render_report

__all__ = [
    "CHECKERS",
    "AnalysisBroken",
    "AnalysisContext",
    "Diagnostic",
    "HOT_MARKER",
    "render_report",
]
