"""``python -m repro check`` — run the repo's invariant linter.

Exit codes: 0 clean, 1 diagnostics found (or mypy errors), 2 the
analysis itself could not run. ``--out FILE`` writes the JSON report
(schema 1) for CI artifact upload; the human-readable ``file:line:
CODE message`` lines always go to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import CHECKERS, AnalysisBroken, AnalysisContext
from repro.analysis.diagnostics import render_report, sort_diagnostics
from repro.analysis.mypy_runner import run_mypy
from repro.analysis.rpl004_fingerprint import write_pins


def find_repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor containing ``src/repro`` (falls back to cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return here


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: src/repro, "
             "examples, benchmarks)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write the JSON report (schema 1) to FILE",
    )
    parser.add_argument(
        "--no-mypy", action="store_true",
        help="skip the mypy step even when mypy is installed",
    )
    parser.add_argument(
        "--repin-fingerprints", action="store_true",
        help="recompute and rewrite the RPL004 fingerprint pins, then "
             "re-run the check",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_checkers",
        help="list the registered checkers and exit",
    )


def run_check(args: argparse.Namespace) -> int:
    # ensure all checker modules have registered themselves
    import repro.analysis  # noqa: F401

    if args.list_checkers:
        for code in sorted(CHECKERS):
            title, _ = CHECKERS[code]
            print(f"{code}  {title}")
        return 0

    root = find_repo_root()
    paths = [Path(p) for p in args.paths] or None
    try:
        ctx = AnalysisContext.build(root, paths=paths)
        if args.repin_fingerprints:
            pin_path = write_pins(ctx)
            print(f"re-pinned canonicalization fingerprints -> {pin_path}")
        diagnostics = []
        for code in sorted(CHECKERS):
            _, check = CHECKERS[code]
            diagnostics.extend(check(ctx))
    except AnalysisBroken as exc:
        print(f"repro check: broken: {exc}", file=sys.stderr)
        return 2

    diagnostics = sort_diagnostics(diagnostics)
    for diag in diagnostics:
        print(diag.format())

    mypy_result = None
    if not args.no_mypy:
        mypy_result = run_mypy(root)
        if mypy_result["status"] == "skipped":
            print(f"mypy: skipped ({mypy_result['reason']})")
        elif mypy_result["status"] == "clean":
            print("mypy: clean")
        else:
            for line in mypy_result.get("output", []):
                print(line)
            print(f"mypy: {mypy_result['status']} "
                  f"({mypy_result.get('n_errors', '?')} error(s))")

    if args.out:
        report = render_report(diagnostics, mypy=mypy_result)
        out_path = Path(args.out)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"report -> {out_path}")

    n = len(diagnostics)
    mypy_bad = mypy_result is not None and \
        mypy_result["status"] in ("errors", "broken")
    if n or mypy_bad:
        print(f"repro check: {n} diagnostic(s)")
        return 1
    print("repro check: clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="AST-based invariant linter for the repro codebase",
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
