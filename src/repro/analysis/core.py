"""File discovery, AST parsing, and the checker registry for ``repro check``.

The analysis pass walks Python ASTs with the stdlib :mod:`ast` module —
no third-party dependency — over a declared *file set* (by default the
library source plus ``examples/`` and ``benchmarks/``; tests are
excluded because they violate contracts on purpose, e.g. the
unknown-kind and pool-abuse tests). Each domain checker receives an
:class:`AnalysisContext` and yields
:class:`~repro.analysis.diagnostics.Diagnostic` objects.

Checkers are registered in :data:`CHECKERS` (populated by
:mod:`repro.analysis` at import) so the CLI, the tests, and the CI gate
all run the same registry.
"""

from __future__ import annotations

import ast
import contextlib
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator

from repro.errors import ReproError

#: marker comment that opts a function into the RPL002 hot-path rules
HOT_MARKER = "# repro: hot"

#: directories (repo-relative) scanned by a default full-repo run
DEFAULT_SCAN_DIRS = ("src/repro", "examples", "benchmarks")


class AnalysisBroken(ReproError):
    """The analysis pass itself cannot run (unreadable file, syntax
    error in scanned source). Distinct from a finding: this is exit
    code 2 territory, not a diagnostic."""


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file plus the line-level facts checkers need."""

    path: Path  # absolute
    relpath: str  # repo-relative, posix separators
    text: str
    tree: ast.Module
    hot_lines: frozenset  # 1-based lines carrying the HOT_MARKER comment

    @property
    def basename(self) -> str:
        return self.path.name

    def lines(self) -> list[str]:
        return self.text.splitlines()


def _hot_comment_lines(text: str) -> list[int]:
    """Lines whose *comment token* carries the HOT_MARKER. Tokenizing
    (rather than substring-matching raw lines) keeps the marker inert
    inside strings and docstrings — this file mentions it in prose."""
    lines: list[int] = []
    # TokenError suppressed: ast.parse would have caught anything worse
    with contextlib.suppress(tokenize.TokenError):
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and HOT_MARKER in tok.string:
                lines.append(tok.start[0])
    return lines


def parse_source(path: Path, root: Path) -> SourceFile:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisBroken(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisBroken(f"syntax error in {path}: {exc}") from exc
    hot = frozenset(_hot_comment_lines(text))
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return SourceFile(path=path, relpath=rel, text=text, tree=tree,
                      hot_lines=hot)


def discover_files(root: Path,
                   paths: Iterable[Path] | None = None) -> list[Path]:
    """The file set to analyze: explicit files/dirs, or the default scan
    roots under ``root``. Directories are walked recursively for
    ``*.py``; ``tests`` subtrees and ``__pycache__`` are skipped."""
    targets = ([Path(p) for p in paths] if paths
               else [root / d for d in DEFAULT_SCAN_DIRS])
    out: list[Path] = []
    for target in targets:
        if target.is_file():
            out.append(target)
        elif target.is_dir():
            for found in sorted(target.rglob("*.py")):
                parts = found.relative_to(target).parts
                if "__pycache__" in parts or "tests" in parts[:-1]:
                    continue
                out.append(found)
        else:
            raise AnalysisBroken(f"no such file or directory: {target}")
    return out


@dataclass
class AnalysisContext:
    """Everything a checker may consult: the parsed file set plus the
    pinned-fingerprint location (overridable so fixture tests can pin
    their own)."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    fingerprint_path: Path | None = None

    @classmethod
    def build(cls, root: Path,
              paths: Iterable[Path] | None = None,
              fingerprint_path: Path | None = None) -> "AnalysisContext":
        files = [parse_source(p, root) for p in discover_files(root, paths)]
        return cls(root=root, files=files, fingerprint_path=fingerprint_path)

    def file(self, relpath_suffix: str) -> SourceFile | None:
        """The file whose relpath ends with ``relpath_suffix``, if any."""
        for sf in self.files:
            if sf.relpath.endswith(relpath_suffix):
                return sf
        return None


# -- AST helpers shared by checkers -------------------------------------------------


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, node)`` for every function/method, including
    nested ones (``Outer.inner`` / ``fn.<locals>.helper`` style names
    collapse to dotted paths — unique enough for diagnostics)."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")  # type: ignore[misc]


def function_is_hot(sf: SourceFile, node: ast.FunctionDef) -> bool:
    """A function is hot when the HOT_MARKER sits on its ``def`` line,
    the line above it, or any decorator line."""
    candidates = {node.lineno, node.lineno - 1}
    for decorator in node.decorator_list:
        candidates.add(decorator.lineno)
        candidates.add(decorator.lineno - 1)
    first = min(candidates)
    candidates.add(first - 1)
    return bool(candidates & sf.hot_lines)


def hot_functions(sf: SourceFile) -> list[tuple[str, ast.FunctionDef]]:
    return [(name, node) for name, node in iter_functions(sf.tree)
            if function_is_hot(sf, node)]


def attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains
    (calls, subscripts anywhere in the chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def call_name(node: ast.Call) -> str | None:
    """The called name: ``Packet`` for both ``Packet(...)`` and
    ``mod.Packet(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# -- checker registry ---------------------------------------------------------------

CheckFn = Callable[[AnalysisContext], Iterator]

#: code -> (one-line title, checker callable); populated by repro.analysis
CHECKERS: dict[str, tuple[str, CheckFn]] = {}


def register_checker(code: str, title: str) -> Callable[[CheckFn], CheckFn]:
    def decorate(fn: CheckFn) -> CheckFn:
        CHECKERS[code] = (title, fn)
        return fn

    return decorate
