"""Structured diagnostics emitted by the ``repro check`` analysis pass.

Every checker yields :class:`Diagnostic` objects; the CLI renders them
as ``file:line: CODE message`` lines (the classic compiler shape, so
editors and CI annotations parse them for free) and, with ``--out``, as
one JSON report suitable for artifact upload.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a repo-contract violation at a source location."""

    code: str  # "RPL001" .. "RPL005"
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 when the finding is file-scoped
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> list[Diagnostic]:
    """Stable report order: by file, then line, then code."""
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.code))


def render_report(diagnostics: Sequence[Diagnostic],
                  mypy: dict[str, Any] | None = None) -> dict[str, Any]:
    """The ``--out`` JSON payload (schema 1)."""
    ordered = sort_diagnostics(diagnostics)
    by_code: dict[str, int] = {}
    for diag in ordered:
        by_code[diag.code] = by_code.get(diag.code, 0) + 1
    return {
        "schema": 1,
        "n_diagnostics": len(ordered),
        "by_code": {code: by_code[code] for code in sorted(by_code)},
        "diagnostics": [d.to_dict() for d in ordered],
        "mypy": mypy,
    }
