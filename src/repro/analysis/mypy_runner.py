"""Gated mypy integration for ``repro check``.

The type gate is part of the same entry point as the AST checkers, but
mypy is an *optional* dependency: CI installs it, developer containers
may not. When mypy is importable it runs over the strict-typed modules
declared in ``mypy.ini``; when absent the step reports ``skipped`` and
the check result is unaffected. The AST checkers never depend on it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import Any

#: targets mirrored from mypy.ini [mypy] files= — kept here so a
#: `repro check` run and a bare `mypy` run cover the same set
MYPY_TARGETS = (
    "src/repro/events",
    "src/repro/net",
    "src/repro/campaign/spec.py",
    "src/repro/obs/stats.py",
)


def mypy_available() -> bool:
    try:
        import mypy.api  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(root: Path) -> dict[str, Any]:
    """Run mypy (if available) and fold the result into report shape:
    ``{"status": "clean"|"errors"|"skipped"|"broken", ...}``."""
    config = root / "mypy.ini"
    if not mypy_available():
        return {
            "status": "skipped",
            "reason": "mypy is not installed in this environment",
        }
    if not config.is_file():
        return {"status": "skipped", "reason": "no mypy.ini at repo root"}
    cmd = [sys.executable, "-m", "mypy", "--config-file", str(config),
           *MYPY_TARGETS]
    try:
        proc = subprocess.run(
            cmd, cwd=root, capture_output=True, text=True, timeout=600,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return {"status": "broken", "reason": str(exc)}
    lines = [line for line in proc.stdout.splitlines() if line.strip()]
    if proc.returncode == 0:
        return {"status": "clean", "n_errors": 0, "output": lines[-3:]}
    # mypy exits 1 on type errors, 2 on usage/config errors
    status = "errors" if proc.returncode == 1 else "broken"
    errors = [line for line in lines if ": error:" in line]
    return {
        "status": status,
        "n_errors": len(errors),
        "output": lines[:200],
        "stderr": proc.stderr.splitlines()[:20],
    }
