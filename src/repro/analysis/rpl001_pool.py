"""RPL001 — packet-pool lifecycle discipline.

The packet hot path recycles :class:`~repro.net.packet.Packet` and
scheduling-header objects through the shared
:class:`~repro.net.pool.PacketPool` (PR 7). Two contracts keep that
safe, and both have failure modes that pass every unit test while
corrupting accounting at scale:

* **No raw construction.** ``Packet()`` / ``PdqHeader()`` /
  ``RcpHeader()`` / ``D3Header()`` built outside the pool (and outside
  the modules that define them) bypass the free lists: releasing such a
  packet poisons the pool with an object whose fields were never
  normalized, and never releasing it is a silent leak.
* **Acquire implies a reachable terminal sink.** A file set that
  acquires from a pool must contain at least one ``release`` call, and
  when the real link/node modules are in the set their documented
  terminal sinks (``Host.receive``, ``Link.enqueue`` on tail-drop,
  ``Link._finish`` on wire loss, and ``Link.fail`` — the fault
  controller's drop path, which drains a failed link's queue) must
  still release — deleting one is exactly the kind of "cleanup" a later
  refactor would try.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    attribute_chain,
    call_name,
    register_checker,
)
from repro.analysis.diagnostics import Diagnostic

#: classes whose direct construction bypasses the pool
POOLED_CLASSES = ("Packet", "PdqHeader", "RcpHeader", "D3Header")

#: files allowed to construct pooled classes directly: the pool itself
#: and the modules that define the classes (their copy()/constructor
#: helpers are the canonical construction sites)
CONSTRUCTION_ALLOWED = ("pool.py", "packet.py", "headers.py")

#: (file suffix, function name) -> the documented terminal sinks that
#: must keep releasing into the pool
REQUIRED_SINKS: tuple[tuple[str, str], ...] = (
    ("net/link.py", "enqueue"),
    ("net/link.py", "_finish"),
    ("net/link.py", "fail"),
    ("net/node.py", "receive"),
)


def _pool_calls(sf: SourceFile) -> tuple[list[ast.Call], list[ast.Call]]:
    """(acquire calls, release calls) on pool-like receivers."""
    acquires: list[ast.Call] = []
    releases: list[ast.Call] = []
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        chain = attribute_chain(func)
        if chain is None or "pool" not in chain[:-1]:
            continue
        if func.attr.startswith("acquire"):
            acquires.append(node)
        elif func.attr in ("release", "release_header"):
            releases.append(node)
    return acquires, releases


def _enclosing_functions(sf: SourceFile) -> dict[int, str]:
    """Map every line to the name of its innermost enclosing function."""
    spans: dict[int, str] = {}
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            for line in range(node.lineno, end + 1):
                spans[line] = node.name
    return spans


@register_checker("RPL001", "pool lifecycle: no raw Packet/Header "
                            "construction; acquires need a release sink")
def check(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    total_acquires = 0
    total_releases = 0
    release_functions: set[tuple[str, str]] = set()
    first_acquire: tuple[str, int] = ("", 0)

    for sf in ctx.files:
        # raw construction outside the defining modules
        if sf.basename not in CONSTRUCTION_ALLOWED:
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.Call) and \
                        call_name(node) in POOLED_CLASSES:
                    yield Diagnostic(
                        "RPL001", sf.relpath, node.lineno,
                        f"direct {call_name(node)}() construction bypasses "
                        f"the PacketPool free lists; use pool.acquire* "
                        f"(allowed only in {'/'.join(CONSTRUCTION_ALLOWED)} "
                        f"and tests)",
                    )

        acquires, releases = _pool_calls(sf)
        if acquires and not total_acquires:
            first_acquire = (sf.relpath, acquires[0].lineno)
        total_acquires += len(acquires)
        total_releases += len(releases)
        if releases:
            owners = _enclosing_functions(sf)
            for call in releases:
                release_functions.add(
                    (sf.relpath, owners.get(call.lineno, "<module>"))
                )

    # a file set that acquires but never releases has no terminal sink
    if total_acquires and not total_releases:
        path, line = first_acquire
        yield Diagnostic(
            "RPL001", path, line,
            "pool.acquire* with no reachable terminal-sink release in the "
            "analyzed file set: every acquired packet must be released by "
            "exactly one sink (consuming host, tail-drop, or wire loss)",
        )

    # the documented sinks must keep releasing when their module is here
    for suffix, fn_name in REQUIRED_SINKS:
        sf = ctx.file(suffix)
        if sf is None:
            continue
        if not any(rel.endswith(suffix) and fn == fn_name
                   for rel, fn in release_functions):
            yield Diagnostic(
                "RPL001", sf.relpath, 0,
                f"terminal sink {fn_name}() no longer releases into the "
                f"pool — the packet lifecycle contract (PR 7) names it as "
                f"a release site; removing it leaks every packet that "
                f"ends there",
            )
