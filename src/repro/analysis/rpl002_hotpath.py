"""RPL002 — hot-path purity for ``# repro: hot`` functions.

The packet engine's throughput (240k-363k events/sec and climbing
toward the ROADMAP's 1M target) rests on a handful of functions staying
allocation- and indirection-free: ``Link._finish``, ``Simulator.run``,
the :class:`~repro.net.queues.DropTailQueue` ring operations, and the
transport send paths. Those functions carry a ``# repro: hot`` marker;
this checker rejects constructs that past PRs spent effort removing:

* closures and lambdas (PR 4 made the event loop closure-free);
* f-string building and logging calls (PR 6's parity rule: telemetry
  is harvested at the adapter boundary, never per-packet) — f-strings
  inside ``raise`` statements are exempt, error paths are cold;
* ``dict``/``list``/``set`` literals, comprehensions, or constructor
  calls inside loops (per-iteration allocation);
* capitalized constructor calls and deep (3+) attribute chains inside
  loops (per-iteration object churn / repeated bound-method lookups —
  PR 4 and PR 7 cached exactly these).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    AnalysisContext,
    attribute_chain,
    hot_functions,
    register_checker,
)
from repro.analysis.diagnostics import Diagnostic

#: builtin calls that allocate a fresh container per call
_CONTAINER_CALLS = ("dict", "list", "set", "tuple", "frozenset")

#: method names that smell like logging regardless of receiver name
_LOG_METHODS = ("debug", "info", "warning", "error", "exception",
                "critical")

#: receiver names that identify a logger
_LOG_RECEIVERS = ("log", "logger", "logging")

_LOOP_NODES = (ast.For, ast.While, ast.AsyncFor)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
_LITERALS = {
    ast.Dict: "dict literal",
    ast.List: "list literal",
    ast.Set: "set literal",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


def _raise_lines(fn: ast.FunctionDef) -> set[int]:
    """Lines covered by ``raise`` statements (cold error paths)."""
    lines: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise):
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


def _violations(fn: ast.FunctionDef) -> list[tuple[int, str]]:
    found: list[tuple[int, str]] = []
    cold = _raise_lines(fn)

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            lineno = getattr(child, "lineno", None)
            is_cold = lineno is not None and lineno in cold
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append((child.lineno,
                              f"closure {child.name}() defined in a hot "
                              f"function (allocates a function object per "
                              f"call; hoist it or preallocate a bound "
                              f"method)"))
                continue  # don't descend: one finding per closure
            if isinstance(child, ast.Lambda):
                found.append((child.lineno, "lambda in a hot function"))
                continue
            if isinstance(child, ast.JoinedStr) and not is_cold:
                found.append((child.lineno,
                              "f-string built on the hot path (string "
                              "building belongs at the adapter boundary; "
                              "raise statements are exempt)"))
            if isinstance(child, ast.Call) and not is_cold:
                _check_call(child, in_loop)
            if not is_cold and in_loop and \
                    type(child) in _LITERALS:
                found.append((child.lineno,
                              f"{_LITERALS[type(child)]} inside a loop in "
                              f"a hot function (allocates per iteration)"))
            child_in_loop = in_loop or isinstance(
                child, _LOOP_NODES + _COMPREHENSIONS
            )
            visit(child, child_in_loop)

    def _check_call(call: ast.Call, in_loop: bool) -> None:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        chain = attribute_chain(func)
        if chain is not None and (
            chain[0] in _LOG_RECEIVERS
            or (len(chain) > 1 and chain[-1] in _LOG_METHODS
                and any("log" in part for part in chain[:-1]))
        ):
            found.append((call.lineno, "logging call in a hot function "
                                       "(harvest counters at the adapter "
                                       "boundary instead)"))
            return
        if not in_loop:
            return
        if isinstance(func, ast.Name) and name in _CONTAINER_CALLS:
            found.append((call.lineno,
                          f"{name}() constructed inside a loop in a hot "
                          f"function"))
        elif isinstance(func, ast.Name) and name and name[0].isupper():
            found.append((call.lineno,
                          f"{name}() constructed inside a loop in a hot "
                          f"function (allocation per iteration)"))
        elif chain is not None and len(chain) >= 4:
            found.append((call.lineno,
                          f"attribute-chained call "
                          f"{'.'.join(chain)}() inside a loop in a hot "
                          f"function (cache the bound method outside the "
                          f"loop)"))

    visit(fn, in_loop=False)
    return found


@register_checker("RPL002", "hot-path purity: '# repro: hot' functions "
                            "stay closure-, logging- and allocation-free")
def check(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for sf in ctx.files:
        if not sf.hot_lines:
            continue
        for qualname, fn in hot_functions(sf):
            for lineno, message in _violations(fn):
                yield Diagnostic(
                    "RPL002", sf.relpath, lineno,
                    f"{qualname}: {message}",
                )
