"""RPL003 — registry discipline for kind-name string literals.

Scenario specs reference topologies, workloads, engines, and reducers
by registered *kind* names. A typo in one of those strings is only
caught when the scenario actually executes — for rarely-run panels that
can be days later, inside a fleet campaign. This checker resolves every
string literal passed as ``kind=`` (to ``TopologySpec`` /
``WorkloadSpec``), ``engine=``, or ``reducer=`` against the *live*
registries at lint time, reusing
:func:`repro.campaign.registry.unknown_kind` so the diagnostic carries
the same close-match "did you mean" hint the runtime error would.

Registration sites (``register_*("name")`` decorators) define kinds
rather than referencing them and are skipped.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from repro.analysis.core import AnalysisContext, register_checker
from repro.analysis.diagnostics import Diagnostic


def _live_registries() -> dict[str, tuple[str, list[str]]]:
    """kwarg name -> (registry label, known kinds), resolved from the
    live registries (experiment modules loaded, so figure-registered
    workload and reducer kinds count)."""
    from repro.campaign.engines import engine_kinds
    from repro.campaign.registry import topology_kinds, workload_kinds
    from repro.experiments.reducers import reducer_kinds

    return {
        "topology": ("topology", topology_kinds()),
        "workload": ("workload", workload_kinds()),
        "engine": ("engine", list(engine_kinds())),
        "reducer": ("reducer", reducer_kinds()),
    }


#: constructor name -> which registry its kind argument resolves against
_KIND_CONSTRUCTORS = {
    "TopologySpec": "topology",
    "WorkloadSpec": "workload",
}


def _literal(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _hint(kind: str, known: Sequence[str]) -> str:
    """The registry's own listing + close-match hint, reused verbatim so
    lint-time and runtime errors read identically."""
    from repro.campaign.registry import unknown_kind

    message = str(unknown_kind("", kind, known))
    return message.split("; ", 1)[1] if "; " in message else message


@register_checker("RPL003", "registry discipline: kind/engine/reducer "
                            "string literals resolve against the live "
                            "registries")
def check(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    registries = _live_registries()

    def resolve(registry: str, value: str, sf, lineno: int,
                what: str) -> Diagnostic | None:
        label, known = registries[registry]
        if value in known:
            return None
        return Diagnostic(
            "RPL003", sf.relpath, lineno,
            f"{what} {value!r} is not a registered {label} kind; "
            f"{_hint(value, known)}",
        )

    for sf in ctx.files:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name is None or name.startswith("register_"):
                continue
            # TopologySpec("kind", ...) / WorkloadSpec(kind="kind")
            registry = _KIND_CONSTRUCTORS.get(name)
            if registry is not None:
                value = _literal(node.args[0]) if node.args else None
                for kw in node.keywords:
                    if kw.arg == "kind":
                        value = _literal(kw.value)
                if value is not None:
                    diag = resolve(registry, value, sf, node.lineno,
                                   f"{name} kind")
                    if diag is not None:
                        yield diag
            # engine= / reducer= keyword literals in any call
            for kw in node.keywords:
                if kw.arg not in ("engine", "reducer"):
                    continue
                value = _literal(kw.value)
                if value is None:
                    continue
                diag = resolve(kw.arg, value, sf, node.lineno,
                               f"{kw.arg}=")
                if diag is not None:
                    yield diag
