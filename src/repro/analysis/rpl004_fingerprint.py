"""RPL004 — hash-pin guard for the canonicalization functions.

Scenario and experiment cache keys are SHA-256 hashes of canonical JSON
(``campaign/spec.py`` and ``experiments/api.py``). Editing any function
on that path silently changes every cache key: warm stores re-execute
from scratch, pinned experiment keys in user spec files stop matching,
and nothing fails loudly. This checker fingerprints those functions by
*normalized AST hash* (docstrings stripped, formatting and line numbers
irrelevant) against the pinned table in
``src/repro/analysis/fingerprints.json``; an edit without a matching
re-pin is a lint error, which turns a silent cache-key break into a
visible two-file diff that review can interrogate.

Re-pin (after deciding the key break is intended) with::

    python -m repro check --repin-fingerprints
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path
from collections.abc import Iterator

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    iter_functions,
    register_checker,
)
from repro.analysis.diagnostics import Diagnostic

#: default pin table, colocated with the analysis package
DEFAULT_FINGERPRINT_PATH = Path(__file__).parent / "fingerprints.json"

#: module (relpath suffix) -> canonicalization functions pinned there
PINNED_FUNCTIONS = {
    "campaign/spec.py": (
        "_plain",
        "canonical_json",
        "TopologySpec.canonical",
        "WorkloadSpec.canonical",
        "ScenarioSpec.canonical",
        "ScenarioSpec.key",
    ),
    "experiments/api.py": (
        "_axes_tuple",
        "SearchSpec.canonical",
        "Panel.canonical",
        "Panel.key",
        "Experiment.canonical",
        "Experiment.key",
    ),
}


def normalized_fingerprint(fn: ast.FunctionDef) -> str:
    """SHA-256 of the function's AST with docstring dropped and
    locations ignored — whitespace, comments, and docstring edits do
    not change the fingerprint; any behavioral edit does."""
    node = copy.deepcopy(fn)
    body = node.body
    if body and isinstance(body[0], ast.Expr) and \
            isinstance(body[0].value, ast.Constant) and \
            isinstance(body[0].value.value, str):
        node.body = body[1:] or [ast.Pass()]
    dump = ast.dump(node, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()


def file_fingerprints(sf: SourceFile, names) -> dict[str, str | None]:
    """qualname -> fingerprint (None when the function is missing)."""
    wanted = set(names)
    out: dict[str, str | None] = {name: None for name in names}
    for qualname, fn in iter_functions(sf.tree):
        if qualname in wanted:
            out[qualname] = normalized_fingerprint(fn)
    return out


def compute_fingerprints(ctx: AnalysisContext) -> dict[str, dict[str, str]]:
    """The current pin table for every pinned module present in ctx."""
    table: dict[str, dict[str, str]] = {}
    for suffix, names in PINNED_FUNCTIONS.items():
        sf = ctx.file(suffix)
        if sf is None:
            continue
        got = file_fingerprints(sf, names)
        table[suffix] = {name: fp for name, fp in got.items()
                         if fp is not None}
    return table


def load_pins(ctx: AnalysisContext) -> dict[str, dict[str, str]] | None:
    path = ctx.fingerprint_path or DEFAULT_FINGERPRINT_PATH
    if not Path(path).is_file():
        return None
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return data.get("fingerprints", data)


def write_pins(ctx: AnalysisContext) -> Path:
    """Recompute and rewrite the pin table (``--repin-fingerprints``)."""
    path = Path(ctx.fingerprint_path or DEFAULT_FINGERPRINT_PATH)
    payload = {
        "schema": 1,
        "comment": "normalized-AST fingerprints of the cache-key "
                   "canonicalization functions; RPL004 fails when an "
                   "edit is not re-pinned here. Re-pin: python -m repro "
                   "check --repin-fingerprints",
        "fingerprints": compute_fingerprints(ctx),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


@register_checker("RPL004", "hash-pin guard: cache-key canonicalization "
                            "functions match their pinned fingerprints")
def check(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    pins = load_pins(ctx)
    if pins is None:
        path = ctx.fingerprint_path or DEFAULT_FINGERPRINT_PATH
        yield Diagnostic(
            "RPL004", str(path), 0,
            "pinned fingerprint table is missing; create it with "
            "`python -m repro check --repin-fingerprints`",
        )
        return
    for suffix, names in PINNED_FUNCTIONS.items():
        sf = ctx.file(suffix)
        if sf is None:
            continue  # partial run: module not in the analyzed set
        pinned = pins.get(suffix, {})
        current = file_fingerprints(sf, names)
        for name in names:
            fp = current[name]
            if fp is None:
                yield Diagnostic(
                    "RPL004", sf.relpath, 0,
                    f"pinned canonicalization function {name} no longer "
                    f"exists — renaming or removing it changes every "
                    f"cache key derived from it; restore it or re-pin "
                    f"deliberately",
                )
            elif name not in pinned:
                yield Diagnostic(
                    "RPL004", sf.relpath, 0,
                    f"canonicalization function {name} has no pinned "
                    f"fingerprint; pin it with `python -m repro check "
                    f"--repin-fingerprints`",
                )
            elif pinned[name] != fp:
                yield Diagnostic(
                    "RPL004", sf.relpath, 0,
                    f"canonicalization function {name} changed "
                    f"(fingerprint {fp[:12]} != pinned "
                    f"{pinned[name][:12]}): this breaks every existing "
                    f"cache key and pinned experiment key. If intended, "
                    f"re-pin with `python -m repro check "
                    f"--repin-fingerprints` and re-baseline the key pins "
                    f"in tests",
                )
