"""RPL005 — event-shape guard: deliveries schedule only at tx-finish.

PR 7's hardest-won lesson (the fig3c regression): the packet engine's
two-event transmission pipeline assigns the delivery event's heap
sequence number when serialization *finishes*. Scheduling a delivery at
tx-*start* — the "obvious" refactor when inlining link scheduling —
hands the delivery an earlier seq, which flips same-timestamp tie
orders and visibly shifts high-flow-count trajectories while every
small test stays green. This checker makes that shape a lint-time
contract:

* scheduling a *delivery callback* (``receive`` / ``_deliver_cb``)
  through ``call_after``/``call_at``/``schedule``/``schedule_at`` or a
  direct heap push is allowed only inside ``Link._finish``;
* direct pushes onto a simulator's ``_heap`` are allowed only in the
  simulator itself and in ``net/link.py`` (the two inlined hot sites) —
  everywhere else must go through the scheduling API, which keeps the
  ``(time, seq)`` ordering invariants in one place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    AnalysisContext,
    SourceFile,
    register_checker,
)
from repro.analysis.diagnostics import Diagnostic

_SCHEDULING_METHODS = ("call_after", "call_at", "schedule", "schedule_at")

#: files allowed to push heap entries directly (suffix match)
_HEAP_PUSH_ALLOWED = ("events/simulator.py", "net/link.py")

#: the one function allowed to schedule a delivery callback
_DELIVERY_SITE = ("net/link.py", "_finish")


def _mentions_delivery_callback(node: ast.AST) -> bool:
    """True when an expression references a delivery callback: an
    attribute named ``receive`` or ``_deliver_cb`` (bound or bare)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and \
                sub.attr in ("receive", "_deliver_cb"):
            return True
        if isinstance(sub, ast.Name) and sub.id == "_deliver_cb":
            return True
    return False


def _enclosing_function(sf: SourceFile,
                        lineno: int) -> tuple[str, int] | None:
    """(innermost function name, def line) covering ``lineno``."""
    best: tuple[str, int] | None = None
    for node in ast.walk(sf.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= lineno <= end and \
                    (best is None or node.lineno > best[1]):
                best = (node.name, node.lineno)
    return best


@register_checker("RPL005", "event shape: delivery callbacks are "
                            "scheduled only at Link tx-finish")
def check(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    site_file, site_fn = _DELIVERY_SITE
    for sf in ctx.files:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sched = (isinstance(func, ast.Attribute)
                        and func.attr in _SCHEDULING_METHODS)
            is_heap_push = (
                (isinstance(func, ast.Name) and func.id == "heappush")
                or (isinstance(func, ast.Attribute)
                    and func.attr == "heappush")
            ) and node.args and isinstance(node.args[0], ast.Attribute) \
                and node.args[0].attr == "_heap"
            if not (is_sched or is_heap_push):
                continue

            if is_heap_push and not any(
                sf.relpath.endswith(suffix) for suffix in _HEAP_PUSH_ALLOWED
            ):
                yield Diagnostic(
                    "RPL005", sf.relpath, node.lineno,
                    "direct push onto a simulator heap outside the "
                    "simulator and net/link.py: use "
                    "sim.call_after/schedule so the (time, seq) ordering "
                    "contract stays in one place",
                )
                continue

            # does this scheduling call carry a delivery callback?
            payload = node.args[1:] if is_heap_push else node.args
            if not any(_mentions_delivery_callback(arg) for arg in payload):
                continue
            enclosing = _enclosing_function(sf, node.lineno)
            in_site = (sf.relpath.endswith(site_file)
                       and enclosing is not None
                       and enclosing[0] == site_fn)
            if not in_site:
                where = enclosing[0] if enclosing else "<module>"
                yield Diagnostic(
                    "RPL005", sf.relpath, node.lineno,
                    f"delivery callback scheduled in {where}(): link "
                    f"deliveries may only be scheduled at the tx-finish "
                    f"site (Link.{site_fn}). Scheduling them earlier "
                    f"assigns an earlier heap seq and flips "
                    f"same-timestamp tie orders (the fig3c regression)",
                )
