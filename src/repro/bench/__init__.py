"""Flow-level engine performance harness (``python -m repro bench``).

Times canonical scenarios on the optimized
:class:`~repro.flowsim.engine.FlowLevelSimulation`, optionally re-runs
them on the frozen
:class:`~repro.flowsim.naive.NaiveFlowLevelSimulation` baseline to report
speedups (asserting bit-identical metrics in passing), and writes the
results to ``BENCH_flowsim.json`` so the repo accumulates a performance
trajectory across PRs.
"""

from repro.bench.harness import (
    BenchResult,
    run_bench,
    write_history,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, BenchScenario

__all__ = [
    "BenchResult",
    "BenchScenario",
    "SCENARIOS",
    "run_bench",
    "write_history",
    "write_report",
]
