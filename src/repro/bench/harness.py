"""Timing harness for the benchmark scenarios (both engines).

Flow-level scenarios run on the optimized engine and (unless disabled) on
the frozen naive baseline; the baseline run doubles as a live parity
check — a metrics mismatch is a hard error, not a statistic.

Packet-level scenarios time the discrete-event stack (``iterations`` is
the simulator's processed-event count, so ``events_per_sec`` is directly
comparable across PRs). The packet engine has no frozen naive twin, so
those rows carry no baseline/speedup/parity columns; correctness is
covered by ``python -m repro validate`` instead.

Every benchmark also reports ``flows_per_sec`` and (unless disabled with
``--no-mem``) ``peak_mem_bytes`` from one extra run under tracemalloc —
the untraced timing runs stay clean, since tracemalloc slows allocation
severalfold. Streaming (open-system) scenarios pair the engine with a
memory-bounded :class:`~repro.metrics.streaming.StreamingMetricsCollector`
and skip the naive baseline, which only understands batch workloads.
"""

from __future__ import annotations

import json
import platform
import time
import tracemalloc
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import ExperimentError
from repro.flowsim.engine import FlowLevelSimulation
from repro.flowsim.naive import NaiveFlowLevelSimulation, naive_model_for
from repro.bench.scenarios import SCENARIOS, BenchScenario

DEFAULT_REPORT = "BENCH_flowsim.json"

#: report/history schema: 2 adds flows_per_sec + peak_mem_bytes columns
#: and the streaming scenarios
BENCH_SCHEMA = 2

#: seed for the streaming collectors' reservoir RNG in bench runs
_BENCH_METRICS_SEED = 0


def _bench_metrics():
    """Fresh streaming collector for an open-system bench run."""
    from repro.metrics.streaming import streaming_collector

    return streaming_collector(True, seed=_BENCH_METRICS_SEED)


@dataclass
class BenchResult:
    name: str
    description: str
    params: dict
    elapsed_s: float
    iterations: int
    recomputations: int
    flows: int
    completed: int
    terminated: int
    engine: str = "flow"
    baseline_elapsed_s: float | None = None
    baseline_parity: bool | None = None
    peak_mem_bytes: int | None = None
    extras: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.iterations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def allocate_calls_per_sec(self) -> float:
        return (self.recomputations / self.elapsed_s
                if self.elapsed_s > 0 else 0.0)

    @property
    def flows_per_sec(self) -> float:
        return self.flows / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def speedup(self) -> float | None:
        if self.baseline_elapsed_s is None or self.elapsed_s <= 0:
            return None
        return self.baseline_elapsed_s / self.elapsed_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "engine": self.engine,
            "params": self.params,
            "elapsed_s": self.elapsed_s,
            "iterations": self.iterations,
            "recomputations": self.recomputations,
            "events_per_sec": self.events_per_sec,
            "allocate_calls_per_sec": self.allocate_calls_per_sec,
            "flows": self.flows,
            "flows_per_sec": self.flows_per_sec,
            "completed": self.completed,
            "terminated": self.terminated,
            "baseline_elapsed_s": self.baseline_elapsed_s,
            "speedup": self.speedup,
            "baseline_parity": self.baseline_parity,
            "peak_mem_bytes": self.peak_mem_bytes,
            **({"extras": self.extras} if self.extras else {}),
        }


def _timed_run(engine_cls, scenario: BenchScenario, quick: bool, repeat: int,
               model_transform=None):
    """Best-of-``repeat`` wall time; returns (elapsed, sim, metrics)."""
    best = None
    for _ in range(max(1, repeat)):
        elapsed, sim, metrics = _one_run(engine_cls, scenario, quick,
                                         model_transform)
        if best is None or elapsed < best[0]:
            best = (elapsed, sim, metrics)
    return best


def _one_run(engine_cls, scenario: BenchScenario, quick: bool,
             model_transform=None):
    topology, model, flows, sim_deadline = scenario.build(quick)
    if model_transform is not None:
        model = model_transform(model)
    if scenario.streaming:
        sim = engine_cls(topology, model, metrics=_bench_metrics())
    else:
        sim = engine_cls(topology, model)
    started = time.perf_counter()
    metrics = sim.run(flows, deadline=sim_deadline)
    elapsed = time.perf_counter() - started
    return elapsed, sim, metrics


def _timed_packet_run(scenario: BenchScenario, quick: bool, repeat: int):
    """Best-of-``repeat`` wall time for a packet-level scenario; returns
    (elapsed, simulator, metrics)."""
    best = None
    for _ in range(max(1, repeat)):
        elapsed, sim, metrics = _one_packet_run(scenario, quick)
        if best is None or elapsed < best[0]:
            best = (elapsed, sim, metrics)
    return best


def _one_packet_run(scenario: BenchScenario, quick: bool):
    from repro.campaign.engines import make_stack
    from repro.net.network import Network

    topology, protocol, flows, sim_deadline = scenario.build(quick)
    metrics = _bench_metrics() if scenario.streaming else None
    net = Network(topology, make_stack(protocol), metrics=metrics)
    started = time.perf_counter()
    net.launch(flows)
    net.run_until_quiet(deadline=sim_deadline)
    elapsed = time.perf_counter() - started
    return elapsed, net.sim, net.metrics


def _peak_memory(run_once) -> int:
    """Peak traced allocation of one full build+run pass.

    A separate pass, not the timed one: tracemalloc slows allocation
    severalfold, so folding it into the timing runs would poison every
    events_per_sec trajectory in the history file.
    """
    tracemalloc.start()
    try:
        run_once()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _flow_counts(metrics) -> tuple[int, int, int]:
    """(flows, completed, terminated) for either collector flavor."""
    n_completed = getattr(metrics, "n_completed", None)
    if n_completed is not None:
        return len(metrics), n_completed, metrics.n_terminated
    records = metrics.all_records()
    return (len(records),
            sum(1 for r in records if r.completed),
            sum(1 for r in records if r.terminated))


def run_packet_scenario(scenario: BenchScenario, quick: bool = False,
                        repeat: int = 1,
                        measure_memory: bool = True) -> BenchResult:
    elapsed, sim, metrics = _timed_packet_run(scenario, quick, repeat)
    flows, completed, terminated = _flow_counts(metrics)
    peak = (_peak_memory(lambda: _one_packet_run(scenario, quick))
            if measure_memory else None)
    return BenchResult(
        name=scenario.name,
        description=scenario.description,
        params=scenario.params(quick),
        elapsed_s=elapsed,
        iterations=sim.processed_events,
        recomputations=0,
        flows=flows,
        completed=completed,
        terminated=terminated,
        engine="packet",
        peak_mem_bytes=peak,
        # heap hygiene: how tombstone-laden the event heap ended up and
        # how often bounded compaction had to rebuild it
        extras={
            "cancelled_ratio": round(sim.cancelled_ratio, 6),
            "compactions": sim.compactions,
            "pending_at_exit": sim.pending(),
        },
    )


def run_scenario(scenario: BenchScenario, quick: bool = False,
                 baseline: bool = True, repeat: int = 1,
                 measure_memory: bool = True) -> BenchResult:
    if scenario.engine == "packet":
        return run_packet_scenario(scenario, quick=quick, repeat=repeat,
                                   measure_memory=measure_memory)
    elapsed, sim, metrics = _timed_run(
        FlowLevelSimulation, scenario, quick, repeat
    )
    flows, completed, terminated = _flow_counts(metrics)
    peak = (_peak_memory(
        lambda: _one_run(FlowLevelSimulation, scenario, quick))
        if measure_memory else None)
    result = BenchResult(
        name=scenario.name,
        description=scenario.description,
        params=scenario.params(quick),
        elapsed_s=elapsed,
        iterations=sim.iterations,
        recomputations=sim.recomputations,
        flows=flows,
        completed=completed,
        terminated=terminated,
        peak_mem_bytes=peak,
    )
    if baseline and not scenario.streaming:
        # the baseline pairs the frozen engine with the frozen models, so
        # speedups measure the whole pre-PR hot path, not just the engine
        base_elapsed, _, base_metrics = _timed_run(
            NaiveFlowLevelSimulation, scenario, quick, repeat,
            model_transform=naive_model_for,
        )
        result.baseline_elapsed_s = base_elapsed
        result.baseline_parity = metrics.to_dict() == base_metrics.to_dict()
        if not result.baseline_parity:
            raise ExperimentError(
                f"benchmark {scenario.name!r}: optimized engine diverged "
                "from the naive baseline (metrics mismatch)"
            )
    return result


def run_bench(only: Sequence[str] | None = None, quick: bool = False,
              baseline: bool = True, repeat: int = 1,
              scenarios: Sequence[BenchScenario] | None = None,
              measure_memory: bool = True,
              ) -> list[BenchResult]:
    pool = list(scenarios if scenarios is not None else SCENARIOS)
    if only:
        wanted = set(only)
        known = {s.name for s in pool}
        unknown = wanted - known
        if unknown:
            raise ExperimentError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        pool = [s for s in pool if s.name in wanted]
    return [
        run_scenario(s, quick=quick, baseline=baseline, repeat=repeat,
                     measure_memory=measure_memory)
        for s in pool
    ]


def write_report(results: Sequence[BenchResult], path: str = DEFAULT_REPORT,
                 quick: bool = False) -> dict:
    """Write ``BENCH_flowsim.json`` and return the report dict."""
    report = {
        "schema": BENCH_SCHEMA,
        "suite": "flowsim",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "benchmarks": [r.to_dict() for r in results],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


DEFAULT_HISTORY = "BENCH_history.jsonl"


def write_history(results: Sequence[BenchResult],
                  path: str = DEFAULT_HISTORY, quick: bool = False) -> dict:
    """Append one timestamped summary row to the bench history JSONL.

    One line per ``repro bench`` invocation (not per benchmark), so the
    file reads as a performance trajectory across PRs: ``git log`` for
    wall times. Returns the row appended.
    """
    row = {
        "schema": BENCH_SCHEMA,
        "suite": "flowsim",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "benchmarks": {
            r.name: {
                "engine": r.engine,
                "elapsed_s": round(r.elapsed_s, 6),
                "events_per_sec": round(r.events_per_sec, 1),
                "flows_per_sec": round(r.flows_per_sec, 1),
                **({"peak_mem_bytes": r.peak_mem_bytes}
                   if r.peak_mem_bytes is not None else {}),
                **({"speedup": round(r.speedup, 3)}
                   if r.speedup is not None else {}),
            }
            for r in results
        },
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row) + "\n")
    return row
