"""Timing harness for the benchmark scenarios (both engines).

Flow-level scenarios run on the optimized engine and (unless disabled) on
the frozen naive baseline; the baseline run doubles as a live parity
check — a metrics mismatch is a hard error, not a statistic.

Packet-level scenarios time the discrete-event stack (``iterations`` is
the simulator's processed-event count, so ``events_per_sec`` is directly
comparable across PRs). The packet engine has no frozen naive twin, so
those rows carry no baseline/speedup/parity columns; correctness is
covered by ``python -m repro validate`` instead.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import ExperimentError
from repro.flowsim.engine import FlowLevelSimulation
from repro.flowsim.naive import NaiveFlowLevelSimulation, naive_model_for
from repro.bench.scenarios import SCENARIOS, BenchScenario

DEFAULT_REPORT = "BENCH_flowsim.json"


@dataclass
class BenchResult:
    name: str
    description: str
    params: dict
    elapsed_s: float
    iterations: int
    recomputations: int
    flows: int
    completed: int
    terminated: int
    engine: str = "flow"
    baseline_elapsed_s: float | None = None
    baseline_parity: bool | None = None
    extras: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.iterations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def allocate_calls_per_sec(self) -> float:
        return (self.recomputations / self.elapsed_s
                if self.elapsed_s > 0 else 0.0)

    @property
    def speedup(self) -> float | None:
        if self.baseline_elapsed_s is None or self.elapsed_s <= 0:
            return None
        return self.baseline_elapsed_s / self.elapsed_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "engine": self.engine,
            "params": self.params,
            "elapsed_s": self.elapsed_s,
            "iterations": self.iterations,
            "recomputations": self.recomputations,
            "events_per_sec": self.events_per_sec,
            "allocate_calls_per_sec": self.allocate_calls_per_sec,
            "flows": self.flows,
            "completed": self.completed,
            "terminated": self.terminated,
            "baseline_elapsed_s": self.baseline_elapsed_s,
            "speedup": self.speedup,
            "baseline_parity": self.baseline_parity,
            **({"extras": self.extras} if self.extras else {}),
        }


def _timed_run(engine_cls, scenario: BenchScenario, quick: bool, repeat: int,
               model_transform=None):
    """Best-of-``repeat`` wall time; returns (elapsed, sim, metrics)."""
    best = None
    for _ in range(max(1, repeat)):
        topology, model, flows, sim_deadline = scenario.build(quick)
        if model_transform is not None:
            model = model_transform(model)
        sim = engine_cls(topology, model)
        started = time.perf_counter()
        metrics = sim.run(flows, deadline=sim_deadline)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, sim, metrics)
    return best


def _timed_packet_run(scenario: BenchScenario, quick: bool, repeat: int):
    """Best-of-``repeat`` wall time for a packet-level scenario; returns
    (elapsed, simulator, metrics)."""
    from repro.campaign.engines import make_stack
    from repro.net.network import Network

    best = None
    for _ in range(max(1, repeat)):
        topology, protocol, flows, sim_deadline = scenario.build(quick)
        net = Network(topology, make_stack(protocol))
        started = time.perf_counter()
        net.launch(flows)
        net.run_until_quiet(deadline=sim_deadline)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, net.sim, net.metrics)
    return best


def run_packet_scenario(scenario: BenchScenario, quick: bool = False,
                        repeat: int = 1) -> BenchResult:
    elapsed, sim, metrics = _timed_packet_run(scenario, quick, repeat)
    records = metrics.all_records()
    return BenchResult(
        name=scenario.name,
        description=scenario.description,
        params=scenario.params(quick),
        elapsed_s=elapsed,
        iterations=sim.processed_events,
        recomputations=0,
        flows=len(records),
        completed=sum(1 for r in records if r.completed),
        terminated=sum(1 for r in records if r.terminated),
        engine="packet",
        # heap hygiene: how tombstone-laden the event heap ended up and
        # how often bounded compaction had to rebuild it
        extras={
            "cancelled_ratio": round(sim.cancelled_ratio, 6),
            "compactions": sim.compactions,
            "pending_at_exit": sim.pending(),
        },
    )


def run_scenario(scenario: BenchScenario, quick: bool = False,
                 baseline: bool = True, repeat: int = 1) -> BenchResult:
    if scenario.engine == "packet":
        return run_packet_scenario(scenario, quick=quick, repeat=repeat)
    elapsed, sim, metrics = _timed_run(
        FlowLevelSimulation, scenario, quick, repeat
    )
    records = metrics.all_records()
    result = BenchResult(
        name=scenario.name,
        description=scenario.description,
        params=scenario.params(quick),
        elapsed_s=elapsed,
        iterations=sim.iterations,
        recomputations=sim.recomputations,
        flows=len(records),
        completed=sum(1 for r in records if r.completed),
        terminated=sum(1 for r in records if r.terminated),
    )
    if baseline:
        # the baseline pairs the frozen engine with the frozen models, so
        # speedups measure the whole pre-PR hot path, not just the engine
        base_elapsed, _, base_metrics = _timed_run(
            NaiveFlowLevelSimulation, scenario, quick, repeat,
            model_transform=naive_model_for,
        )
        result.baseline_elapsed_s = base_elapsed
        result.baseline_parity = metrics.to_dict() == base_metrics.to_dict()
        if not result.baseline_parity:
            raise ExperimentError(
                f"benchmark {scenario.name!r}: optimized engine diverged "
                "from the naive baseline (metrics mismatch)"
            )
    return result


def run_bench(only: Sequence[str] | None = None, quick: bool = False,
              baseline: bool = True, repeat: int = 1,
              scenarios: Sequence[BenchScenario] | None = None,
              ) -> list[BenchResult]:
    pool = list(scenarios if scenarios is not None else SCENARIOS)
    if only:
        wanted = set(only)
        known = {s.name for s in pool}
        unknown = wanted - known
        if unknown:
            raise ExperimentError(
                f"unknown benchmark(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        pool = [s for s in pool if s.name in wanted]
    return [
        run_scenario(s, quick=quick, baseline=baseline, repeat=repeat)
        for s in pool
    ]


def write_report(results: Sequence[BenchResult], path: str = DEFAULT_REPORT,
                 quick: bool = False) -> dict:
    """Write ``BENCH_flowsim.json`` and return the report dict."""
    report = {
        "schema": 1,
        "suite": "flowsim",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "benchmarks": [r.to_dict() for r in results],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


DEFAULT_HISTORY = "BENCH_history.jsonl"


def write_history(results: Sequence[BenchResult],
                  path: str = DEFAULT_HISTORY, quick: bool = False) -> dict:
    """Append one timestamped summary row to the bench history JSONL.

    One line per ``repro bench`` invocation (not per benchmark), so the
    file reads as a performance trajectory across PRs: ``git log`` for
    wall times. Returns the row appended.
    """
    row = {
        "schema": 1,
        "suite": "flowsim",
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "benchmarks": {
            r.name: {
                "engine": r.engine,
                "elapsed_s": round(r.elapsed_s, 6),
                "events_per_sec": round(r.events_per_sec, 1),
                **({"speedup": round(r.speedup, 3)}
                   if r.speedup is not None else {}),
            }
            for r in results
        },
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(row) + "\n")
    return row
