"""Canonical benchmark scenarios for both simulation engines.

Each scenario builds fresh topology/model/flows per call (engines and the
PDQ key cache are stateful), deterministically from a fixed seed, at one
of two scales: ``full`` (the numbers recorded in BENCH_flowsim.json) and
``quick`` (CI smoke: same shape, small enough to finish in seconds).

Flow-level scenarios build ``(topology, rate_model, flows, deadline)``
and are timed against the frozen naive baseline; packet-level scenarios
(``engine="packet"``) build ``(topology, protocol_name, flows,
deadline)`` and track the discrete-event stack's events/sec trajectory —
there is no naive packet twin, so they carry no baseline/parity columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.flowsim.d3_model import D3Model
from repro.flowsim.pdq_model import PdqModel
from repro.flowsim.rcp_model import RcpModel
from repro.topology.base import Topology
from repro.topology.fattree import FatTree
from repro.topology.single_bottleneck import SingleBottleneck
from repro.topology.single_rooted import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.workload.arrivals import poisson_arrivals
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows, random_permutation_flows
from repro.workload.sizes import uniform_sizes

#: (topology, model-or-protocol-name, flows, sim_deadline)
Built = tuple[Topology, object, list[FlowSpec], float]


@dataclass(frozen=True)
class BenchScenario:
    name: str
    description: str
    build: Callable[[bool], Built]  # build(quick) -> Built
    params: Callable[[bool], dict]  # the knobs that sized the run
    engine: str = "flow"            # "flow" | "packet"
    #: open-system cell: ``build`` returns a FlowStream instead of a flow
    #: list, the engine gets a memory-bounded streaming collector, and the
    #: naive baseline (which only understands batches) is skipped
    streaming: bool = False


def _single_bottleneck(quick: bool) -> Built:
    """Many flows contending for one bottleneck link under PDQ: the
    centralized water-filling recomputes at every completion, so this is
    the allocate()/sort hot path the ISSUE's >= 3x target measures."""
    n_flows = 150 if quick else 1000
    n_senders = 40
    rng = spawn_rng(20120813, "bench:single_bottleneck")
    sizes = uniform_sizes(n_flows, 80 * KBYTE, rng=rng)
    arrivals = poisson_arrivals(n_flows / 0.2, 0.2, rng=rng)
    flows = [
        FlowSpec(fid=i, src=f"send{i % n_senders}", dst="recv",
                 size_bytes=sizes[i],
                 arrival=arrivals[i] if i < len(arrivals) else 0.2)
        for i in range(n_flows)
    ]
    return (SingleBottleneck(n_senders), PdqModel(), flows, 30.0)


def _single_bottleneck_params(quick: bool) -> dict:
    return {"n_flows": 150 if quick else 1000, "n_senders": 40,
            "protocol": "PDQ(Full)"}


def _fig8_scale(quick: bool) -> Built:
    """Fig-8-style scale sweep cell: permutation traffic on a fat-tree
    under PDQ, deadline flows included (exercises early termination and
    the deadline-boundary horizon)."""
    n_servers = 16 if quick else 54
    flows_per_server = 2
    from repro.experiments.fig8 import permutation_workload, topology_for
    topo = topology_for("fattree", n_servers)
    flows = permutation_workload(topo, flows_per_server, seed=1,
                                 mean_deadline=20 * MSEC)
    return (topo, PdqModel(), flows, 4.0)


def _fig8_scale_params(quick: bool) -> dict:
    return {"family": "fattree", "n_servers": 16 if quick else 54,
            "flows_per_server": 2, "protocol": "PDQ(Full)",
            "mean_deadline_ms": 20}


def _fattree_multipath(quick: bool) -> Built:
    """Max-min fairness over many multi-hop ECMP paths: RCP's progressive
    filling touches every edge of every path, so this cell measures the
    edge-interning win on long paths."""
    n_servers = 16
    rounds = 2 if quick else 6
    topo = FatTree.for_servers(n_servers)
    hosts = topo.hosts
    rng = spawn_rng(20120813, "bench:fattree_multipath")
    flows: list[FlowSpec] = []
    fid = 0
    for r in range(rounds):
        sizes = uniform_sizes(len(hosts), 100 * KBYTE, rng=rng)
        for spec in random_permutation_flows(hosts, sizes, rng=rng):
            flows.append(spec.with_(fid=fid, arrival=r * 2 * MSEC))
            fid += 1
    return (topo, RcpModel(), flows, 10.0)


def _fattree_multipath_params(quick: bool) -> dict:
    return {"n_servers": 16, "permutation_rounds": 2 if quick else 6,
            "protocol": "RCP"}


def _d3_reservations(quick: bool) -> Built:
    """D3 first-come-first-reserve with deadline flows on one bottleneck:
    per-recomputation reservation sweeps plus leftover max-min."""
    n_flows = 80 if quick else 300
    n_senders = 20
    rng = spawn_rng(20120813, "bench:d3")
    sizes = uniform_sizes(n_flows, 60 * KBYTE, rng=rng)
    arrivals = poisson_arrivals(n_flows / 0.2, 0.2, rng=rng)
    flows = [
        FlowSpec(fid=i, src=f"send{i % n_senders}", dst="recv",
                 size_bytes=sizes[i],
                 arrival=arrivals[i] if i < len(arrivals) else 0.2,
                 deadline=(20 + 5 * (i % 9)) * MSEC)
        for i in range(n_flows)
    ]
    return (SingleBottleneck(n_senders), D3Model(), flows, 30.0)


def _d3_reservations_params(quick: bool) -> dict:
    return {"n_flows": 80 if quick else 300, "n_senders": 20,
            "protocol": "D3"}


def _packet_aggregation(quick: bool) -> Built:
    """Fig-3-style deadline fan-in at the packet level: PDQ endpoints,
    switches and per-packet scheduling headers on the single-rooted tree
    — the discrete-event hot path (link/queue/timer events)."""
    n_flows = 8 if quick else 24
    rng = spawn_rng(20120813, "bench:packet_aggregation")
    sizes = uniform_sizes(n_flows, 100 * KBYTE, rng=rng)
    deadlines = exponential_deadlines(n_flows, mean=30 * MSEC, rng=rng)
    senders = [f"h{i}" for i in range(1, 12)]
    flows = aggregation_flows(senders, "h0", sizes, deadlines=deadlines,
                              rng=rng)
    return (SingleRootedTree(), "PDQ(Full)", flows, 4.0)


def _packet_aggregation_params(quick: bool) -> dict:
    return {"n_flows": 8 if quick else 24, "protocol": "PDQ(Full)",
            "mean_deadline_ms": 30, "engine": "packet"}


def _packet_incast(quick: bool) -> Built:
    """Synchronized incast at the packet level: every sender fires at t=0
    into the one switch->receiver queue (TCP with the paper's small
    RTOmin). The bottleneck queue runs congested for the whole run, so
    this measures the tail-drop path, retransmission churn, and packet
    recycling under pressure — the queue/pool stress twin to the
    fan-in scenario's scheduling-header hot path."""
    n_senders = 12 if quick else 40
    rng = spawn_rng(20120813, "bench:packet_incast")
    sizes = uniform_sizes(n_senders, 1024 * KBYTE, rng=rng)
    flows = [
        FlowSpec(fid=i, src=f"send{i}", dst="recv", size_bytes=sizes[i])
        for i in range(n_senders)
    ]
    return (SingleBottleneck(n_senders), "TCP", flows, 8.0)


def _packet_incast_params(quick: bool) -> dict:
    return {"n_senders": 12 if quick else 40,
            "mean_size_kb": 1024,
            "protocol": "TCP", "engine": "packet"}


def _packet_vl2(quick: bool) -> Built:
    """Fig-5-style VL2 mix at the packet level under RCP: Poisson
    arrivals, heavy-tailed sizes, per-switch rate feedback — measures the
    packet engine under churn rather than fan-in."""
    rate = 1500.0 if quick else 3000.0
    duration = 0.02 if quick else 0.05
    from repro.experiments.fig5 import vl2_workload

    flows = vl2_workload(rate, duration, seed=1)
    return (SingleRootedTree(), "RCP", flows, duration + 1.0)


def _packet_vl2_params(quick: bool) -> dict:
    return {"rate_per_sec": 1500.0 if quick else 3000.0,
            "duration": 0.02 if quick else 0.05,
            "protocol": "RCP", "engine": "packet"}


#: simulated arrival rate of the stream-vl2 cells (flows per second);
#: sized so flow count is set by stream duration alone
STREAM_VL2_RATE = 100_000.0


def build_stream_vl2(n_flows: int, seed: int = 1):
    """Open-system VL2-mix stream sized to ``n_flows`` expected arrivals.

    Public so CI's memory-budget smoke and the memory-boundedness tests
    can build the *same* cell at other sizes (10k vs 100k) and compare
    peak tracemalloc. Sizes are scaled down so per-flow service time stays
    well under the mean interarrival gap: the live flow set — and with it
    peak memory — is O(concurrency), independent of ``n_flows``.
    """
    from repro.workload.open_system import open_system

    topo = SingleRootedTree()
    stream = open_system(topo, seed, duration=n_flows / STREAM_VL2_RATE,
                         rate_per_sec=STREAM_VL2_RATE, size_scale=0.005)
    return topo, stream


def _stream_vl2(quick: bool) -> Built:
    """Fluid million-flow open-system cell: RCP on the single-rooted
    tree under a scaled VL2 mix at 100k arrivals per simulated second —
    the constant-memory streaming hot path (admission, bounded path
    caches, streaming collector) end to end."""
    n_flows = 100_000 if quick else 1_000_000
    topo, stream = build_stream_vl2(n_flows)
    return (topo, RcpModel(), stream, stream.horizon)


def _stream_vl2_params(quick: bool) -> dict:
    return {"n_flows": 100_000 if quick else 1_000_000,
            "rate_per_sec": STREAM_VL2_RATE, "size_scale": 0.005,
            "protocol": "RCP", "workload": "open_system"}


def _stream_vl2_packet(quick: bool) -> Built:
    """Packet-level twin of the stream-vl2 cell, sized to the
    discrete-event budget (every packet is simulated, so flow counts sit
    ~100x under the fluid cell's); same admission path, same streaming
    collector, RCP's stateless switches keep per-flow switch state out
    of the picture."""
    n_flows = 1_000 if quick else 10_000
    from repro.workload.open_system import open_system

    topo = SingleRootedTree()
    stream = open_system(topo, 1, duration=n_flows / STREAM_VL2_RATE,
                         rate_per_sec=STREAM_VL2_RATE, size_scale=0.005)
    return (topo, "RCP", stream, stream.horizon)


def _stream_vl2_packet_params(quick: bool) -> dict:
    return {"n_flows": 1_000 if quick else 10_000,
            "rate_per_sec": STREAM_VL2_RATE, "size_scale": 0.005,
            "protocol": "RCP", "workload": "open_system",
            "engine": "packet"}


SCENARIOS: list[BenchScenario] = [
    BenchScenario(
        name="single-bottleneck",
        description="many PDQ flows on one bottleneck (allocate/sort hot path)",
        build=_single_bottleneck,
        params=_single_bottleneck_params,
    ),
    BenchScenario(
        name="fig8-scale",
        description="fig8-style fat-tree permutation sweep cell (PDQ, deadlines)",
        build=_fig8_scale,
        params=_fig8_scale_params,
    ),
    BenchScenario(
        name="fattree-multipath",
        description="RCP max-min over multi-hop ECMP paths (edge interning)",
        build=_fattree_multipath,
        params=_fattree_multipath_params,
    ),
    BenchScenario(
        name="d3-reservations",
        description="D3 reservation sweeps with deadline flows",
        build=_d3_reservations,
        params=_d3_reservations_params,
    ),
    BenchScenario(
        name="packet-aggregation",
        description="packet-level PDQ deadline fan-in (event-loop hot path)",
        build=_packet_aggregation,
        params=_packet_aggregation_params,
        engine="packet",
    ),
    BenchScenario(
        name="packet-vl2",
        description="packet-level RCP under a VL2 arrival mix",
        build=_packet_vl2,
        params=_packet_vl2_params,
        engine="packet",
    ),
    BenchScenario(
        name="packet-incast",
        description="packet-level TCP incast into one congested queue",
        build=_packet_incast,
        params=_packet_incast_params,
        engine="packet",
    ),
    BenchScenario(
        name="stream-vl2",
        description="open-system VL2 stream, fluid RCP (constant-memory path)",
        build=_stream_vl2,
        params=_stream_vl2_params,
        streaming=True,
    ),
    BenchScenario(
        name="stream-vl2-packet",
        description="open-system VL2 stream at the packet level (RCP)",
        build=_stream_vl2_packet,
        params=_stream_vl2_packet_params,
        engine="packet",
        streaming=True,
    ),
]
