"""Campaign layer: declarative scenarios, parallel execution, caching.

* :class:`ScenarioSpec` / :class:`TopologySpec` / :class:`WorkloadSpec` —
  declarative scenario descriptions with stable content-hash keys and
  :func:`expand_grid` parameter sweeps;
* :mod:`repro.campaign.engines` — engine adapters (``packet`` = ns-2-style
  Network + transport stacks, ``flow`` = fluid rate models) registered by
  kind and dispatched by :func:`~repro.campaign.engines.execute_spec`;
* :class:`CampaignRunner` — fans scenarios out over worker processes with
  per-scenario timeout, retry, progress reporting and result caching;
* :class:`ResultStore` — JSON result cache keyed by scenario hash, so
  re-runs and partially-failed campaigns resume instead of recomputing;
* :func:`run_scenarios` / :func:`use_runner` — ambient-runner plumbing the
  figure experiments execute their grids through;
* ``python -m repro`` (:mod:`repro.campaign.cli`) — the command line
  driving all of it (``run-fig``, ``sweep``, ``ls``).
"""

from repro.campaign.context import (
    current_runner,
    default_runner,
    run_one,
    run_scenarios,
    use_runner,
)
from repro.campaign.engines import (
    engine_kinds,
    execute_spec,
    register_engine,
)
from repro.campaign.registry import (
    register_topology,
    register_workload,
    topology_kinds,
    workload_kinds,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    ScenarioOutcome,
    run_scenario,
)
from repro.campaign.spec import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
)
from repro.campaign.store import ResultStore, StoreEntry

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "ResultStore",
    "ScenarioOutcome",
    "ScenarioSpec",
    "StoreEntry",
    "TopologySpec",
    "WorkloadSpec",
    "current_runner",
    "default_runner",
    "engine_kinds",
    "execute_spec",
    "expand_grid",
    "register_engine",
    "register_topology",
    "register_workload",
    "run_one",
    "run_scenario",
    "run_scenarios",
    "topology_kinds",
    "use_runner",
    "workload_kinds",
]
