"""``python -m repro`` — drive figure reproductions and scenario sweeps.

Subcommands::

    repro run-fig N [--jobs J] [--cache DIR | --no-cache] [--dry-run]
        Reproduce every panel of paper figure N at reduced scale. Figures
        are declared :class:`~repro.experiments.api.Experiment`s resolved
        from the experiment registry and routed through a (parallel,
        cached) campaign runner.

    repro run-spec FILE.json [--jobs J] [--dry-run] [--out PATH]
        Run a user-authored experiment file — scenario grids, search
        directives, reducers — through the same campaign machinery.
        ``--dry-run`` validates the schema and every registry reference
        without executing a scenario.

    repro sweep [--protocols ...] [--patterns ...] [--jobs J] ...
        Run a Fig-4-style protocol x pattern x seed grid through the
        campaign runner and print one summary row per scenario.

    repro ls [--cache DIR]
        list the cached scenario results.

    repro bench [--quick] [--only NAME ...] [--no-baseline] [--no-mem]
                [--repeat N]
                [--profile [--profile-top N] [--profile-out PATH]]
        Time the simulation engines on canonical scenarios (flow-level
        cells against the frozen naive baseline, packet-level cells for
        events/sec trajectory) and write BENCH_flowsim.json.
        ``--profile`` additionally cProfiles each benchmark and dumps the
        top functions by cumulative time to stderr (or ``--profile-out``).

    repro validate [--quick] [--only FAMILY ...] [--jobs J] ...
        Run matched packet/fluid scenario pairs through the campaign
        runner, assert cross-engine agreement within declared tolerances,
        and write VALIDATE_cross_engine.json. Fails (exit 1) on tolerance
        violations — never on timing.

    repro report [STORE] [--validate PATH] [--out PATH]
        Summarize a result store: cache hit rate, slowest cells, run
        counter aggregates, and (when a validation report is present)
        the tolerance-margin table. Crashes fail; timings never do.

    repro check [PATH ...] [--out FILE] [--no-mypy]
                [--repin-fingerprints] [--list]
        Run the AST-based invariant linter (RPL001-RPL005: pool
        lifecycle, hot-path purity, registry discipline, cache-key
        fingerprint pins, event shape) plus a gated mypy pass over the
        repo's own source. Exit 1 on any diagnostic; ``--out`` writes
        the JSON report for CI artifact upload.

Global flags: ``-v``/``-vv`` raise logging to INFO/DEBUG, ``-q`` mutes
everything below ERROR (they precede the subcommand: ``repro -v sweep``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from collections.abc import Sequence

from repro.campaign.runner import CampaignRunner, ScenarioOutcome
from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.campaign.store import ResultStore
from repro.campaign.context import use_runner
from repro.errors import CampaignError, ReproError
from repro.experiments.api import (
    Panel,
    figure_numbers,
    get_experiment,
    load_experiment_file,
    run_panel,
    validate_experiment,
)

DEFAULT_CACHE = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

SWEEP_PATTERNS = ("Aggregation", "Stride(1)")
SWEEP_PROTOCOLS = ("PDQ(Full)", "RCP", "TCP")


def _print_progress(outcome: ScenarioOutcome, done: int, total: int) -> None:
    status = "cached" if outcome.cached else (
        "ok" if outcome.ok else f"FAILED ({outcome.error})"
    )
    timing = "" if outcome.cached else f" {outcome.elapsed:.2f}s"
    print(f"  [{done}/{total}] {outcome.spec.describe()}: {status}{timing}",
          flush=True)


def _make_runner(args: argparse.Namespace, verbose: bool) -> CampaignRunner:
    store = None
    # args.cache is None where caching is opt-in (validate: a stale
    # cache would vouch for engine code that never ran)
    if not getattr(args, "no_cache", False) and args.cache:
        store = ResultStore(args.cache)
    return CampaignRunner(
        max_workers=args.jobs,
        store=store,
        timeout=args.timeout,
        retries=args.retries,
        progress=_print_progress if verbose else None,
        trace_dir=getattr(args, "trace_dir", None),
    )


# -- run-fig ------------------------------------------------------------------------


def sweep_panel(
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
    patterns: Sequence[str] = SWEEP_PATTERNS,
    n_flows: int = 6,
    seeds: Sequence[int] = (1,),
    mean_deadline: float | None = None,
    sim_deadline: float = 2.0,
) -> Panel:
    """The default multi-protocol Fig-4-style sweep, as a declared
    :class:`~repro.experiments.api.Panel` (the same surface figures and
    user spec files use)."""
    base = ScenarioSpec(
        protocol=protocols[0],
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("fig4.pattern", {
            "pattern": patterns[0],
            "n_flows": n_flows,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        sim_deadline=sim_deadline,
    )
    return Panel(
        name="sweep",
        title="protocol x pattern x seed sweep",
        base=base,
        axes=(("workload.pattern", tuple(patterns)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="table",
        reducer_params={
            "metrics": ["mean_fct", "application_throughput",
                        "completion_fraction"],
        },
    )


def sweep_specs(*args, **kwargs) -> list[ScenarioSpec]:
    """The default sweep grid (see :func:`sweep_panel`)."""
    return sweep_panel(*args, **kwargs).expand()


def _printable(value):
    """Make a panel result JSON-serializable: composite-axis cells key
    result dicts by *tuples*, which ``json.dumps`` rejects (``default=``
    only applies to values, not keys)."""
    if isinstance(value, dict):
        return {
            k if isinstance(k, str) else str(k): _printable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_printable(v) for v in value]
    return value


def _run_panels(panels: Sequence[Panel],
                args: argparse.Namespace) -> dict:
    """Execute panels through a CLI-configured runner, printing each
    panel's JSON result; returns {panel name: printable result}."""
    results = {}
    with _make_runner(args, verbose=True) as runner:
        for panel in panels:
            print(f"== {panel.name} ==", flush=True)
            started = time.perf_counter()
            with use_runner(runner):
                results[panel.name] = _printable(run_panel(panel))
            elapsed = time.perf_counter() - started
            print(json.dumps(results[panel.name], indent=2, default=str))
            print(f"-- {panel.name} done in {elapsed:.1f}s", flush=True)
    return results


def _cmd_run_fig(args: argparse.Namespace) -> int:
    if args.figure not in figure_numbers():
        known = ", ".join(str(n) for n in figure_numbers())
        print(f"unknown figure {args.figure}; known figures: {known}",
              file=sys.stderr)
        return 2
    experiment = get_experiment(f"fig{args.figure}")
    if args.dry_run:
        print(f"figure {args.figure}: {len(experiment.panels)} panel(s)")
        for panel in experiment.panels:
            extra = (f" {dict(panel.wraps_kwargs)}"
                     if panel.wraps_kwargs else "")
            print(f"  {panel.name}: {panel.wraps}{extra}")
        print("dry run: no scenarios executed")
        return 0
    _run_panels(experiment.panels, args)
    return 0


# -- run-spec -----------------------------------------------------------------------


def _cmd_run_spec(args: argparse.Namespace) -> int:
    experiment = load_experiment_file(args.file)
    # resolve every registry reference (topologies, workloads, engines,
    # reducers, metrics, panel runners) before running anything
    n_scenarios = validate_experiment(experiment)
    title = f" — {experiment.title}" if experiment.title else ""
    print(f"experiment {experiment.name}{title} "
          f"[key {experiment.key[:12]}]")
    if args.dry_run:
        for panel in experiment.panels:
            if panel.kind == "custom":
                detail = f"custom runner {panel.runner}"
            elif panel.kind == "search":
                detail = (f"search over {panel.search.axis} x "
                          f"{len(panel.cells())} cell(s), "
                          f"reducer {panel.reducer or 'table'}")
            else:
                detail = (f"{len(panel.expand())} scenario(s), "
                          f"reducer {panel.reducer or 'table'}")
            print(f"  {panel.name} [{panel.kind}]: {detail}")
        print(f"dry run: no scenarios executed "
              f"({n_scenarios} grid scenario(s) declared)")
        return 0
    results = _run_panels(experiment.panels, args)
    if args.out:
        payload = {
            "schema": 1,
            "experiment": experiment.name,
            "title": experiment.title,
            "key": experiment.key,
            "results": results,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=str)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


# -- sweep --------------------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table
    from repro.units import MSEC

    mean_deadline = (
        args.deadline_ms * MSEC if args.deadline_ms is not None else None
    )
    specs = sweep_specs(
        protocols=args.protocols,
        patterns=args.patterns,
        n_flows=args.flows,
        seeds=args.seeds,
        mean_deadline=mean_deadline,
        sim_deadline=args.sim_deadline,
    )
    if args.dry_run:
        print(f"sweep: {len(specs)} scenario(s)")
        for spec in specs:
            print(f"  {spec.key[:12]}  {spec.describe()}")
        print("dry run: no scenarios executed")
        return 0
    with _make_runner(args, verbose=True) as runner:
        result = runner.run(specs)
    rows = []
    for outcome in result.outcomes:
        spec = outcome.spec
        if outcome.ok:
            from repro.metrics.summary import SummaryStats

            summary = SummaryStats.from_collector(outcome.collector)
            mean_fct = (
                f"{summary.mean_fct * 1e3:.3f}" if summary.mean_fct else "-"
            )
            row_status = "cached" if outcome.cached else "ran"
            rows.append([
                spec.workload.params.get("pattern", spec.workload.kind),
                spec.protocol, spec.seed, summary.n_completed,
                summary.n_flows, mean_fct, row_status,
            ])
        else:
            rows.append([
                spec.workload.params.get("pattern", spec.workload.kind),
                spec.protocol, spec.seed, "-", "-", "-",
                f"FAILED: {outcome.error}",
            ])
    print(format_table(
        ["pattern", "protocol", "seed", "done", "flows", "mean_fct_ms",
         "status"],
        rows, title="sweep results",
    ))
    print(
        f"executed={result.executed_count} cached={result.cached_count} "
        f"failed={len(result.failures)}"
    )
    return 1 if result.failures else 0


# -- ls -----------------------------------------------------------------------------


def _cmd_ls(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table

    store = ResultStore(args.cache)
    entries = store.entries()
    if not entries:
        print(f"no cached results under {store.root}")
        return 0
    rows = []
    for entry in entries:
        summary = entry.summary
        mean_fct = summary.get("mean_fct")
        rows.append([
            entry.key[:12],
            entry.describe(),
            summary.get("n_completed", "-"),
            summary.get("n_flows", "-"),
            f"{mean_fct * 1e3:.3f}" if mean_fct else "-",
            f"{entry.elapsed:.2f}",
        ])
    print(format_table(
        ["key", "scenario", "done", "flows", "mean_fct_ms", "run_s"],
        rows, title=f"{len(entries)} cached result(s) under {store.root}",
    ))
    return 0


# -- bench --------------------------------------------------------------------------


def _dump_profile(profiler, name: str, top: int, path: str | None) -> None:
    """Print one benchmark's cProfile top-``top`` by cumulative time to
    ``path`` (append, so a multi-scenario run collects into one file) or
    to stderr, keeping the timing table on stdout clean."""
    import pstats

    with contextlib.ExitStack() as stack:
        stream = stack.enter_context(open(path, "a")) if path else sys.stderr
        print(f"-- profile: {name} (top {top} by cumulative) --", file=stream)
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import SCENARIOS, run_bench, write_history, write_report
    from repro.experiments.tables import format_table

    if args.list:
        for scenario in SCENARIOS:
            print(f"  {scenario.name}: {scenario.description}")
        return 0
    known = {s.name for s in SCENARIOS}
    unknown = set(args.only or ()) - known
    if unknown:
        print(f"unknown benchmark(s) {sorted(unknown)}; "
              f"known: {sorted(known)}", file=sys.stderr)
        return 2
    pool = [s for s in SCENARIOS if not args.only or s.name in set(args.only)]
    if args.profile and args.profile_out:
        # fresh file per invocation; scenarios append to it below
        open(args.profile_out, "w").close()
    results = []
    # run one at a time so progress is visible on slow scenarios
    for scenario in pool:
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        got = run_bench(only=[scenario.name], quick=args.quick,
                        baseline=not args.no_baseline, repeat=args.repeat,
                        measure_memory=not args.no_mem)
        if args.profile:
            profiler.disable()
            _dump_profile(profiler, scenario.name, args.profile_top,
                          args.profile_out)
        results.extend(got)
        for r in got:
            speed = f" ({r.speedup:.2f}x vs naive)" if r.speedup else ""
            print(f"  {r.name}: {r.elapsed_s:.3f}s, "
                  f"{r.events_per_sec:,.0f} events/s{speed}", flush=True)
    report = write_report(results, path=args.out, quick=args.quick)
    rows = [
        [r.name, r.engine, r.flows, f"{r.elapsed_s:.3f}",
         f"{r.events_per_sec:,.0f}", f"{r.allocate_calls_per_sec:,.0f}",
         f"{r.flows_per_sec:,.0f}",
         (f"{r.peak_mem_bytes / 1e6:.1f}"
          if r.peak_mem_bytes is not None else "-"),
         f"{r.speedup:.2f}x" if r.speedup else "-",
         {True: "ok", False: "FAIL", None: "-"}[r.baseline_parity]]
        for r in results
    ]
    print(format_table(
        ["scenario", "engine", "flows", "wall_s", "events/s", "alloc/s",
         "flows/s", "peak_MB", "speedup", "parity"],
        rows,
        title=f"engine bench ({'quick' if args.quick else 'full'} scale)",
    ))
    print(f"wrote {args.out} ({len(report['benchmarks'])} benchmark(s))")
    if not args.no_history and args.history:
        write_history(results, path=args.history, quick=args.quick)
        print(f"appended to {args.history}")
    return 0


# -- validate -----------------------------------------------------------------------


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table
    from repro.validate import (
        default_pairs,
        run_validation,
        select_pairs,
        write_report,
    )

    pairs = select_pairs(default_pairs(quick=args.quick), args.only)
    if args.list:
        for pair in pairs:
            tol = pair.tolerance
            print(f"  {pair.name}: fct_rtol={tol.fct_rtol:.2f} "
                  f"app_atol={tol.app_tput_atol:.2f}")
        return 0
    if args.dry_run:
        print(f"validate: {len(pairs)} pair(s), "
              f"{2 * len(pairs)} scenario(s)")
        for pair in pairs:
            print(f"  {pair.packet.key[:12]}/{pair.fluid.key[:12]}  "
                  f"{pair.name}")
        print("dry run: no scenarios executed")
        return 0
    with _make_runner(args, verbose=True) as runner:
        with use_runner(runner):
            report = run_validation(pairs=pairs, quick=args.quick)
    rows = []
    for outcome in report.outcomes:
        if outcome.error:
            rows.append([outcome.name, outcome.protocol, "-", "-",
                         f"ERROR: {outcome.error}"])
            continue
        fct = next((c for c in outcome.checks if c.name == "mean_fct"), None)
        fct_cell = (
            f"{fct.measured:.3f}/{fct.limit:.2f}"
            if fct and fct.measured is not None else "-"
        )
        app = next(
            (c for c in outcome.checks
             if c.name == "application_throughput"), None,
        )
        app_cell = f"{app.measured:.3f}/{app.limit:.2f}" if app else "-"
        status = "ok" if outcome.ok else "FAIL: " + ", ".join(
            c.name for c in outcome.failures()
        )
        rows.append([outcome.name, outcome.protocol, fct_cell, app_cell,
                     status])
    print(format_table(
        ["pair", "protocol", "fct_gap/tol", "app_gap/tol", "status"],
        rows,
        title=(f"cross-engine validation "
               f"({'quick' if args.quick else 'full'} grid)"),
    ))
    payload = write_report(report, path=args.out)
    print(f"wrote {args.out} ({payload['n_pairs']} pair(s), "
          f"{payload['n_failed']} failed, {report.elapsed_s:.1f}s simulated"
          f" work)")
    if not report.ok:
        for outcome in report.failures():
            detail = outcome.error or "; ".join(
                f"{c.name}: {c.detail}" for c in outcome.failures()
            )
            print(f"TOLERANCE VIOLATION {outcome.name}: {detail}",
                  file=sys.stderr)
        return 1
    return 0


# -- report -------------------------------------------------------------------------


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table
    from repro.obs.report import build_report, write_report

    store = ResultStore(args.store)
    report = build_report(store, validate_path=args.validate)

    campaign = report["campaign"]
    hit_rate = campaign["cache_hit_rate"]
    print(f"store {report['store']}: {report['n_entries']} entrie(s), "
          f"{campaign['runs']} logged run(s)")
    print(f"  executed={campaign['executed']} cached={campaign['cached']} "
          f"failed={campaign['failed']} retries={campaign['retries']} "
          f"workers={len(campaign['workers'])} "
          f"wall={campaign['wall_time_s']:.2f}s "
          f"hit_rate={'-' if hit_rate is None else f'{hit_rate:.0%}'}")

    if report["slowest"]:
        rows = [[r["key"][:12], r["scenario"], f"{r['elapsed_s']:.3f}"]
                for r in report["slowest"]]
        print(format_table(["key", "scenario", "wall_s"], rows,
                           title="slowest cells"))
    if report["counters"]:
        rows = [[name, f"{value:,}"]
                for name, value in report["counters"].items()]
        print(format_table(["counter", "total"], rows,
                           title="run counters (summed over store)"))
    validation = report["validation"]
    if validation is not None:
        rows = [
            [m["pair"], m["check"], f"{m['measured']:.4g}",
             f"{m['limit']:.4g}", f"{m['margin']:.0%}",
             "ok" if m["ok"] else "FAIL"]
            for m in validation["tightest"]
        ]
        status = ("ok" if validation["ok"]
                  else f"{validation['n_failed']} pair(s) FAILED")
        print(format_table(
            ["pair", "check", "measured", "limit", "budget used", "status"],
            rows,
            title=(f"validation margins ({validation['path']}: "
                   f"{validation['n_pairs']} pair(s), {status})"),
        ))
    elif args.validate:
        print(f"(no validation report at {args.validate})")

    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    return 0


# -- entry point --------------------------------------------------------------------


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=2,
                        help="worker processes (0/1 = run in-process)")
    parser.add_argument("--cache", default=DEFAULT_CACHE,
                        help="result-store directory (default %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result store")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-scenario wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=0,
                        help="extra attempts for failed scenarios")
    parser.add_argument("--dry-run", action="store_true",
                        help="print what would run without executing")
    parser.add_argument("--trace-dir", default=None,
                        help="export per-flow lifecycle traces (JSONL, one "
                             "file per traced scenario) into this directory")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDQ reproduction campaign runner (SIGCOMM 2012).",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log INFO (-v) or DEBUG (-vv) to stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="log only errors")
    sub = parser.add_subparsers(dest="command", required=True)

    run_fig = sub.add_parser(
        "run-fig", help="reproduce one paper figure at reduced scale"
    )
    run_fig.add_argument("figure", type=int)
    _add_runner_args(run_fig)
    run_fig.set_defaults(func=_cmd_run_fig)

    run_spec = sub.add_parser(
        "run-spec",
        help="run a user-authored JSON experiment file "
             "(see examples/specs/)",
    )
    run_spec.add_argument("file", help="experiment spec (JSON)")
    run_spec.add_argument("--out", default=None,
                          help="also write results as JSON to this path")
    _add_runner_args(run_spec)
    run_spec.set_defaults(func=_cmd_run_spec)

    sweep = sub.add_parser(
        "sweep", help="run a protocol x pattern x seed scenario grid"
    )
    sweep.add_argument("--protocols", nargs="+", default=list(SWEEP_PROTOCOLS))
    sweep.add_argument("--patterns", nargs="+", default=list(SWEEP_PATTERNS))
    sweep.add_argument("--flows", type=int, default=6,
                       help="flows per scenario")
    sweep.add_argument("--seeds", nargs="+", type=int, default=[1])
    sweep.add_argument("--deadline-ms", type=float, default=None,
                       help="mean flow deadline (ms); omit for no deadlines")
    sweep.add_argument("--sim-deadline", type=float, default=2.0,
                       help="simulated-time horizon per scenario (s)")
    _add_runner_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    ls = sub.add_parser("ls", help="list cached scenario results")
    ls.add_argument("--cache", default=DEFAULT_CACHE)
    ls.set_defaults(func=_cmd_ls)

    bench = sub.add_parser(
        "bench",
        help="time the flow-level engine and write BENCH_flowsim.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="small scenario sizes (CI smoke)")
    bench.add_argument("--only", nargs="+", default=None,
                       help="run only the named benchmark scenario(s)")
    bench.add_argument("--no-baseline", action="store_true",
                       help="skip the naive-engine baseline/parity run")
    bench.add_argument("--no-mem", action="store_true",
                       help="skip the peak-memory (tracemalloc) pass")
    bench.add_argument("--repeat", type=int, default=1,
                       help="best-of-N wall times (default 1)")
    bench.add_argument("--out", default="BENCH_flowsim.json",
                       help="report path (default %(default)s)")
    bench.add_argument("--list", action="store_true",
                       help="list scenarios and exit")
    bench.add_argument("--history", default="BENCH_history.jsonl",
                       help="append one summary row per run to this JSONL "
                            "file (default %(default)s)")
    bench.add_argument("--no-history", action="store_true",
                       help="do not append to the bench history file")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile each benchmark and dump the hottest "
                            "functions (timing numbers include profiler "
                            "overhead; use for hot-path triage, not for "
                            "the recorded trajectory)")
    bench.add_argument("--profile-top", type=int, default=25,
                       help="number of functions to show per profile "
                            "(default: 25)")
    bench.add_argument("--profile-out", default=None,
                       help="write profiles to this file instead of stderr")
    bench.set_defaults(func=_cmd_bench)

    report = sub.add_parser(
        "report",
        help="summarize a result store: cache hits, slow cells, counters",
    )
    report.add_argument("store", nargs="?", default=DEFAULT_CACHE,
                        help="result-store directory (default %(default)s)")
    report.add_argument("--validate", default="VALIDATE_cross_engine.json",
                        help="validation report whose tolerance margins are "
                             "folded in when present (default %(default)s)")
    report.add_argument("--out", default=None,
                        help="also write the report as JSON to this path")
    report.set_defaults(func=_cmd_report)

    validate = sub.add_parser(
        "validate",
        help="check packet-vs-fluid engine agreement on matched scenarios",
    )
    validate.add_argument("--quick", action="store_true",
                          help="reduced pair grid (CI smoke)")
    validate.add_argument("--only", nargs="+", default=None,
                          help="pair families or name substrings "
                               "(edge, fig3, fig5, a protocol name, ...)")
    validate.add_argument("--out", default="VALIDATE_cross_engine.json",
                          help="report path (default %(default)s)")
    validate.add_argument("--list", action="store_true",
                          help="list pairs and their tolerances, then exit")
    _add_runner_args(validate)
    # caching is opt-in for validation: a warm cache would report
    # "agreement" computed by whatever engine code produced the entry,
    # not by the code under test (results are keyed by spec content
    # only). --cache DIR still opts in for interactive iteration.
    validate.set_defaults(func=_cmd_validate, cache=None)

    check = sub.add_parser(
        "check",
        help="run the AST invariant linter (RPL001-RPL005) and mypy gate",
    )
    from repro.analysis.cli import add_check_arguments

    add_check_arguments(check)
    check.set_defaults(func=_cmd_check)

    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_check

    return run_check(args)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs.log import setup_cli_logging

    setup_cli_logging(-1 if args.quiet else args.verbose)
    try:
        return args.func(args)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. `repro ls | head`); exit quietly
        with contextlib.suppress(OSError):
            sys.stdout.close()
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
