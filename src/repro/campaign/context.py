"""Ambient campaign runner for the experiment harness.

Figure modules declare their grids as :class:`ScenarioSpec` lists and
execute them through :func:`run_scenarios`. By default that is a serial,
uncached in-process runner — calling any ``run_figN`` function behaves
exactly as before the campaign layer existed. The CLI (and any caller)
can wrap figure calls in :func:`use_runner` to route the same grids
through a parallel, cached :class:`CampaignRunner` without the figure
code changing.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterable, Iterator

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import ScenarioSpec
from repro.metrics.collector import MetricsCollector

_default_runner: CampaignRunner | None = None
_runner_stack: list[CampaignRunner] = []


def default_runner() -> CampaignRunner:
    """The serial, uncached in-process runner."""
    global _default_runner
    if _default_runner is None:
        _default_runner = CampaignRunner(max_workers=0)
    return _default_runner


def current_runner() -> CampaignRunner:
    return _runner_stack[-1] if _runner_stack else default_runner()


@contextmanager
def use_runner(runner: CampaignRunner) -> Iterator[CampaignRunner]:
    """Route :func:`run_scenarios` calls through ``runner`` inside the
    ``with`` block (re-entrant; nested uses restore the previous runner)."""
    _runner_stack.append(runner)
    try:
        yield runner
    finally:
        _runner_stack.pop()


def run_scenarios(specs: Iterable[ScenarioSpec]) -> list[MetricsCollector]:
    """Execute specs through the ambient runner; collectors in spec order."""
    return current_runner().collectors(list(specs))


def run_one(spec: ScenarioSpec) -> MetricsCollector:
    return run_scenarios([spec])[0]
