"""Engine adapters: the campaign layer's only door into the simulators.

Every :class:`~repro.campaign.spec.ScenarioSpec` names an *engine* — the
simulator that executes it. Engines are registered here by kind name,
exactly like topologies and workloads in :mod:`repro.campaign.registry`,
so the runner, the result store, and the CLI treat the packet-level
stack and the fluid flow-level model identically: same spec schema, same
cache keys, same serialized :class:`~repro.metrics.collector.
MetricsCollector` payload.

Adapters receive the built topology and workload (resolved from their
registered kinds) plus the spec's engine options, and return a collector:

* ``packet`` — assembles a :class:`~repro.net.network.Network` with the
  protocol's transport stack (PDQ/D3/RCP/TCP endpoints and per-switch
  state) and runs the discrete-event simulator until the flows resolve;
* ``flow`` — pairs the protocol's rate model with the fluid
  :class:`~repro.flowsim.engine.FlowLevelSimulation`.

Heavy simulator imports stay inside the adapter bodies so this module —
imported by :mod:`repro.campaign.spec` for engine-name validation — adds
no weight to spec construction in driver processes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any, TYPE_CHECKING

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.spec import ScenarioSpec
    from repro.metrics.collector import MetricsCollector
    from repro.topology.base import Topology
    from repro.workload.flow import FlowSpec

#: protocols understood by make_stack / make_model
PROTOCOLS = (
    "PDQ(Full)",
    "PDQ(ES+ET)",
    "PDQ(ES)",
    "PDQ(Basic)",
    "D3",
    "RCP",
    "TCP",
)

#: engine kind -> adapter(spec, topology, flows, options) -> collector
EngineAdapter = Callable[..., "MetricsCollector"]
_ENGINES: dict[str, EngineAdapter] = {}


def register_engine(kind: str) -> Callable[[EngineAdapter], EngineAdapter]:
    """Decorator: register an engine adapter under ``kind``."""

    def decorate(adapter: EngineAdapter) -> EngineAdapter:
        _ENGINES[kind] = adapter
        return adapter

    return decorate


def engine_kinds() -> tuple[str, ...]:
    """Registered engine kind names (the valid ``ScenarioSpec.engine``
    values) in registration order — packet first, matching the spec
    default, then flow, then any custom engines."""
    return tuple(_ENGINES)


def available_protocols() -> tuple[str, ...]:
    return PROTOCOLS


# -- protocol factories -------------------------------------------------------------


def make_stack(name: str, n_subflows: int = 3, **pdq_overrides):
    """Build a packet-level protocol stack from its paper name."""
    from repro.core.config import PdqConfig
    from repro.core.multipath import MpdqStack
    from repro.core.stack import PdqStack
    from repro.transport.d3 import D3Stack
    from repro.transport.rcp import RcpStack
    from repro.transport.tcp import TcpStack

    if name == "PDQ(Full)":
        return PdqStack(PdqConfig.full(**pdq_overrides))
    if name == "PDQ(ES+ET)":
        return PdqStack(PdqConfig.es_et(**pdq_overrides))
    if name == "PDQ(ES)":
        return PdqStack(PdqConfig.es(**pdq_overrides))
    if name == "PDQ(Basic)":
        return PdqStack(PdqConfig.basic(**pdq_overrides))
    if name == "M-PDQ":
        return MpdqStack(PdqConfig.full(**pdq_overrides), n_subflows=n_subflows)
    if name == "D3":
        return D3Stack()
    if name == "RCP":
        return RcpStack()
    if name == "TCP":
        return TcpStack()
    raise ExperimentError(f"unknown protocol {name!r}")


def make_model(name: str, **pdq_overrides):
    """Flow-level rate model for a protocol name (TCP has none)."""
    from repro.core.config import PdqConfig
    from repro.flowsim.d3_model import D3Model
    from repro.flowsim.pdq_model import PdqModel
    from repro.flowsim.rcp_model import RcpModel

    if name.startswith("PDQ"):
        variant = {
            "PDQ(Full)": PdqConfig.full,
            "PDQ(ES+ET)": PdqConfig.es_et,
            "PDQ(ES)": PdqConfig.es,
            "PDQ(Basic)": PdqConfig.basic,
        }.get(name, PdqConfig.full)
        return PdqModel(variant(**pdq_overrides))
    if name == "RCP":
        return RcpModel()
    if name == "D3":
        return D3Model()
    raise ExperimentError(f"no flow-level model for {name!r}")


# -- scenario runners ---------------------------------------------------------------


def run_packet_level(
    topology: "Topology",
    protocol: str,
    flows: Sequence["FlowSpec"],
    sim_deadline: float = 2.0,
    loss: "tuple[str, str, float, int] | Sequence | None" = None,
    faults: "Sequence | None" = None,
    network_config=None,
    n_subflows: int = 3,
    probes: Mapping[str, dict] | None = None,
    trace: bool = False,
    metrics: "MetricsCollector | None" = None,
    **pdq_overrides,
) -> "MetricsCollector":
    """Run one packet-level scenario and return its metrics.

    ``loss`` is either Fig 9's legacy (node_a, node_b, rate, seed) tuple
    or a sequence of :class:`~repro.faults.spec.LossRule`; ``faults`` is
    a sequence of :class:`~repro.faults.spec.FaultEvent` applied by a
    :class:`~repro.faults.controller.FaultController` at their simulated
    times. ``probes``/``trace`` are the telemetry options (repro.obs);
    run counters are always harvested into ``collector.stats`` — reading
    a handful of ints after the run is free. ``metrics`` substitutes a
    pre-built collector (the streaming-metrics mode rides in here).
    """
    from repro.net.network import Network
    from repro.obs import (
        FlowTracer,
        attach_packet_probes,
        collect_probes,
        harvest_packet_run,
    )

    stack = make_stack(protocol, n_subflows=n_subflows, **pdq_overrides)
    net = Network(topology, stack, config=network_config, metrics=metrics)
    if loss is not None:
        from repro.faults.controller import apply_loss

        apply_loss(net, loss)
    if faults:
        from repro.faults.controller import FaultController

        FaultController(net, faults).start()
    tracer = FlowTracer() if trace else None
    net.metrics.tracer = tracer
    attached = attach_packet_probes(net, probes) if probes else []
    net.launch(flows)
    net.run_until_quiet(deadline=sim_deadline)
    collector = net.metrics
    collector.tracer = None
    if tracer is not None:
        collector.trace = tracer.events
    collect_probes(collector, attached)
    collector.stats.update(harvest_packet_run(net).to_dict())
    return collector


def run_flow_level(
    topology: "Topology",
    protocol: str,
    flows: Sequence["FlowSpec"],
    sim_deadline: float = 10.0,
    faults: "Sequence | None" = None,
    probes: Mapping[str, dict] | None = None,
    trace: bool = False,
    metrics: "MetricsCollector | None" = None,
    **pdq_overrides,
) -> "MetricsCollector":
    """Run one flow-level (fluid) scenario and return its metrics.

    Telemetry mirrors :func:`run_packet_level`: same option names, same
    ``collector.stats`` / ``collector.probes`` / ``collector.trace``
    shapes (plus the same ``metrics`` injection point and the same
    ``faults`` schedule semantics), so studies switch engines without
    touching their specs.
    """
    from repro.flowsim.engine import FlowLevelSimulation
    from repro.obs import (
        FlowTracer,
        attach_fluid_probes,
        collect_probes,
        harvest_fluid_run,
    )

    model = make_model(protocol, **pdq_overrides)
    header = {"RCP": 44, "D3": 52}.get(protocol, 56)
    sim = FlowLevelSimulation(topology, model, header_bytes=header,
                              metrics=metrics, faults=faults)
    tracer = FlowTracer() if trace else None
    sim.metrics.tracer = tracer
    attached = attach_fluid_probes(sim, probes) if probes else []
    collector = sim.run(flows, deadline=sim_deadline)
    collector.tracer = None
    if tracer is not None:
        collector.trace = tracer.events
    collect_probes(collector, attached)
    collector.stats.update(harvest_fluid_run(sim).to_dict())
    return collector


# -- engine adapters ----------------------------------------------------------------


def _pop_metrics(spec: "ScenarioSpec",
                 options: Mapping[str, Any]) -> tuple[dict, Any]:
    """Split the ``streaming_metrics`` option off and build its collector.

    The option is additive: specs that omit it hash and run exactly as
    before. When present (``true`` or an options dict), the adapter
    injects a :class:`~repro.metrics.streaming.StreamingMetricsCollector`
    seeded from the spec so reservoir sampling is reproducible.
    """
    options = dict(options)
    streaming = options.pop("streaming_metrics", None)
    if not streaming:
        return options, None
    from repro.metrics.streaming import streaming_collector

    return options, streaming_collector(streaming, seed=spec.seed)


@register_engine("packet")
def _packet_adapter(spec: "ScenarioSpec", topology: "Topology",
                    flows: list["FlowSpec"],
                    options: Mapping[str, Any]) -> "MetricsCollector":
    """ns-2-style packet engine: Network + transport endpoints + switches."""
    options, metrics = _pop_metrics(spec, options)
    # the legacy loss tuple and faults.loss both run through the rule
    # engine (spec.loss_rules resolves seeds); exact-name rules are
    # bit-identical to the tuple path they replaced
    return run_packet_level(
        topology, spec.protocol, flows, loss=spec.loss_rules() or None,
        faults=spec.fault_events() or None, metrics=metrics,
        **options
    )


@register_engine("flow")
def _flow_adapter(spec: "ScenarioSpec", topology: "Topology",
                  flows: list["FlowSpec"],
                  options: Mapping[str, Any]) -> "MetricsCollector":
    """Fluid flow-level engine: rate model + event-driven allocator."""
    options, metrics = _pop_metrics(spec, options)
    return run_flow_level(
        topology, spec.protocol, flows,
        faults=spec.fault_events() or None, metrics=metrics, **options
    )


def execute_spec(spec: "ScenarioSpec") -> "MetricsCollector":
    """Run one declarative :class:`~repro.campaign.spec.ScenarioSpec`.

    The campaign runner's single entry point into the simulators: builds
    the topology and workload from their registered kinds, then hands
    them to the spec's engine adapter. Keyword options ride in
    ``spec.options`` (``n_subflows`` plus any PDQ config overrides); a
    spec without ``sim_deadline`` runs at the engine's default horizon —
    except open-system workloads, which carry their own simulated-time
    horizon (arrival window plus drain) that becomes the deadline, so
    the campaign runner's wall-clock budget never races an engine
    default that a long stream would overrun.
    """
    adapter = _ENGINES.get(spec.engine)
    if adapter is None:
        from repro.campaign.registry import unknown_kind

        raise unknown_kind("engine", spec.engine, engine_kinds())
    topology = spec.topology.build()
    flows = spec.workload.build(topology, spec.seed)
    options = dict(spec.options)
    if spec.sim_deadline is not None:
        options["sim_deadline"] = spec.sim_deadline
    else:
        horizon = getattr(flows, "horizon", None)
        if horizon is not None:
            options["sim_deadline"] = horizon
    return adapter(spec, topology, flows, options)
