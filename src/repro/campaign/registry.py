"""Registries resolving spec *kind* names to builder callables.

Topology builders take keyword parameters and return a
:class:`~repro.topology.base.Topology`. Workload builders take
``(topology, seed, **params)`` and return a list of
:class:`~repro.workload.flow.FlowSpec`.

Builtin topology kinds are registered below. Figure-specific workload
kinds are registered by the :mod:`repro.experiments` modules that define
them; those modules import this package, so they are imported lazily on
first resolution rather than here (which would create an import cycle).
"""

from __future__ import annotations

import difflib
import importlib
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.errors import CampaignError
from repro.topology.bcube import BCube
from repro.topology.fattree import FatTree
from repro.topology.jellyfish import Jellyfish
from repro.topology.random_graph import RandomGraph
from repro.topology.single_bottleneck import SingleBottleneck
from repro.topology.single_rooted import SingleRootedTree

_TOPOLOGIES: dict[str, Callable[..., Any]] = {}
_WORKLOADS: dict[str, Callable[..., Any]] = {}

#: every module that registers experiment-surface kinds on import —
#: workloads here, experiments/reducers/panel runners in
#: :mod:`repro.experiments.api`. ONE list shared by both lazy loaders,
#: so the two registries cannot drift apart when a module is added.
EXPERIMENT_MODULES = tuple(
    f"repro.experiments.fig{n}" for n in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
) + ("repro.validate.pairs",)
_experiments_loaded = False


def unknown_kind(what: str, kind: Any,
                 known: Sequence[str]) -> CampaignError:
    """A consistent "unknown kind" error for every registry: names the
    registered kinds and, when one is close, the likely typo fix."""
    known = sorted(str(k) for k in known)
    listing = ", ".join(known) if known else "(none registered)"
    message = f"unknown {what} kind {kind!r}; registered: {listing}"
    close = difflib.get_close_matches(str(kind), known, n=1, cutoff=0.6)
    if close:
        message += f". Did you mean {close[0]!r}?"
    return CampaignError(message)


def register_topology(kind: str) -> Callable:
    """Decorator: register a topology builder under ``kind``."""

    def decorate(builder: Callable) -> Callable:
        _TOPOLOGIES[kind] = builder
        return builder

    return decorate


def register_workload(kind: str) -> Callable:
    """Decorator: register a workload builder under ``kind``."""

    def decorate(builder: Callable) -> Callable:
        _WORKLOADS[kind] = builder
        return builder

    return decorate


def _load_experiment_workloads() -> None:
    global _experiments_loaded
    if _experiments_loaded:
        return
    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)
    # only after every import succeeded: a transient failure above must
    # surface again on the next call, not decay into "unknown kind"
    _experiments_loaded = True


def topology_kinds() -> list[str]:
    return sorted(_TOPOLOGIES)


def workload_kinds() -> list[str]:
    _load_experiment_workloads()
    return sorted(_WORKLOADS)


def build_topology(kind: str, params: Mapping[str, Any]):
    builder = _TOPOLOGIES.get(kind)
    if builder is None:
        raise unknown_kind("topology", kind, topology_kinds())
    return builder(**params)


def build_workload(kind: str, topology, seed: int,
                   params: Mapping[str, Any]):
    builder = _WORKLOADS.get(kind)
    if builder is None:
        _load_experiment_workloads()
        builder = _WORKLOADS.get(kind)
    if builder is None:
        raise unknown_kind("workload", kind, workload_kinds())
    return builder(topology, seed, **params)


def validate_spec_kinds(spec) -> None:
    """Check a :class:`~repro.campaign.spec.ScenarioSpec`'s topology and
    workload kinds against the live registries without building anything
    (the spec's engine is already validated at construction). Raises the
    same close-match :class:`CampaignError` the builders would."""
    if spec.topology.kind not in _TOPOLOGIES:
        raise unknown_kind("topology", spec.topology.kind, topology_kinds())
    if spec.workload.kind not in _WORKLOADS:
        _load_experiment_workloads()
    if spec.workload.kind not in _WORKLOADS:
        raise unknown_kind("workload", spec.workload.kind, workload_kinds())


# -- builtin topology kinds ---------------------------------------------------------


@register_topology("single_rooted")
def _single_rooted(n_tors: int = 4, servers_per_tor: int = 3):
    return SingleRootedTree(n_tors=n_tors, servers_per_tor=servers_per_tor)


@register_topology("single_bottleneck")
def _single_bottleneck(n_senders: int):
    return SingleBottleneck(n_senders)


@register_topology("fattree")
def _fattree(n_servers: int):
    return FatTree.for_servers(n_servers)


@register_topology("bcube")
def _bcube(n: int = 2, k: int = None, n_servers: int = None):
    if k is None:
        if n_servers is None:
            raise CampaignError("bcube needs either k or n_servers")
        k = 1
        while n ** (k + 1) < n_servers:
            k += 1
    return BCube(n=n, k=k)


@register_topology("jellyfish")
def _jellyfish(n_servers: int, seed: int = 1):
    return Jellyfish.for_servers(n_servers, seed=seed)


@register_topology("random_graph")
def _random_graph(n_switches: int, mean_degree: float = 3.0,
                  hosts_per_switch: int = 2, seed: int = 1):
    return RandomGraph(n_switches=n_switches, mean_degree=mean_degree,
                       hosts_per_switch=hosts_per_switch, seed=seed)


# -- builtin workload kinds ---------------------------------------------------------
#
# Tiny generic workloads used by the cross-engine validation suite and as
# degenerate-case fixtures; figure-scale workloads live in experiments.


@register_workload("empty")
def _empty_workload(topology, seed: int) -> list[Any]:
    return []


@register_workload("single_flow")
def _single_flow_workload(topology, seed: int, src: str, dst: str,
                          size_bytes: int, arrival: float = 0.0,
                          deadline: Any = None) -> list[Any]:
    from repro.workload.flow import FlowSpec

    return [FlowSpec(fid=0, src=src, dst=dst, size_bytes=size_bytes,
                     arrival=arrival, deadline=deadline)]


@register_workload("open_system")
def _open_system_workload(topology, seed: int, **params) -> Any:
    """Streaming arrival process (returns a FlowStream, not a list);
    see :func:`repro.workload.open_system.open_system` for the knobs."""
    from repro.workload.open_system import open_system

    return open_system(topology, seed, **params)
