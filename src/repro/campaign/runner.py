"""Campaign execution: fan scenarios out across worker processes.

The :class:`CampaignRunner` takes a list of :class:`ScenarioSpec` and

* serves scenarios already present in its :class:`ResultStore` from cache
  (``cached`` outcomes never touch a simulator),
* executes the rest — in-process when ``max_workers <= 1``, otherwise on a
  :class:`concurrent.futures.ProcessPoolExecutor`,
* retries failed scenarios up to ``retries`` extra attempts,
* reports progress through an optional callback, and
* persists every fresh result back to the store.

Timeouts: ``timeout`` is a per-scenario wall-clock budget. In parallel
mode the whole batch is given ``timeout * ceil(n / workers)``; scenarios
still unfinished when the budget expires are cancelled (queued) or
abandoned (running — a worker process cannot be preempted mid-simulation)
and marked failed. In serial mode the budget is checked between
scenarios, which cannot interrupt one long-running simulation; use
worker processes when hard timeouts matter.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Sequence

from repro.campaign.spec import ScenarioSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError
from repro.metrics.collector import MetricsCollector
from repro.obs.log import get_logger

logger = get_logger("campaign.runner")


def run_scenario(spec: ScenarioSpec) -> MetricsCollector:
    """Execute one scenario in the current process."""
    from repro.campaign.engines import execute_spec

    return execute_spec(spec)


def _worker(canonical: dict) -> dict:
    """Process-pool entry point: canonical spec in, plain-data result out."""
    spec = ScenarioSpec.from_dict(canonical)
    started = time.perf_counter()
    collector = run_scenario(spec)
    return {
        "key": spec.key,
        "collector": collector.to_dict(),
        "elapsed": time.perf_counter() - started,
        "worker": os.getpid(),
    }


@dataclass
class ScenarioOutcome:
    """What happened to one scenario in a campaign."""

    spec: ScenarioSpec
    key: str
    collector: MetricsCollector | None = None
    cached: bool = False
    elapsed: float = 0.0
    attempts: int = 0
    error: str | None = None
    worker: int | None = None

    @property
    def ok(self) -> bool:
        return self.collector is not None

    def log_row(self) -> dict:
        """Plain-data form for the store's campaign log."""
        return {
            "key": self.key,
            "scenario": self.spec.describe(),
            "ok": self.ok,
            "cached": self.cached,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "logged_at": time.time(),
        }


@dataclass
class CampaignResult:
    """Outcomes in input order (duplicate specs share one outcome)."""

    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def _unique(self) -> dict[str, ScenarioOutcome]:
        return {o.key: o for o in self.outcomes}

    @property
    def executed_count(self) -> int:
        """Unique scenarios that actually ran a simulator (cache misses)."""
        return sum(
            1 for o in self._unique().values()
            if not o.cached and o.attempts > 0
        )

    @property
    def cached_count(self) -> int:
        return sum(1 for o in self._unique().values() if o.cached)

    @property
    def failures(self) -> list[ScenarioOutcome]:
        return [o for o in self._unique().values() if not o.ok]

    def collectors(self) -> list[MetricsCollector]:
        """Per-spec collectors; raises if any scenario failed."""
        bad = self.failures
        if bad:
            detail = "; ".join(
                f"{o.spec.describe()}: {o.error}" for o in bad[:5]
            )
            raise CampaignError(
                f"{len(bad)} scenario(s) failed: {detail}"
            )
        return [o.collector for o in self.outcomes]


ProgressFn = Callable[[ScenarioOutcome, int, int], None]


class CampaignRunner:
    """Runs scenario lists with caching, parallelism, retry and progress."""

    def __init__(
        self,
        max_workers: int = 0,
        store: ResultStore | None = None,
        timeout: float | None = None,
        retries: int = 0,
        progress: ProgressFn | None = None,
        mp_context=None,
        trace_dir: str | Path | None = None,
    ):
        if timeout is not None and timeout <= 0:
            raise CampaignError("timeout must be positive")
        if retries < 0:
            raise CampaignError("retries must be >= 0")
        self.max_workers = max_workers or 0
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.mp_context = mp_context
        #: where flow-lifecycle traces land as <key>.jsonl (None = don't)
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_broken = False

    # -- public API ---------------------------------------------------------------

    def run(self, specs: Iterable[ScenarioSpec]) -> CampaignResult:
        spec_list = list(specs)
        unique: dict[str, ScenarioSpec] = {}
        for spec in spec_list:
            unique.setdefault(spec.key, spec)

        outcomes: dict[str, ScenarioOutcome] = {}
        pending: list[ScenarioSpec] = []
        for key, spec in unique.items():
            collector = self.store.get(spec) if self.store else None
            if collector is not None:
                outcomes[key] = ScenarioOutcome(
                    spec=spec, key=key, collector=collector, cached=True
                )
            else:
                pending.append(spec)

        self._total = len(unique)
        self._done = 0
        logger.info(
            "campaign: %d scenario(s), %d cached, %d to run (workers=%d)",
            len(unique), len(outcomes), len(pending), self.max_workers,
        )
        for outcome in outcomes.values():
            self._log_outcome(outcome)
            self._export_trace(outcome)
            self._report(outcome)

        if pending:
            if self.max_workers > 1:
                self._run_parallel(pending, outcomes)
            else:
                self._run_serial(pending, outcomes)

        return CampaignResult([outcomes[s.key] for s in spec_list])

    def collectors(self, specs: Iterable[ScenarioSpec]
                   ) -> list[MetricsCollector]:
        return self.run(specs).collectors()

    def close(self) -> None:
        """Shut the worker pool down (idempotent; run() reopens it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ----------------------------------------------------------------

    def _report(self, outcome: ScenarioOutcome) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(outcome, self._done, self._total)

    def _record(self, outcomes: dict[str, ScenarioOutcome],
                outcome: ScenarioOutcome) -> None:
        outcomes[outcome.key] = outcome
        if outcome.ok and not outcome.cached and self.store is not None:
            self.store.put(outcome.spec, outcome.collector, outcome.elapsed)
        if not outcome.ok:
            logger.warning("scenario %s failed (attempt %d): %s",
                           outcome.spec.describe(), outcome.attempts,
                           outcome.error)
        else:
            logger.debug("scenario %s ok in %.3fs (worker %s)",
                         outcome.spec.describe(), outcome.elapsed,
                         outcome.worker)
        self._log_outcome(outcome)
        self._export_trace(outcome)
        self._report(outcome)

    def _log_outcome(self, outcome: ScenarioOutcome) -> None:
        if self.store is not None:
            self.store.log_outcome(outcome.log_row())

    def _export_trace(self, outcome: ScenarioOutcome) -> None:
        """Write a scenario's flow-lifecycle trace (if it recorded one)
        to ``trace_dir/<key>.jsonl`` — cached outcomes included, since
        the trace round-trips through the store like any other field."""
        if self.trace_dir is None or not outcome.ok:
            return
        if not outcome.collector.trace:
            return
        from repro.obs.trace import write_trace_jsonl

        path = write_trace_jsonl(
            self.trace_dir / f"{outcome.key}.jsonl",
            outcome.collector.trace,
            header={"key": outcome.key,
                    "scenario": outcome.spec.describe()},
        )
        logger.info("trace written: %s (%d event(s))", path,
                    len(outcome.collector.trace))

    def _run_serial(self, pending: Sequence[ScenarioSpec],
                    outcomes: dict[str, ScenarioOutcome]) -> None:
        budget = (
            None if self.timeout is None
            else time.monotonic() + self.timeout * len(pending)
        )
        skipping = False
        for spec in pending:
            if budget is not None and time.monotonic() > budget:
                skipping = True
            if skipping:
                outcomes[spec.key] = ScenarioOutcome(
                    spec=spec, key=spec.key, error="campaign timeout"
                )
                self._report(outcomes[spec.key])
                continue
            outcome = ScenarioOutcome(spec=spec, key=spec.key,
                                      worker=os.getpid())
            for attempt in range(self.retries + 1):
                outcome.attempts = attempt + 1
                started = time.perf_counter()
                try:
                    outcome.collector = run_scenario(spec)
                    outcome.elapsed = time.perf_counter() - started
                    outcome.error = None
                    break
                except Exception as exc:  # noqa: BLE001 - isolate scenarios
                    outcome.error = f"{type(exc).__name__}: {exc}"
            self._record(outcomes, outcome)

    def _settle(self, future, spec: ScenarioSpec,
                attempts: dict[str, int]) -> ScenarioOutcome:
        """Turn one finished future into an outcome."""
        attempts[spec.key] += 1
        outcome = ScenarioOutcome(
            spec=spec, key=spec.key, attempts=attempts[spec.key],
        )
        try:
            payload = future.result()
            outcome.collector = MetricsCollector.from_dict(
                payload["collector"]
            )
            outcome.elapsed = payload["elapsed"]
            outcome.worker = payload.get("worker")
        except BrokenProcessPool as exc:
            # the pool is unusable from now on; flag it for rebuild
            self._pool_broken = True
            outcome.error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # noqa: BLE001 - isolate scenarios
            outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome

    def _run_parallel(self, pending: Sequence[ScenarioSpec],
                      outcomes: dict[str, ScenarioOutcome]) -> None:
        attempts: dict[str, int] = {spec.key: 0 for spec in pending}
        batch = list(pending)
        isolate = False
        while batch:
            retry: list[ScenarioSpec] = []
            if isolate:
                self._run_isolated(batch, attempts, retry, outcomes)
            else:
                # a crashed worker fails every in-flight sibling and the
                # executor does not say which scenario crashed, so the
                # retry round runs quarantined (one scenario in flight at
                # a time): the culprit then only takes out itself
                isolate = self._run_bulk(batch, attempts, retry, outcomes)
            batch = retry

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # the pool is kept across run() calls: binary-search figures
        # issue many small batches and must not pay startup each time
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=self.mp_context,
            )
        return self._pool

    def _run_bulk(self, batch: Sequence[ScenarioSpec],
                  attempts: dict[str, int], retry: list[ScenarioSpec],
                  outcomes: dict[str, ScenarioOutcome]) -> bool:
        """One all-in-flight round; returns True if the pool broke."""
        workers = min(self.max_workers, len(batch))
        budget = (
            None if self.timeout is None
            else self.timeout * math.ceil(len(batch) / workers)
        )
        pool = self._ensure_pool()
        futures = {
            pool.submit(_worker, spec.canonical()): spec for spec in batch
        }
        try:
            for future in as_completed(futures, timeout=budget):
                spec = futures.pop(future)
                outcome = self._settle(future, spec, attempts)
                if not outcome.ok and outcome.attempts <= self._limit(outcome):
                    retry.append(spec)
                    self._total += 1  # it will report again
                self._record(outcomes, outcome)
        except FuturesTimeoutError:
            return self._drain(futures, attempts, retry, outcomes,
                               f"timeout after {self.timeout:.1f}s")
        except BrokenProcessPool:
            self._pool_broken = True
            return self._drain(futures, attempts, retry, outcomes,
                               "worker process died (BrokenProcessPool)")
        broken = self._pool_broken
        if broken:
            self._discard_pool()
        return broken

    def _run_isolated(self, batch: Sequence[ScenarioSpec],
                      attempts: dict[str, int], retry: list[ScenarioSpec],
                      outcomes: dict[str, ScenarioOutcome]) -> None:
        """Quarantine round: one scenario in flight at a time, so a crash
        or timeout takes down only the scenario that caused it."""
        for spec in batch:
            future = self._ensure_pool().submit(_worker, spec.canonical())
            timed_out = False
            try:
                future.result(timeout=self.timeout)
            except FuturesTimeoutError:
                timed_out = True
            except Exception:  # noqa: BLE001 - settled below
                pass
            if timed_out:
                attempts[spec.key] += 1
                outcome = ScenarioOutcome(
                    spec=spec, key=spec.key, attempts=attempts[spec.key],
                    error=f"timeout after {self.timeout:.1f}s",
                )
                self._discard_pool()
            else:
                outcome = self._settle(future, spec, attempts)
                if self._pool_broken:
                    self._discard_pool()
            if not outcome.ok and outcome.attempts <= self._limit(outcome):
                retry.append(spec)
                self._total += 1
            self._record(outcomes, outcome)

    def _limit(self, outcome: ScenarioOutcome) -> int:
        """Retry budget for a failed outcome. A broken pool fails every
        in-flight sibling of the crashing scenario, and the executor does
        not say which one crashed — grant one extra attempt so collateral
        scenarios still run on a healthy pool even with retries=0 (the
        true culprit just crashes again and exhausts the bonus)."""
        if outcome.error and "BrokenProcessPool" in outcome.error:
            return self.retries + 1
        return self.retries

    def _discard_pool(self) -> None:
        if self._pool is not None:
            # a stuck or crashed worker must not be joined at interpreter
            # exit (concurrent.futures' atexit hook would hang on it)
            workers = list(getattr(self._pool, "_processes", {}).values())
            self._pool.shutdown(wait=False, cancel_futures=True)
            for process in workers:
                process.kill()
            self._pool = None
        self._pool_broken = False

    def _drain(self, futures: dict, attempts: dict[str, int],
               retry: list[ScenarioSpec],
               outcomes: dict[str, ScenarioOutcome], error: str) -> bool:
        """Settle what finished, fail the rest, and discard the pool.

        Used when a batch dies early (timeout or a crashed worker): a
        worker stuck inside a simulation cannot be joined without hanging
        the campaign, so the pool is abandoned (its workers are killed)
        and the next batch gets a fresh one. Returns whether the pool
        was broken (callers quarantine the retry round on that).
        """
        for future, spec in futures.items():
            if future.done() and not future.cancelled():
                # finished in the race window; keep the real result
                outcome = self._settle(future, spec, attempts)
            elif future.cancel():
                # still queued — it never ran, so charge no attempt
                outcome = ScenarioOutcome(
                    spec=spec, key=spec.key,
                    attempts=attempts[spec.key],
                    error=f"{error} (never started)",
                )
            else:
                attempts[spec.key] += 1
                outcome = ScenarioOutcome(
                    spec=spec, key=spec.key,
                    attempts=attempts[spec.key],
                    error=error,
                )
            if not outcome.ok and outcome.attempts <= self._limit(outcome):
                retry.append(spec)
                self._total += 1
            self._record(outcomes, outcome)
        broken = self._pool_broken
        self._discard_pool()
        return broken
