"""Declarative scenario specifications with stable content-hash keys.

A :class:`ScenarioSpec` names everything a simulation run depends on —
protocol, topology, workload, seed, engine, and engine options — as plain
data. Two specs describing the same run canonicalize to the same JSON and
therefore the same SHA-256 key, which the :class:`~repro.campaign.store.
ResultStore` uses as its cache key: re-running a campaign only executes
scenarios whose keys are not yet stored.

Topology and workload builders are referenced by registered *kind* names
(see :mod:`repro.campaign.registry`) so specs stay picklable, hashable,
and executable in worker processes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from collections.abc import Mapping, Sequence
from typing import Any

from repro.campaign.engines import engine_kinds
from repro.errors import CampaignError


def _plain(value: Any) -> Any:
    """Normalize to JSON-safe plain data (tuples become lists)."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    raise CampaignError(f"spec values must be plain data, got {value!r}")


def canonical_json(data: Any) -> str:
    """Deterministic JSON used for content hashing (sorted keys, no ws)."""
    return json.dumps(_plain(data), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TopologySpec:
    """A topology by registered kind name plus constructor parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def canonical(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": _plain(self.params)}

    def __hash__(self) -> int:
        # the params dict defeats the generated frozen-dataclass hash
        return hash(canonical_json(self.canonical()))

    def build(self):
        from repro.campaign.registry import build_topology

        return build_topology(self.kind, self.params)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by registered kind name plus builder parameters.

    The builder receives the constructed topology and the scenario seed,
    so the same workload kind scales with whatever topology it runs on.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def canonical(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": _plain(self.params)}

    def __hash__(self) -> int:
        return hash(canonical_json(self.canonical()))

    def build(self, topology, seed: int):
        from repro.campaign.registry import build_workload

        return build_workload(self.kind, topology, seed, self.params)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class ScenarioSpec:
    """One simulation run: protocol x topology x workload x seed x engine.

    ``sim_deadline=None`` means "use the engine's own default horizon".
    ``loss`` is the legacy packet-engine (node_a, node_b, rate, seed)
    random wire-loss tuple, kept byte-identical in ``canonical()`` for
    hash stability; new specs should prefer ``faults`` — a mapping with
    an ``events`` schedule (link/switch down/up at simulated times, both
    engines) and/or glob-matched ``loss`` rules (packet engine), see
    :mod:`repro.faults.spec`. ``options`` carries engine/protocol
    keyword options (``n_subflows``, PDQ config overrides like
    ``aging_rate`` or ``criticality_mode``).
    """

    protocol: str
    topology: TopologySpec
    workload: WorkloadSpec
    engine: str = "packet"
    seed: int = 1
    sim_deadline: float | None = None
    loss: tuple[str, str, float, int] | None = None
    options: Mapping[str, Any] = field(default_factory=dict)
    faults: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.engine not in engine_kinds():
            from repro.campaign.registry import unknown_kind

            raise unknown_kind("engine", self.engine, engine_kinds())
        if not isinstance(self.topology, TopologySpec):
            raise CampaignError("topology must be a TopologySpec")
        if not isinstance(self.workload, WorkloadSpec):
            raise CampaignError("workload must be a WorkloadSpec")
        object.__setattr__(self, "options", dict(self.options))
        if self.loss is not None:
            if self.engine != "packet":
                raise CampaignError(
                    "loss injection only exists in the packet engine"
                )
            loss = tuple(self.loss)
            if len(loss) != 4:
                raise CampaignError(
                    "loss must be (node_a, node_b, rate, seed)"
                )
            object.__setattr__(self, "loss", loss)
        if self.faults is not None:
            from repro.faults.spec import canonical_faults

            normalized = canonical_faults(self.faults)
            if "loss" in normalized and self.engine != "packet":
                raise CampaignError(
                    "loss injection only exists in the packet engine"
                )
            object.__setattr__(self, "faults", normalized)

    # -- identity -----------------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """Plain-data form; equal runs canonicalize identically."""
        data = {
            "protocol": self.protocol,
            "topology": self.topology.canonical(),
            "workload": self.workload.canonical(),
            "engine": self.engine,
            "seed": self.seed,
            "sim_deadline": self.sim_deadline,
            "loss": list(self.loss) if self.loss is not None else None,
            "options": _plain(self.options),
        }
        if self.faults is not None:
            # additive: fault-free specs keep their pre-faults key
            data["faults"] = _plain(self.faults)
        return data

    @property
    def key(self) -> str:
        """Stable content hash of the canonical form (cache key)."""
        # computed lazily once: the runner reads it on every cache probe
        cached = self.__dict__.get("_key")
        if cached is None:
            text = canonical_json(self.canonical())
            cached = hashlib.sha256(text.encode()).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def __hash__(self) -> int:
        return hash(self.key)

    def describe(self) -> str:
        workload_params = ",".join(
            f"{k}={v}" for k, v in sorted(self.workload.params.items())
            if v is not None
        )
        workload = self.workload.kind + (
            f"({workload_params})" if workload_params else ""
        )
        extras = "".join(
            f" {k}={v}" for k, v in sorted(self.options.items())
        )
        return (
            f"{self.protocol} x {workload} on {self.topology.kind}"
            f" [engine={self.engine} seed={self.seed}{extras}]"
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        loss = data.get("loss")
        return cls(
            protocol=data["protocol"],
            topology=TopologySpec.from_dict(data["topology"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            engine=data.get("engine", "packet"),
            seed=data.get("seed", 1),
            sim_deadline=data.get("sim_deadline"),
            loss=tuple(loss) if loss is not None else None,
            options=data.get("options", {}),
            faults=data.get("faults"),
        )

    # -- fault-injection views ------------------------------------------------------

    def loss_rules(self) -> tuple:
        """Every wire-loss rule this spec declares, as typed
        :class:`~repro.faults.spec.LossRule` objects: the legacy tuple
        (as an exact-name rule) followed by ``faults.loss`` rules, with
        unseeded rules resolved to the scenario seed. This is the single
        path the packet adapter feeds to the engine — fig 9's legacy
        tuple runs through it bit-identically.
        """
        rules: list = []
        if self.loss is not None:
            from repro.faults.spec import legacy_loss_rule

            rules.append(legacy_loss_rule(self.loss))
        if self.faults is not None and "loss" in self.faults:
            from repro.faults.spec import loss_rules_from

            rules.extend(loss_rules_from(self.faults, default_seed=self.seed))
        return tuple(rules)

    def fault_events(self) -> tuple:
        """The spec's scheduled fault events as typed
        :class:`~repro.faults.spec.FaultEvent` objects (time-sorted)."""
        if self.faults is None or "events" not in self.faults:
            return ()
        from repro.faults.spec import events_from

        return events_from(self.faults)

    # -- functional updates -------------------------------------------------------

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """Functional update. Dotted names reach into the nested specs:
        ``workload.n_flows``, ``topology.n_servers``, ``options.aging_rate``.
        """
        spec = self
        flat: dict[str, Any] = {}
        for name, value in changes.items():
            if "." not in name:
                flat[name] = value
                continue
            head, _, param = name.partition(".")
            if head == "workload":
                spec = replace(spec, workload=WorkloadSpec(
                    spec.workload.kind, {**spec.workload.params, param: value}
                ))
            elif head == "topology":
                spec = replace(spec, topology=TopologySpec(
                    spec.topology.kind, {**spec.topology.params, param: value}
                ))
            elif head == "options":
                spec = replace(spec, options={**spec.options, param: value})
            else:
                raise CampaignError(f"unknown spec axis {name!r}")
        return replace(spec, **flat) if flat else spec


def is_labeled_cell(value: Any) -> bool:
    """True for a ``(label, {field: value, ...})`` labeled axis cell.

    The single classification rule shared by grid expansion and the
    experiment API's axis canonicalization — keep them in lockstep, or
    a panel's content hash and its executed cells diverge.
    """
    return (isinstance(value, (list, tuple)) and len(value) == 2
            and isinstance(value[1], Mapping))


def _axis_cells(name: str, values: Sequence[Any]) -> list[tuple[Any, dict]]:
    """Normalize one grid axis into (display value, with_ kwargs) cells.

    Three value forms are understood:

    * *plain* — ``protocol=["RCP", "D3"]``: the value is both the cell's
      display value and the value assigned to the axis field;
    * *composite* — a comma-joined name (``"protocol,options.n_subflows"``)
      with tuple values of matching arity, for axes whose fields must
      vary together; the display value is the tuple;
    * *labeled* — values are ``(label, {field: value, ...})`` pairs: the
      mapping is applied through :meth:`ScenarioSpec.with_` and the label
      is the cell's display value. This expresses non-field axes (named
      schemes, protocol/option bundles) and even non-cartesian grids —
      an assignment may touch any fields, or none.
    """
    if not values:
        raise CampaignError(f"empty grid axis {name!r}")
    parts = [p.strip() for p in name.split(",")] if "," in name else None
    cells: list[tuple[Any, dict]] = []
    for value in values:
        if is_labeled_cell(value):
            label, assignments = value
            cells.append((label, dict(assignments)))
        elif parts is not None:
            if not isinstance(value, (list, tuple)) or len(value) != len(parts):
                raise CampaignError(
                    f"composite axis {name!r} needs {len(parts)}-tuples, "
                    f"got {value!r}"
                )
            cells.append((tuple(value), dict(zip(parts, value, strict=True))))
        else:
            cells.append((value, {name: value}))
    return cells


def expand_cells(
    base: ScenarioSpec, axes: Mapping[str, Sequence[Any]],
) -> list[tuple[dict[str, Any], ScenarioSpec]]:
    """Cartesian product of spec axes with per-cell coordinates.

    Like :func:`expand_grid` but returns ``(combo, spec)`` pairs, where
    ``combo`` maps each axis name to that cell's display value — the
    coordinates reducers group results by. Axis values may be plain,
    composite, or labeled (see :func:`_axis_cells`); later axes vary
    fastest.
    """
    names = list(axes)
    normalized = [_axis_cells(name, axes[name]) for name in names]
    out: list[tuple[dict[str, Any], ScenarioSpec]] = []
    for combo in itertools.product(*normalized):
        assignments: dict[str, Any] = {}
        for _, kwargs in combo:
            assignments.update(kwargs)
        spec = base.with_(**assignments) if assignments else base
        out.append((
            {name: display for name, (display, _) in zip(names, combo, strict=True)},
            spec,
        ))
    return out


def expand_grid(base: ScenarioSpec,
                **axes: Sequence[Any]) -> list[ScenarioSpec]:
    """Cartesian product of spec axes around a base spec.

    Axis names are :class:`ScenarioSpec` field names or dotted paths
    (see :meth:`ScenarioSpec.with_`); axis values are sequences. Later
    axes vary fastest::

        expand_grid(base, protocol=["PDQ(Full)", "RCP"], seed=[1, 2, 3])

    Values may also use the composite and labeled forms documented on
    :func:`_axis_cells`. Note the contract this implies: any 2-element
    ``(value, mapping)`` axis value *is* a labeled cell
    (:func:`is_labeled_cell`) whose mapping is applied through
    :meth:`ScenarioSpec.with_` — a plain value of that exact shape
    cannot be swept directly.
    """
    return [spec for _, spec in expand_cells(base, axes)]
