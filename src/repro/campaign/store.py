"""Persistent scenario-result cache keyed by scenario content hash.

One JSON file per scenario under the store root, named ``<key>.json``.
Each file holds the canonical spec (for provenance / ``repro ls``), the
one-line summary, and the full serialized
:class:`~repro.metrics.collector.MetricsCollector`, so any paper metric
can be recomputed from a cache hit without re-simulating.

Campaign telemetry rides alongside: every scenario outcome (fresh,
cached, or failed) appends one line to ``campaign_log.jsonl`` in the
same directory — wall time, attempt count, cache hit/miss, worker pid —
which ``repro report`` summarizes. The log's ``.jsonl`` suffix keeps it
invisible to the ``*.json`` entry glob.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.spec import ScenarioSpec
from repro.errors import ReproError
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import SummaryStats

STORE_VERSION = 1


@dataclass(frozen=True)
class StoreEntry:
    """Metadata for one cached scenario (``repro ls`` row)."""

    key: str
    spec: dict[str, Any]
    summary: dict[str, Any]
    created_at: float
    elapsed: float
    stats: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        spec = ScenarioSpec.from_dict(self.spec)
        return spec.describe()


class ResultStore:
    """Filesystem-backed result cache."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths --------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _key_of(spec_or_key: ScenarioSpec | str) -> str:
        if isinstance(spec_or_key, ScenarioSpec):
            return spec_or_key.key
        return spec_or_key

    # -- cache protocol -----------------------------------------------------------

    def __contains__(self, spec_or_key: ScenarioSpec | str) -> bool:
        return self.path_for(self._key_of(spec_or_key)).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, spec_or_key: ScenarioSpec | str
            ) -> MetricsCollector | None:
        """Restored collector for a spec, or None on miss / corrupt file."""
        payload = self._load(self._key_of(spec_or_key))
        if payload is None:
            return None
        try:
            return MetricsCollector.from_dict(payload["collector"])
        except (KeyError, TypeError, ValueError, ReproError):
            # truncated/drifted payloads must degrade to a cache miss,
            # not abort the campaign
            return None

    def put(self, spec: ScenarioSpec, collector: MetricsCollector,
            elapsed: float = 0.0) -> Path:
        """Persist one result atomically (write temp file, then rename)."""
        path = self.path_for(spec.key)
        payload = {
            "version": STORE_VERSION,
            "key": spec.key,
            "spec": spec.canonical(),
            "summary": SummaryStats.from_collector(collector).to_dict(),
            "collector": collector.to_dict(),
            "created_at": time.time(),
            "elapsed": elapsed,
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def discard(self, spec_or_key: ScenarioSpec | str) -> bool:
        path = self.path_for(self._key_of(spec_or_key))
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        return n

    # -- campaign log -------------------------------------------------------------

    LOG_NAME = "campaign_log.jsonl"

    @property
    def log_path(self) -> Path:
        return self.root / self.LOG_NAME

    def log_outcome(self, row: dict[str, Any]) -> None:
        """Append one scenario-outcome row to the campaign log.

        Append-only JSONL: cheap, crash-tolerant (a torn final line is
        skipped on read), and safe for the ``*.json`` entry glob.
        """
        with self.log_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(row) + "\n")

    def read_log(self) -> list[dict[str, Any]]:
        """All campaign-log rows, oldest first (corrupt lines skipped)."""
        path = self.log_path
        if not path.exists():
            return []
        rows: list[dict[str, Any]] = []
        with path.open(encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict):
                    rows.append(row)
        return rows

    def clear_log(self) -> bool:
        if self.log_path.exists():
            self.log_path.unlink()
            return True
        return False

    # -- inspection ---------------------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """All cached entries, oldest first."""
        out: list[StoreEntry] = []
        for path in self.root.glob("*.json"):
            payload = self._load(path.stem)
            if payload is None:
                continue
            collector = payload.get("collector")
            stats = (
                collector.get("stats", {}) if isinstance(collector, dict)
                else {}
            )
            out.append(StoreEntry(
                key=payload["key"],
                spec=payload["spec"],
                summary=payload.get("summary", {}),
                created_at=payload.get("created_at", 0.0),
                elapsed=payload.get("elapsed", 0.0),
                stats=stats,
            ))
        return sorted(out, key=lambda e: e.created_at)

    def _load(self, key: str) -> dict[str, Any] | None:
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with path.open() as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # ValueError covers JSONDecodeError and UnicodeDecodeError
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != STORE_VERSION:
            return None
        if payload.get("key") != key:
            return None
        return payload
