"""PDQ: Preemptive Distributed Quick flow scheduling (the paper's §3).

Public surface:

* :class:`~repro.core.config.PdqConfig` -- all protocol knobs; presets
  ``basic()`` / ``es()`` / ``es_et()`` / ``full()`` match the paper's
  PDQ(Basic) / PDQ(ES) / PDQ(ES+ET) / PDQ(Full) variants.
* :class:`~repro.core.stack.PdqStack` -- plugs PDQ into a
  :class:`~repro.net.network.Network`.
* :class:`~repro.core.multipath.MpdqStack` -- Multipath PDQ (§6).
"""

from repro.core.comparator import FlowComparator, criticality_key
from repro.core.config import PdqConfig
from repro.core.multipath import MpdqStack
from repro.core.stack import PdqStack

__all__ = [
    "PdqConfig",
    "PdqStack",
    "MpdqStack",
    "FlowComparator",
    "criticality_key",
]
