"""Flow criticality comparison (paper §3.3).

"We say a flow is more critical than another one if it has smaller deadline
(emulating EDF) ... When there is a tie or flows have no deadline, we break
it by giving priority to the flow with smaller expected transmission time
(emulating SJF). If a tie remains, we break it by flow ID."

Criticality is expressed as a sortable key: smaller key = more critical.
The optional ``criticality`` header field (the §5.6 Random / Estimation
schemes and §7 aging advertise through it / through T_H) replaces the SJF
component when present.
"""

from __future__ import annotations


_INF = float("inf")

#: key type: (deadline-or-inf, sjf-or-override, flow id)
CriticalityKey = tuple[float, float, int]


def criticality_key(
    fid: int,
    deadline: float | None,
    expected_tx: float,
    criticality: float | None = None,
) -> CriticalityKey:
    """Build a sortable criticality key. Smaller sorts first (more
    critical). ``deadline`` is the absolute deadline (None = no deadline);
    ``criticality``, when set, overrides the expected-transmission-time
    component."""
    d = deadline if deadline is not None else _INF
    c = criticality if criticality is not None else expected_tx
    return (d, c, fid)


class FlowComparator:
    """Pluggable comparator; operators can override (paper §3.3, §7).

    The default implements the paper's EDF-then-SJF-then-fid order. Custom
    disciplines subclass and override :meth:`key`.
    """

    def key(self, fid: int, deadline: float | None, expected_tx: float,
            criticality: float | None = None) -> CriticalityKey:
        return criticality_key(fid, deadline, expected_tx, criticality)

    def more_critical(self, a: CriticalityKey, b: CriticalityKey) -> bool:
        return a < b


class SjfOnlyComparator(FlowComparator):
    """Ignores deadlines entirely (pure shortest-job-first)."""

    def key(self, fid, deadline, expected_tx, criticality=None):
        c = criticality if criticality is not None else expected_tx
        return (0.0, c, fid)


class EdfOnlyComparator(FlowComparator):
    """Pure earliest-deadline-first; ties by flow id only."""

    def key(self, fid, deadline, expected_tx, criticality=None):
        d = deadline if deadline is not None else _INF
        return (d, 0.0, fid)
