"""PDQ protocol configuration and the paper's named variants."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import KBYTE, USEC


@dataclass(frozen=True)
class PdqConfig:
    """All PDQ knobs, defaults straight from the paper.

    Variant flags (§5.1):

    * ``early_start`` -- Early Start with threshold ``K`` (§3.3.2; K=2).
    * ``early_termination`` -- sender-side TERM heuristic (§3.1).
    * ``suppressed_probing`` -- I_H = max(I_H, X * index) with X = 0.2 RTTs
      (§3.3.2).

    Switch state sizing (§3.3.1): the flow list keeps the most critical
    ``2*kappa`` flows (kappa = currently sending), floored at
    ``min_list_capacity`` and hard-capped at ``hard_flow_limit`` (the
    paper's memory bound M); flows beyond the list fall back to an RCP-style
    leftover rate.

    ``aging_rate`` is the §7 fairness knob: senders advertise
    T_H / 2^(aging_rate * t) with t the flow's waiting time in units of
    ``aging_time_unit``.

    ``criticality_mode`` selects the §5.6 comparator input: ``"deadline"``
    (the paper's default EDF-then-SJF), ``"random"``, or ``"estimate"``
    (bytes sent so far, quantized to ``estimate_chunk``).
    """

    # variant switches
    early_start: bool = True
    early_termination: bool = True
    suppressed_probing: bool = True

    # algorithm parameters
    K: float = 2.0
    probing_x: float = 0.2
    dampening: bool = True
    dampening_rtts: float = 1.0
    # whether a flow more critical than the one just accepted bypasses the
    # dampening window; off by default -- the ablation in DESIGN.md shows
    # plain dampening converges just as fast once switches reserve for
    # paused flows, and bypassing floods the link on arrival bursts
    dampening_preemption_exempt: bool = False

    # switch state sizing
    min_list_capacity: int = 16
    capacity_factor: int = 2
    hard_flow_limit: int = 64
    entry_expiry_rtts: float = 50.0

    # rate controller
    rate_controller_rtts: float = 2.0
    pdq_rate_fraction: float = 1.0

    # misc
    default_rtt: float = 150 * USEC
    min_rate: float = 1_000.0  # below this, a computed rate counts as "paused"
    # pause rather than grant a sliver: a flow is only accepted when it gets
    # at least this fraction of the rate it asked for (PDQ pauses contending
    # flows instead of trickling bandwidth to them, §2.2/§3.3)
    crumb_fraction: float = 0.05
    probe_interval_rtts: float = 1.0

    # fairness / criticality research knobs (§5.6, §7)
    aging_rate: float = 0.0
    aging_time_unit: float = 0.1
    criticality_mode: str = "deadline"
    estimate_chunk: int = 50 * KBYTE

    def __post_init__(self) -> None:
        if self.K < 0:
            raise ValueError(f"K must be >= 0, got {self.K}")
        if self.capacity_factor < 1:
            raise ValueError("capacity_factor must be >= 1")
        if self.criticality_mode not in ("deadline", "random", "estimate"):
            raise ValueError(
                f"unknown criticality_mode {self.criticality_mode!r}"
            )

    # -- named variants (paper §5.1) -------------------------------------------

    @classmethod
    def basic(cls, **overrides) -> "PdqConfig":
        """PDQ(Basic): no Early Start, Early Termination or Suppressed
        Probing."""
        return cls(
            early_start=False,
            early_termination=False,
            suppressed_probing=False,
            **overrides,
        )

    @classmethod
    def es(cls, **overrides) -> "PdqConfig":
        """PDQ(ES): Basic + Early Start."""
        return cls(
            early_start=True,
            early_termination=False,
            suppressed_probing=False,
            **overrides,
        )

    @classmethod
    def es_et(cls, **overrides) -> "PdqConfig":
        """PDQ(ES+ET): Early Start + Early Termination."""
        return cls(
            early_start=True,
            early_termination=True,
            suppressed_probing=False,
            **overrides,
        )

    @classmethod
    def full(cls, **overrides) -> "PdqConfig":
        """PDQ(Full): everything on (the paper's headline configuration)."""
        return cls(**overrides)

    def with_(self, **changes) -> "PdqConfig":
        return replace(self, **changes)

    @property
    def variant_name(self) -> str:
        if self.early_start and self.early_termination and self.suppressed_probing:
            return "PDQ(Full)"
        if self.early_start and self.early_termination:
            return "PDQ(ES+ET)"
        if self.early_start:
            return "PDQ(ES)"
        return "PDQ(Basic)"
