"""Per-link switch flow state (paper §3.3.1).

Each egress link remembers ``<R_i, P_i, D_i, T_i, RTT_i>`` for the most
critical flows -- capacity ``max(2*kappa, min_capacity)`` where kappa is the
number of currently sending flows, hard-capped at M (``hard_flow_limit``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.comparator import CriticalityKey, FlowComparator
from repro.core.config import PdqConfig


class FlowEntry:
    """Switch-side record of one flow on one link."""

    __slots__ = (
        "fid", "rate", "pauseby", "deadline", "expected_tx", "rtt",
        "criticality", "requested", "last_update", "key",
    )

    def __init__(self, fid: int, now: float):
        self.fid = fid
        self.rate: float = 0.0          # R_i, committed on the reverse path
        self.pauseby: Optional[int] = None  # P_i
        self.deadline: Optional[float] = None  # D_i (absolute)
        self.expected_tx: float = 0.0   # T_i
        self.rtt: float = 0.0           # RTT_i
        self.criticality: Optional[float] = None
        self.requested: float = 0.0     # R_H as the sender asked (pre-clamp)
        self.last_update: float = now
        self.key: CriticalityKey = (float("inf"), float("inf"), fid)

    @property
    def sending(self) -> bool:
        """A flow counts as sending when it holds a committed positive rate
        and no switch has paused it."""
        return self.rate > 0.0 and self.pauseby is None


class PdqFlowList:
    """Criticality-sorted bounded flow list for one egress link."""

    def __init__(self, config: PdqConfig, comparator: FlowComparator):
        self.config = config
        self.comparator = comparator
        self._entries: List[FlowEntry] = []   # sorted, most critical first
        self._by_fid: Dict[int, FlowEntry] = {}
        self.evictions = 0

    # -- basic container ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def get(self, fid: int) -> Optional[FlowEntry]:
        return self._by_fid.get(fid)

    def entry_at(self, index: int) -> FlowEntry:
        return self._entries[index]

    def index_of(self, fid: int) -> int:
        entry = self._by_fid[fid]
        return self._entries.index(entry)

    # -- sizing ----------------------------------------------------------------------

    @property
    def kappa(self) -> int:
        """Number of currently sending flows in the list."""
        return sum(1 for e in self._entries if e.sending)

    @property
    def capacity(self) -> int:
        soft = max(
            self.config.capacity_factor * max(self.kappa, 1),
            self.config.min_list_capacity,
        )
        return min(soft, self.config.hard_flow_limit)

    # -- mutation ---------------------------------------------------------------------

    def admit(self, fid: int, now: float, key: CriticalityKey) -> Optional[FlowEntry]:
        """Try to add a new flow (Algorithm 1's admission test): succeeds if
        there is room or the flow beats the least critical entry. Returns
        the new entry, or None if the flow must use the RCP fallback."""
        capacity = self.capacity
        if len(self._entries) >= capacity:
            least = self._entries[-1]
            if not self.comparator.more_critical(key, least.key):
                return None
        entry = FlowEntry(fid, now)
        entry.key = key
        self._insert(entry)
        self._by_fid[fid] = entry
        evicted = []
        while len(self._entries) > capacity:
            evicted.append(self._entries.pop())
            self.evictions += 1
        for gone in evicted:
            del self._by_fid[gone.fid]
        return entry if fid in self._by_fid else None

    def remove(self, fid: int) -> bool:
        entry = self._by_fid.pop(fid, None)
        if entry is None:
            return False
        self._entries.remove(entry)
        return True

    def reposition(self, entry: FlowEntry, key: CriticalityKey) -> int:
        """Update an entry's key and restore sorted order; returns the new
        index."""
        self._entries.remove(entry)
        entry.key = key
        return self._insert(entry)

    def purge_expired(self, now: float, horizon: float) -> List[int]:
        """Drop entries not refreshed within ``horizon`` seconds (protects
        against lost TERMs; §5.6's loss resilience depends on it)."""
        stale = [e for e in self._entries if now - e.last_update > horizon]
        for entry in stale:
            self._entries.remove(entry)
            del self._by_fid[entry.fid]
        return [e.fid for e in stale]

    # -- internals --------------------------------------------------------------------

    def _insert(self, entry: FlowEntry) -> int:
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid].key <= entry.key:
                lo = mid + 1
            else:
                hi = mid
        self._entries.insert(lo, entry)
        return lo
