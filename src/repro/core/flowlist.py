"""Per-link switch flow state (paper §3.3.1).

Each egress link remembers ``<R_i, P_i, D_i, T_i, RTT_i>`` for the most
critical flows -- capacity ``max(2*kappa, min_capacity)`` where kappa is the
number of currently sending flows, hard-capped at M (``hard_flow_limit``).

Layout: the entries live in criticality order next to a parallel flat key
array. Keys are unique (every comparator ends with the flow id as a
tiebreaker), so ``bisect`` on the key array locates any entry in O(log n)
with C-level tuple comparisons -- no linear identity scans -- and a
refresh whose new key still fits between its neighbors repositions
in place without touching list structure at all (the common case: a flow
re-probing with an unchanged deadline moves monotonically through the
SJF component). ``purge_expired`` keeps a conservative lower bound on the
oldest ``last_update`` so the per-packet staleness sweep is one float
compare until something could actually be stale.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.core.comparator import CriticalityKey, FlowComparator
from repro.core.config import PdqConfig

_INF = float("inf")


class FlowEntry:
    """Switch-side record of one flow on one link."""

    __slots__ = (
        "fid", "rate", "pauseby", "deadline", "expected_tx", "rtt",
        "criticality", "requested", "last_update", "key",
    )

    def __init__(self, fid: int, now: float):
        self.fid = fid
        self.rate: float = 0.0          # R_i, committed on the reverse path
        self.pauseby: int | None = None  # P_i
        self.deadline: float | None = None  # D_i (absolute)
        self.expected_tx: float = 0.0   # T_i
        self.rtt: float = 0.0           # RTT_i
        self.criticality: float | None = None
        self.requested: float = 0.0     # R_H as the sender asked (pre-clamp)
        self.last_update: float = now
        self.key: CriticalityKey = (_INF, _INF, fid)

    @property
    def sending(self) -> bool:
        """A flow counts as sending when it holds a committed positive rate
        and no switch has paused it."""
        return self.rate > 0.0 and self.pauseby is None


class PdqFlowList:
    """Criticality-sorted bounded flow list for one egress link."""

    def __init__(self, config: PdqConfig, comparator: FlowComparator):
        self.config = config
        self.comparator = comparator
        self._entries: list[FlowEntry] = []   # sorted, most critical first
        self._keys: list[CriticalityKey] = []  # parallel: _keys[i] == _entries[i].key
        self._by_fid: dict[int, FlowEntry] = {}
        self.evictions = 0
        #: conservative lower bound on min(entry.last_update); refreshes
        #: only raise the true minimum, so a stale bound just means one
        #: wasted scan, never a missed purge
        self._min_last_update: float = _INF

    # -- basic container ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def get(self, fid: int) -> FlowEntry | None:
        return self._by_fid.get(fid)

    def entry_at(self, index: int) -> FlowEntry:
        return self._entries[index]

    def index_of(self, fid: int) -> int:
        return self._locate(self._by_fid[fid])

    # -- sizing ----------------------------------------------------------------------

    @property
    def kappa(self) -> int:
        """Number of currently sending flows in the list."""
        return sum(1 for e in self._entries if e.sending)

    @property
    def capacity(self) -> int:
        soft = max(
            self.config.capacity_factor * max(self.kappa, 1),
            self.config.min_list_capacity,
        )
        return min(soft, self.config.hard_flow_limit)

    # -- mutation ---------------------------------------------------------------------

    def admit(self, fid: int, now: float, key: CriticalityKey) -> FlowEntry | None:
        """Try to add a new flow (Algorithm 1's admission test): succeeds if
        there is room or the flow beats the least critical entry. Returns
        the new entry, or None if the flow must use the RCP fallback."""
        capacity = self.capacity
        entries = self._entries
        keys = self._keys
        if len(entries) >= capacity and \
                not self.comparator.more_critical(key, keys[-1]):
            return None
        entry = FlowEntry(fid, now)
        entry.key = key
        pos = bisect_right(keys, key)
        entries.insert(pos, entry)
        keys.insert(pos, key)
        self._by_fid[fid] = entry
        if now < self._min_last_update:
            self._min_last_update = now
        while len(entries) > capacity:
            gone = entries.pop()
            keys.pop()
            self.evictions += 1
            del self._by_fid[gone.fid]
        return entry if fid in self._by_fid else None

    def remove(self, fid: int) -> bool:
        entry = self._by_fid.pop(fid, None)
        if entry is None:
            return False
        index = self._locate(entry)
        del self._entries[index]
        del self._keys[index]
        return True

    def reposition(self, entry: FlowEntry, key: CriticalityKey) -> int:
        """Update an entry's key and restore sorted order; returns the new
        index."""
        entries = self._entries
        keys = self._keys
        index = self._locate(entry)
        last = len(keys) - 1
        if ((index == 0 or keys[index - 1] < key)
                and (index == last or key < keys[index + 1])):
            # order unchanged: overwrite in place (keys are unique, so
            # strict neighbor bounds are exact)
            entry.key = key
            keys[index] = key
            return index
        del entries[index]
        del keys[index]
        entry.key = key
        pos = bisect_right(keys, key)
        entries.insert(pos, entry)
        keys.insert(pos, key)
        return pos

    def purge_expired(self, now: float, horizon: float) -> list[int]:
        """Drop entries not refreshed within ``horizon`` seconds (protects
        against lost TERMs; §5.6's loss resilience depends on it)."""
        if now - self._min_last_update <= horizon:
            return []  # even the oldest known refresh is still fresh
        stale = [e for e in self._entries if now - e.last_update > horizon]
        for entry in stale:
            index = self._locate(entry)
            del self._entries[index]
            del self._keys[index]
            del self._by_fid[entry.fid]
        self._min_last_update = min(
            (e.last_update for e in self._entries), default=_INF
        )
        return [e.fid for e in stale]

    # -- internals --------------------------------------------------------------------

    def _locate(self, entry: FlowEntry) -> int:
        """Index of ``entry`` via bisect on its key (exact: keys are
        unique). Falls back to an identity scan if the key was mutated
        behind the list's back."""
        keys = self._keys
        index = bisect_left(keys, entry.key)
        if index < len(keys) and self._entries[index] is entry:
            return index
        return self._entries.index(entry)
