"""Multipath PDQ (paper §6).

The M-PDQ sender splits a flow into subflows, sends a SYN per subflow, and
periodically shifts load from paused subflows to the sending subflow with
the minimal remaining load. Switches need nothing beyond flow-level ECMP
(each subflow's distinct flow id hashes onto its own path). The receiver
keeps a shared resequencing buffer across subflows; completion is the
instant the union of subflow deliveries covers the flow (we model that
buffer as the coordinator's aggregate byte count).
"""

from __future__ import annotations


from repro.core.config import PdqConfig
from repro.core.receiver import PdqReceiver
from repro.core.sender import PdqSender
from repro.core.stack import PdqStack
from repro.errors import WorkloadError
from repro.events.timers import PeriodicTimer
from repro.metrics.records import FlowRecord

#: subflow fids live far above workload fids so they can never collide
SUBFLOW_FID_BASE = 1_000_000
MAX_SUBFLOWS = 64


def subflow_fid(parent_fid: int, index: int) -> int:
    if parent_fid >= SUBFLOW_FID_BASE:
        raise WorkloadError(
            f"flow id {parent_fid} too large for M-PDQ (must be < "
            f"{SUBFLOW_FID_BASE})"
        )
    return (parent_fid + 1) * SUBFLOW_FID_BASE + index


class _SubflowMetrics:
    """Metrics adapter: translates subflow callbacks onto the parent flow."""

    #: subflow rate changes are internal scheduling detail, not parent
    #: flow lifecycle — lifecycle tracing sees only the real collector
    tracer = None

    def __init__(self, coordinator: "MpdqCoordinator"):
        self._coord = coordinator

    def on_bytes(self, fid: int, n: int) -> None:
        self._coord.on_subflow_bytes(n)

    def on_complete(self, fid: int, time: float) -> None:
        pass  # completion is decided by the coordinator's aggregate count

    def on_terminated(self, fid: int, time: float, reason: str) -> None:
        self._coord.on_subflow_terminated(reason)

    def on_retransmit(self, fid: int) -> None:
        self._coord.net.metrics.on_retransmit(self._coord.spec.fid)

    def on_probe(self, fid: int) -> None:
        self._coord.net.metrics.on_probe(self._coord.spec.fid)

    def on_start(self, fid: int, time: float) -> None:
        pass


class _NetworkProxy:
    """Delegates to the real network but reroutes metrics to the adapter."""

    def __init__(self, network, metrics: _SubflowMetrics):
        self._network = network
        self.metrics = metrics

    def __getattr__(self, item):
        return getattr(self._network, item)


class MpdqCoordinator:
    """Sender-side coordinator owning one flow's subflows."""

    def __init__(self, network, stack: "MpdqStack", spec, record: FlowRecord,
                 n_subflows: int):
        if not 1 <= n_subflows <= MAX_SUBFLOWS:
            raise WorkloadError(
                f"n_subflows must be in [1, {MAX_SUBFLOWS}], got {n_subflows}"
            )
        self.net = network
        self.sim = network.sim
        self.stack = stack
        self.spec = spec
        self.record = record
        self.n_subflows = min(n_subflows, spec.size_bytes)  # no empty subflows
        self.bytes_delivered = 0
        self.done = False
        self.terminated = False
        self.senders: list[PdqSender] = []
        self.receivers: list[PdqReceiver] = []
        self._adapter = _SubflowMetrics(self)
        self._proxy = _NetworkProxy(network, self._adapter)
        self._build_subflows()
        shift_period = stack.shift_interval_rtts * stack.config.default_rtt
        self._shift_timer = PeriodicTimer(self.sim, shift_period, self._shift_load)

    # -- construction -------------------------------------------------------------

    def _build_subflows(self) -> None:
        spec = self.spec
        src = self.net.host(spec.src)
        dst = self.net.host(spec.dst)
        base = spec.size_bytes // self.n_subflows
        remainder = spec.size_bytes - base * self.n_subflows
        # BCube exposes address-based disjoint parallel paths (§6: "We
        # implement BCube address-based routing to derive multiple parallel
        # paths"); elsewhere subflows rely on per-subflow ECMP hashing.
        source_routes = None
        if hasattr(self.net.topology, "disjoint_paths"):
            source_routes = [
                self.net.links_for_path(names)
                for names in self.net.topology.disjoint_paths(spec.src,
                                                              spec.dst)
            ]
        for k in range(self.n_subflows):
            chunk = base + (1 if k < remainder else 0)
            if chunk == 0:
                continue
            fid = subflow_fid(spec.fid, k)
            sub_spec = spec.with_(fid=fid, size_bytes=chunk)
            sub_record = FlowRecord(spec=sub_spec)  # scratch, not collected
            fwd = (source_routes[k % len(source_routes)] if source_routes
                   else self.net.router.flow_path(fid, src.id, dst.id))
            rev = self.net.router.reverse_path(fwd)
            sender = PdqSender(self._proxy, self.stack, sub_spec, sub_record,
                               fwd, src, self.stack.config)
            sender.et_enabled = False  # ET is the coordinator's call
            receiver = PdqReceiver(self._proxy, self.stack, sub_spec,
                                   sub_record, rev, dst)
            src.register_sender(fid, sender)
            dst.register_receiver(fid, receiver)
            self.senders.append(sender)
            self.receivers.append(receiver)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        self.record.start_time = self.sim.now
        for sender in self.senders:
            sender.start()
        self._shift_timer.start()

    def _stop(self) -> None:
        self._shift_timer.stop()

    # -- subflow callbacks ----------------------------------------------------------

    def on_subflow_bytes(self, n: int) -> None:
        if self.done:
            return
        self.bytes_delivered += n
        self.net.metrics.on_bytes(self.spec.fid, n)
        if self.bytes_delivered >= self.spec.size_bytes:
            self.done = True
            self.net.metrics.on_complete(self.spec.fid, self.sim.now)
            self._stop()

    def on_subflow_terminated(self, reason: str) -> None:
        """Any subflow giving up (Early Termination) kills the whole flow."""
        if self.done or self.terminated:
            return
        self.terminated = True
        self.net.metrics.on_terminated(self.spec.fid, self.sim.now, reason)
        for sender in self.senders:
            if not sender.term_sent and not sender.closed:
                sender.terminate(reason)
        self._stop()

    # -- load re-shifting (§6) ----------------------------------------------------------

    def _sending(self) -> list[PdqSender]:
        return [s for s in self.senders
                if not s.closed and not s.term_sent and s.rate > 0]

    def _paused(self) -> list[PdqSender]:
        """Subflows paused long enough to be worth stripping: commit races
        pause subflows for an RTT or two routinely, and shifting on those
        transients degenerates the flow to a single path."""
        now = self.sim.now
        min_paused = (self.stack.shift_interval_rtts
                      * self.stack.config.default_rtt)
        return [
            s for s in self.senders
            if not s.closed and not s.term_sent and s.handshake_done
            and s.rate <= 0
            and s._paused_since is not None
            and now - s._paused_since >= min_paused
        ]

    def _shift_load(self) -> None:
        """Move unsent bytes from paused subflows to the sending subflow
        with the minimal remaining load; also run flow-wide Early
        Termination."""
        if self.done or self.terminated:
            self._stop()
            return
        if self._check_early_termination():
            return
        sending = self._sending()
        if not sending:
            return
        target = min(sending, key=lambda s: s.remaining_payload)
        for paused in self._paused():
            transferable = paused.size - paused.next_offset
            if transferable <= 0:
                continue
            paused.size -= transferable
            target.size += transferable
            target._schedule_send()
            if paused.bytes_acked >= paused.size and not paused.term_sent:
                paused._finish()  # fully stripped: release its switch state

    def _check_early_termination(self) -> bool:
        """Flow-wide ET (§3.1 conditions applied to the aggregate): the
        coordinator owns the decision because individual subflows cannot
        judge the whole flow's feasibility."""
        if not self.stack.config.early_termination:
            return False
        deadline = self.spec.absolute_deadline
        if deadline is None:
            return False
        now = self.sim.now
        if now > deadline:
            self.on_subflow_terminated("early_termination:deadline_passed")
            return True
        alive = [s for s in self.senders if not s.closed and not s.term_sent]
        if not alive:
            return False
        aggregate_rate = sum(s.max_rate for s in alive)
        remaining = self.spec.size_bytes - self.bytes_delivered
        if aggregate_rate > 0 and now + remaining * 8.0 / aggregate_rate > deadline:
            self.on_subflow_terminated("early_termination:cannot_finish")
            return True
        return False


class MpdqStack(PdqStack):
    """Multipath PDQ: PDQ switches, coordinator-managed subflow endpoints."""

    def __init__(self, config: PdqConfig | None = None, n_subflows: int = 3,
                 shift_interval_rtts: float = 2.0,
                 comparator=None):
        super().__init__(config, comparator)
        if n_subflows < 1:
            raise WorkloadError(f"n_subflows must be >= 1, got {n_subflows}")
        self.n_subflows = n_subflows
        self.shift_interval_rtts = shift_interval_rtts
        self.name = f"M-PDQ({n_subflows})"

    def make_endpoints(self, network, spec, record, fwd_path, rev_path):
        coordinator = MpdqCoordinator(network, self, spec, record,
                                      self.n_subflows)
        # the coordinator plays the sender role; subflow receivers are
        # already registered on the destination host
        return coordinator, coordinator.receivers
