"""PDQ per-link rate controller (paper §3.3.3).

Maintains the single variable C that caps the aggregate sending rate
handed out by the flow controller:

    C <- max(0, r_PDQ - q / (2 * RTT))

updated every 2 RTTs (one RTT for the adjusted rate to take effect, one to
measure the result). Draining the Early-Start queue and absorbing transient
inconsistencies (e.g. lost pause messages) both fall out of this rule.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import PdqConfig
from repro.events.simulator import Simulator
from repro.events.timers import PeriodicTimer
from repro.net.link import Link
from repro.units import BITS_PER_BYTE


class PdqRateController:
    """Controls C for one egress link."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        config: PdqConfig,
        rtt_avg: Callable[[], float],
    ):
        self.sim = sim
        self.link = link
        self.config = config
        self._rtt_avg = rtt_avg
        self.r_pdq = config.pdq_rate_fraction * link.rate_bps
        self.capacity = self.r_pdq
        self.updates = 0
        # the 2-RTT cadence tracks the measured RTT: each update writes
        # the next period back into the timer before it re-arms
        self._timer = PeriodicTimer(sim, self._period(), self._update)

    @property
    def running(self) -> bool:
        return self._timer.running

    def start(self) -> None:
        if not self._timer.running:
            self._timer.period = self._period()
            self._timer.start()

    def stop(self) -> None:
        self._timer.stop()
        self.capacity = self.r_pdq

    def set_pdq_rate(self, r_pdq: float) -> None:
        """Reserve capacity for non-PDQ traffic (§3.3.3's multi-protocol
        slicing)."""
        if r_pdq < 0:
            raise ValueError(f"r_pdq must be >= 0, got {r_pdq}")
        self.r_pdq = r_pdq

    # -- internals ---------------------------------------------------------------

    def _period(self) -> float:
        return self.config.rate_controller_rtts * self._rtt_avg()

    def _update(self) -> None:
        rtt = self._rtt_avg()
        queue_drain_rate = (
            self.link.queue.bytes * BITS_PER_BYTE / (2.0 * rtt) if rtt > 0 else 0.0
        )
        self.capacity = max(0.0, self.r_pdq - queue_drain_rate)
        self.updates += 1
        self._timer.period = self._period()
