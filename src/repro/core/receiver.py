"""PDQ receiver (paper §3.2): copies the scheduling header from each data
packet into the corresponding ACK, clamping the rate to what the receiver
can process."""

from __future__ import annotations

from repro.net.headers import PdqHeader
from repro.net.packet import Packet
from repro.transport.base import AckingReceiver


class PdqReceiver(AckingReceiver):
    """One PDQ flow's receiving half."""

    def __init__(self, network, stack, spec, record, rev_path, host):
        super().__init__(network, stack, spec, record, rev_path, host)
        self.max_rate = network.receiver_rate_limit(spec.dst)

    def make_ack_header(self, packet: Packet):
        header = packet.sched
        if isinstance(header, PdqHeader) and header.rate > self.max_rate:
            header.rate = self.max_rate
        return header
