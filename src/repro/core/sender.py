"""PDQ sender (paper §3.1).

On top of the shared paced sender this adds: the scheduling header,
pause/resume driven by switch feedback, probing while paused (with the
Suppressed Probing interval), the Early Termination heuristic, flow aging
(§7) and the alternative criticality schemes of §5.6.
"""

from __future__ import annotations


from repro.core.config import PdqConfig
from repro.events.timers import Timer
from repro.net.headers import PdqHeader
from repro.net.packet import Packet, PacketKind
from repro.transport.base import RateBasedSender
from repro.utils.rng import spawn_rng


class PdqSender(RateBasedSender):
    """One PDQ flow's sending half."""

    def __init__(self, network, stack, spec, record, fwd_path, host,
                 config: PdqConfig):
        super().__init__(network, stack, spec, record, fwd_path, host)
        self.config = config
        self.pauseby: int | None = None
        self.inter_probe: float = config.probe_interval_rtts
        self.deadline = spec.absolute_deadline
        # M-PDQ coordinators take over Early Termination for their subflows
        self.et_enabled = config.early_termination

        # aging (§7): accumulated paused time
        self._paused_since: float | None = None
        self._waited: float = 0.0

        # §5.6 criticality schemes
        self._random_criticality: float | None = None
        if config.criticality_mode == "random":
            rng = spawn_rng(spec.fid, "criticality")
            self._random_criticality = float(rng.random())
        if spec.criticality is not None:
            self._random_criticality = spec.criticality

        self._probe_timer = Timer(self.sim, self._probe)
        # per-flow jitter stream: keeps probe timers of paused flows from
        # phase-locking (a locked order would make the same flow win every
        # admission race at a freed link)
        self._jitter_rng = spawn_rng(spec.fid, "probe-jitter")

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._hopeless_at_start():
            self.record.start_time = self.sim.now
            self.terminate("early_termination:hopeless_at_start")
            return
        super().start()

    def on_close(self) -> None:
        self._probe_timer.cancel()

    def _hopeless_at_start(self) -> bool:
        return (
            self.et_enabled
            and self.deadline is not None
            and self.sim.now + self.expected_tx_time() > self.deadline
        )

    # -- scheduling header -----------------------------------------------------------

    def _aged_expected_tx(self) -> float:
        expected = self.expected_tx_time()
        if self.config.aging_rate <= 0:
            return expected
        waited = self._waited
        if self._paused_since is not None:
            waited += self.sim.now - self._paused_since
        age_units = waited / self.config.aging_time_unit
        return expected / (2.0 ** (self.config.aging_rate * age_units))

    def _criticality_value(self) -> float | None:
        mode = self.config.criticality_mode
        if mode == "random" or self._random_criticality is not None:
            return self._random_criticality
        if mode == "estimate":
            chunk = self.config.estimate_chunk
            return float((self.next_offset // chunk) * chunk)
        return None

    def make_sched_header(self, kind: PacketKind) -> PdqHeader:
        rtt = self.rtt.srtt if self.rtt.srtt is not None else self.config.default_rtt
        return self.pool.acquire_pdq(
            self.max_rate,
            self.pauseby,
            self.deadline,
            self._aged_expected_tx(),
            rtt,
            self.config.probe_interval_rtts,
            self._criticality_value(),
        )

    # -- feedback ----------------------------------------------------------------------

    def process_feedback(self, packet: Packet) -> None:
        header = packet.sched
        if not isinstance(header, PdqHeader):
            return
        self.pauseby = header.pauseby
        self.inter_probe = max(
            self.config.probe_interval_rtts, header.inter_probe
        )
        rate = header.rate if header.rate > self.config.min_rate else 0.0
        self.set_rate(min(rate, self.max_rate))

    def on_rate_change(self) -> None:
        now = self.sim.now
        if self.rate <= 0:
            if self._paused_since is None:
                self._paused_since = now
                self.net.flow_pauses += 1
            if (
                self.handshake_done
                and not self.term_sent
                and not self.closed
                and not self._probe_timer.armed
            ):
                self._probe_timer.start(self._probe_interval())
        else:
            if self._paused_since is not None:
                self._waited += now - self._paused_since
                self._paused_since = None
                self.net.flow_resumes += 1
            self._probe_timer.cancel()

    def _probe_interval(self) -> float:
        rtt = self.rtt.srtt if self.rtt.srtt is not None else self.config.default_rtt
        interval = max(self.inter_probe, self.config.probe_interval_rtts) * rtt
        return interval * (0.7 + 0.6 * float(self._jitter_rng.random()))

    def _probe(self) -> None:
        if self.closed or self.term_sent or self.rate > 0:
            return
        if self.check_early_termination():
            return
        self.net.metrics.on_probe(self.spec.fid)
        self._send_control(PacketKind.PROBE)
        self._probe_timer.start(self._probe_interval())

    # -- Early Termination (§3.1) ----------------------------------------------------------

    def check_early_termination(self) -> bool:
        if not self.et_enabled or self.deadline is None:
            return False
        if self.term_sent or self.closed:
            return False
        now = self.sim.now
        rtt = self.rtt.srtt if self.rtt.srtt is not None else self.config.default_rtt
        if now > self.deadline:
            self.terminate("early_termination:deadline_passed")
            return True
        if now + self.expected_tx_time() > self.deadline:
            self.terminate("early_termination:cannot_finish")
            return True
        if self.rate <= 0 and now + rtt > self.deadline:
            self.terminate("early_termination:paused_near_deadline")
            return True
        return False
