"""Protocol stack wiring PDQ into a Network."""

from __future__ import annotations


from repro.core.comparator import FlowComparator
from repro.core.config import PdqConfig
from repro.core.receiver import PdqReceiver
from repro.core.sender import PdqSender
from repro.core.switch import PdqSwitchProtocol
from repro.transport.base import ProtocolStack


class PdqStack(ProtocolStack):
    """PDQ endpoints plus the per-switch flow/rate controllers.

    Wire overhead: a 40-byte TCP/IP header plus the paper's 16-byte
    scheduling header on every packet (data, probe and ACK alike).
    """

    header_bytes = 56
    ack_bytes = 56

    def __init__(self, config: PdqConfig | None = None,
                 comparator: FlowComparator | None = None):
        self.config = config or PdqConfig.full()
        self.comparator = comparator or FlowComparator()
        self.name = self.config.variant_name

    def make_switch_protocol(self, network, switch) -> PdqSwitchProtocol:
        return PdqSwitchProtocol(network, switch, self.config, self.comparator)

    def make_endpoints(self, network, spec, record, fwd_path, rev_path):
        src_host = network.host(spec.src)
        dst_host = network.host(spec.dst)
        sender = PdqSender(network, self, spec, record, fwd_path, src_host,
                           self.config)
        receiver = PdqReceiver(network, self, spec, record, rev_path, dst_host)
        src_host.register_sender(spec.fid, sender)
        dst_host.register_receiver(spec.fid, receiver)
        return sender, receiver
