"""PDQ switch: the flow controller (Algorithms 1-3) plus the rate
controller, attached per egress link (paper §3.3).

Forward-path packets (SYN / DATA / PROBE) run Algorithm 1 against the
egress link the packet leaves on; TERM removes flow state; reverse-path
packets (SYN-ACK / ACK) run Algorithm 3 against the flow's forward-link
state at this switch. Acceptance is two-phase: the forward pass tentatively
grants a rate in the header, and the reverse pass commits it into switch
state when no downstream switch pauses the flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.comparator import FlowComparator
from repro.core.config import PdqConfig
from repro.core.flowlist import PdqFlowList
from repro.core.rate_controller import PdqRateController
from repro.net.headers import PdqHeader
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.utils.ewma import Ewma

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.net.node import Switch


class PdqLinkState:
    """All PDQ state for one egress link."""

    def __init__(self, protocol: "PdqSwitchProtocol", link: Link):
        self.protocol = protocol
        self.link = link
        config = protocol.config
        self.config = config
        self.flows = PdqFlowList(config, protocol.comparator)
        self.rtt_avg = Ewma(alpha=0.1, default=config.default_rtt)
        self.rate_controller = PdqRateController(
            protocol.sim, link, config, self.rtt_avg_value
        )
        self.last_accept_time = -float("inf")
        self.last_accept_fid: int | None = None
        self.last_accept_key = None
        # flows that did not fit in the list (RCP fallback, §3.3.1);
        # _outside_min is a conservative lower bound on the oldest
        # timestamp, so the per-packet expiry sweep costs one compare
        # until something could actually be stale
        self.outside: dict[int, float] = {}
        self._outside_min = float("inf")
        self.pauses = 0
        self.accepts = 0

    # -- helpers -------------------------------------------------------------------

    def rtt_avg_value(self) -> float:
        return self.rtt_avg.value_or(self.config.default_rtt)

    @property
    def capacity(self) -> float:
        return self.rate_controller.capacity

    def _observe(self, header: PdqHeader, now: float) -> None:
        if header.rtt > 0:
            self.rtt_avg.update(header.rtt)
        self.rate_controller.start()
        horizon = self.config.entry_expiry_rtts * self.rtt_avg_value()
        for fid in self.flows.purge_expired(now, horizon):
            self.protocol.forget(fid, self)
        cutoff = now - horizon
        if self._outside_min < cutoff:
            # only rebuild when some fallback flow is actually stale --
            # otherwise the filtered dict would be identical
            outside = {f: t for f, t in self.outside.items() if t >= cutoff}
            self.outside = outside
            self._outside_min = min(outside.values(), default=float("inf"))

    # -- Algorithm 2 ------------------------------------------------------------------

    def availbw(self, index: int) -> tuple[float, float]:
        """Algorithm 2 for the flow at ``index``: returns (available
        bandwidth, bandwidth held by more-critical flows).

        Nearly-completed more-critical flows fall into the Early-Start
        budget instead of counting their rate. A more-critical flow that is
        sending counts its committed rate; one that is tentatively accepted
        or paused *by this switch* counts its requested rate -- the switch
        is holding the link for it (this is what makes the equilibrium of
        §4 -- drivers accepted, everyone else paused -- reachable in O(1)
        probes instead of through admission races)."""
        config = self.config
        early_start = config.early_start
        k_threshold = config.K
        early_start_budget = 0.0
        allocated = 0.0
        rtt = self.rtt_avg_value()
        entries = self.flows._entries
        for i in range(index):
            entry = entries[i]
            entry_rtt = entry.rtt if entry.rtt > 0 else rtt
            ratio = entry.expected_tx / entry_rtt if entry_rtt > 0 else float("inf")
            if (
                early_start
                and ratio < k_threshold
                and early_start_budget < k_threshold
            ):
                early_start_budget += ratio
            elif entry.pauseby is None and entry.rate > 0:
                allocated += entry.rate  # committed sender
            else:
                # tentative accept (not yet committed) or paused by us:
                # reserve what the flow asked for
                allocated += entry.requested
        capacity = self.capacity
        if allocated >= capacity:
            return 0.0, allocated
        return capacity - allocated, allocated

    # -- Algorithm 1 --------------------------------------------------------------------

    def on_forward(self, packet: Packet) -> None:
        header: PdqHeader = packet.sched
        now = self.protocol.sim.now
        my_id = self.protocol.switch_id
        self._observe(header, now)

        # paused by another switch: drop our state and pass through
        if header.pauseby is not None and header.pauseby != my_id:
            if self.flows.remove(packet.fid):
                self.protocol.forget(packet.fid, self)
            self.outside.pop(packet.fid, None)
            self._cancel_tentative_accept(packet.fid)
            return

        entry = self.flows.get(packet.fid)
        if entry is None:
            key = self.protocol.comparator.key(
                packet.fid, header.deadline, header.expected_tx,
                header.criticality,
            )
            entry = self.flows.admit(packet.fid, now, key)
            if entry is None:
                self._rcp_fallback(packet.fid, header, now, my_id)
                return
            self.protocol.remember(packet.fid, self)
            self.outside.pop(packet.fid, None)

        # refresh <D_i, T_i, RTT_i> from the header and re-sort
        entry.deadline = header.deadline
        entry.expected_tx = header.expected_tx
        if header.rtt > 0:
            entry.rtt = header.rtt
        entry.criticality = header.criticality
        entry.requested = header.rate
        entry.last_update = now
        key = self.protocol.comparator.key(
            packet.fid, entry.deadline, entry.expected_tx, entry.criticality
        )
        index = self.flows.reposition(entry, key)

        requested = header.rate
        available, _ = self.availbw(index)
        grant = min(available, requested)
        # Pause semantics (§2.2/§3.3): flows are paused, never trickled a
        # sliver -- a paused sender probes every RTT, so pausing *is* the
        # recovery path when capacity frees up again.
        min_useful = max(
            self.config.min_rate,
            self.config.crumb_fraction
            * min(requested, self.rate_controller.r_pdq),
        )
        if grant >= min_useful:
            window_open = (
                self.last_accept_fid not in (None, packet.fid)
                and (now - self.last_accept_time)
                < self.config.dampening_rtts * self.rtt_avg_value()
            )
            # Dampening suppresses redundant switching among peers; a flow
            # MORE critical than the one just accepted is a preemption and
            # must go through, or the most critical flow starves behind
            # admission races (§4's convergence argument assumes preemption
            # is never delayed).
            preempts = (
                self.config.dampening_preemption_exempt
                and self.last_accept_key is not None
                and entry.key < self.last_accept_key
            )
            dampened = (
                self.config.dampening
                and not entry.sending
                and window_open
                and not preempts
            )
            if dampened:
                header.pauseby = my_id
                header.rate = 0.0
                entry.pauseby = my_id
                self.pauses += 1
            else:
                # start the dampening window once per newly accepted flow; a
                # tentatively-accepted flow re-confirming every packet must
                # not keep resetting it, or it locks out more-critical
                # preempters indefinitely
                if not entry.sending and self.last_accept_fid != packet.fid:
                    self.last_accept_time = now
                    self.last_accept_fid = packet.fid
                    self.last_accept_key = entry.key
                header.pauseby = None
                header.rate = grant
                self.accepts += 1
        else:
            header.pauseby = my_id
            header.rate = 0.0
            entry.pauseby = my_id
            self.pauses += 1
            self._cancel_tentative_accept(packet.fid)

    def _cancel_tentative_accept(self, fid: int) -> None:
        """A flow this switch tentatively accepted turned out paused: close
        the dampening window it opened, or it blocks genuinely acceptable
        flows for nothing (phantom accepts on multi-hop paths otherwise
        stall convergence badly)."""
        if self.last_accept_fid == fid:
            self.last_accept_fid = None
            self.last_accept_time = -float("inf")
            self.last_accept_key = None

    def _rcp_fallback(self, fid: int, header: PdqHeader, now: float,
                      my_id: int) -> None:
        """Flows beyond the list get the leftover capacity, RCP-style
        (§3.3.1); zero leftover means pause. Leftover accounts for listed
        flows' reservations, not just committed rates -- a burst of listed
        but not-yet-committed flows still owns the link."""
        self.outside[fid] = now
        if now < self._outside_min:
            self._outside_min = now
        my_id_ = self.protocol.switch_id
        listed_rate = 0.0
        for entry in self.flows:
            if entry.pauseby is None and entry.rate > 0:
                listed_rate += entry.rate
            elif entry.pauseby in (None, my_id_):
                listed_rate += entry.requested
        leftover = max(0.0, self.capacity - listed_rate)
        share = leftover / max(1, len(self.outside))
        if share <= self.config.min_rate:
            header.pauseby = my_id
            header.rate = 0.0
            self.pauses += 1
        else:
            header.rate = min(header.rate, share)

    # -- Algorithm 3 ----------------------------------------------------------------------

    def on_reverse(self, packet: Packet) -> None:
        header: PdqHeader = packet.sched
        my_id = self.protocol.switch_id
        if (header.pauseby is not None and header.pauseby != my_id
                and self.flows.remove(packet.fid)):
            self.protocol.forget(packet.fid, self)
        if header.pauseby is not None:
            header.rate = 0.0  # a paused flow's committed rate is zero
            self._cancel_tentative_accept(packet.fid)
        entry = self.flows.get(packet.fid)
        if entry is None:
            return
        index = self.flows.index_of(packet.fid)
        entry.pauseby = header.pauseby
        if self.config.suppressed_probing:
            header.inter_probe = max(
                header.inter_probe, self.config.probing_x * index
            )
        entry.rate = header.rate

    # -- termination --------------------------------------------------------------------------

    def on_term(self, packet: Packet) -> None:
        if self.flows.remove(packet.fid):
            self.protocol.forget(packet.fid, self)
        self.outside.pop(packet.fid, None)
        if len(self.flows) == 0 and not self.outside:
            self.rate_controller.stop()


class PdqSwitchProtocol:
    """Per-switch PDQ protocol: routes packets to per-egress-link state and
    resolves reverse-path lookups (which forward link a flow's state lives
    on at this switch)."""

    def __init__(self, network: "Network", switch: "Switch", config: PdqConfig,
                 comparator: FlowComparator | None = None):
        self.net = network
        self.sim = network.sim
        self.switch_id = switch.id
        self.config = config
        self.comparator = comparator or FlowComparator()
        self._states: dict[int, PdqLinkState] = {}
        self._flow_index: dict[int, PdqLinkState] = {}

    # -- state registry --------------------------------------------------------------

    def state_for(self, link: Link) -> PdqLinkState:
        state = self._states.get(link.link_id)
        if state is None:
            state = PdqLinkState(self, link)
            self._states[link.link_id] = state
        return state

    def remember(self, fid: int, state: PdqLinkState) -> None:
        self._flow_index[fid] = state

    def forget(self, fid: int, state: PdqLinkState) -> None:
        if self._flow_index.get(fid) is state:
            del self._flow_index[fid]

    def flow_state(self, fid: int) -> PdqLinkState | None:
        return self._flow_index.get(fid)

    # -- packet dispatch ----------------------------------------------------------------

    def process(self, packet: Packet, out_link: Link) -> None:
        header = packet.sched
        if header.__class__ is not PdqHeader:
            return
        kind = packet.kind
        if kind in (PacketKind.SYN, PacketKind.DATA, PacketKind.PROBE):
            state = self._states.get(out_link.link_id)
            if state is None:
                state = self.state_for(out_link)
            state.on_forward(packet)
        elif kind == PacketKind.TERM:
            self.state_for(out_link).on_term(packet)
        elif kind in (PacketKind.SYN_ACK, PacketKind.ACK):
            state = self._flow_index.get(packet.fid)
            if state is not None:
                state.on_reverse(packet)
            elif header.pauseby is not None:
                # stateless part of Algorithm 3: a paused flow's rate is 0
                header.rate = 0.0
        # TERM_ACK needs no processing: TERM already cleaned up
