"""Exception hierarchy for the PDQ reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly."""


class TopologyError(ReproError):
    """Raised for malformed topology parameters or unreachable endpoints."""


class RoutingError(ReproError):
    """Raised when no route exists between two nodes."""


class ProtocolError(ReproError):
    """Raised on protocol state-machine violations (bugs, not packet loss)."""


class FlowListError(ProtocolError):
    """Raised when a per-link flow list is used inconsistently (e.g.
    popping from an empty list — a scheduling-logic bug, so it subclasses
    :class:`ProtocolError`)."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""


class ExperimentError(ReproError):
    """Raised when an experiment is configured inconsistently."""


class CampaignError(ExperimentError):
    """Raised for invalid scenario specs, cache corruption, or failed
    campaign runs (subclasses :class:`ExperimentError` so experiment-level
    callers can catch either)."""


class FaultError(CampaignError):
    """Raised for malformed fault schedules or loss rules, or for fault
    events naming links/switches the topology does not have (subclasses
    :class:`CampaignError`: a bad ``faults`` field is an invalid spec)."""
