"""Discrete-event simulation core.

A tiny, fast event engine: :class:`~repro.events.simulator.Simulator` keeps a
binary heap of timestamped callbacks; :class:`~repro.events.timers.Timer` and
:class:`~repro.events.timers.PeriodicTimer` provide cancellable one-shot and
repeating events on top of it.
"""

from repro.events.event import Event
from repro.events.simulator import Simulator
from repro.events.timers import PeriodicTimer, Timer

__all__ = ["Event", "Simulator", "Timer", "PeriodicTimer"]
