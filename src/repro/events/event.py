"""Event handle scheduled on a :class:`~repro.events.simulator.Simulator`."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any


class Event:
    """A cancellable scheduled callback.

    The simulator's heap is keyed by plain ``(time, seq)`` tuples (``seq``
    is unique, so comparisons never reach the payload and run at native
    tuple speed); an :class:`Event` is the *handle* riding in the entry,
    carrying ``(callback, args)`` plus the tombstone flag. Cancellation is
    O(1): the entry stays in the heap and is skipped (and eventually
    compacted away) by the simulator.

    Hot paths that never cancel should use
    :meth:`~repro.events.simulator.Simulator.call_after`, which skips the
    handle allocation entirely.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_cancel_hook")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple = ()):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # set by the owning Simulator so its live-event counter stays
        # exact without scanning the heap
        self._cancel_hook: Any = None

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._cancel_hook is not None:
            self._cancel_hook()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.seq}{state}>"
