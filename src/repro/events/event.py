"""Event handle scheduled on a :class:`~repro.events.simulator.Simulator`."""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``: ties in time fire in scheduling
    order, which makes simulations deterministic. Cancellation is O(1)
    (the heap entry is tombstoned and skipped when popped).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_cancel_hook")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # set by the owning Simulator so its live-event counter stays
        # exact without scanning the heap
        self._cancel_hook: Any = None

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._cancel_hook is not None:
            self._cancel_hook()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.seq}{state}>"
