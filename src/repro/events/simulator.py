"""The discrete-event simulator loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.events.event import Event


class Simulator:
    """Minimal discrete-event engine.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-3, lambda: print("fires at t=1ms"))
        sim.run(until=1.0)

    Invariants:

    * ``now`` is monotonically non-decreasing.
    * events scheduled at the same timestamp fire in the order scheduled.
    * scheduling into the past raises :class:`SimulationError`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.processed_events: int = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, self._seq, callback)
        event._cancel_hook = self._note_cancelled
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        self._live -= 1

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the heap drains, ``until`` passes, or
        ``max_events`` have fired.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        After returning because of ``until``, ``now`` equals ``until`` so a
        subsequent ``run`` resumes cleanly.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._live -= 1
                # a fired event is no longer live: a late cancel() (e.g. a
                # timer stopped from its own callback) must not decrement
                # the counter a second time
                event._cancel_hook = None
                self.now = event.time
                event.callback()
                fired += 1
                self.processed_events += 1
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # -- introspection ---------------------------------------------------------

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on schedule, cancel and pop."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if none are queued.

        Cancelled tombstones at the top of the heap are garbage-collected
        in passing; the set of live events is unchanged."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
