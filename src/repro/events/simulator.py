"""The discrete-event simulator loop.

The heap holds two entry shapes, both ordered by a native ``(time, seq)``
tuple prefix (``seq`` is unique, so comparisons never reach the payload):

* ``(time, seq, callback, args)`` -- the *typed fast path* used by
  :meth:`Simulator.call_after` / :meth:`Simulator.call_at`: no handle, no
  closure, not cancellable. Per-packet work (link transmissions, packet
  deliveries) schedules through this shape.
* ``(time, seq, event)`` -- a cancellable entry whose
  :class:`~repro.events.event.Event` handle carries ``(callback, args)``
  and the tombstone flag. Timers and any caller that keeps the return
  value of :meth:`Simulator.schedule` use this shape.

Cancelled entries stay in the heap as tombstones; when they exceed a
bounded fraction of the heap the simulator compacts them away in one
pass, so pathological cancel churn cannot bloat the heap.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError
from repro.events.event import Event

#: compaction never triggers below this many tombstones (small heaps are
#: cheap to scan anyway and the hysteresis keeps cancel() amortized O(1))
_COMPACT_MIN_TOMBSTONES = 64


class Simulator:
    """Minimal discrete-event engine.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-3, print, "fires at t=1ms")
        sim.run(until=1.0)

    Invariants:

    * ``now`` is monotonically non-decreasing.
    * events scheduled at the same timestamp fire in the order scheduled
      (fast-path and cancellable entries interleave in one sequence).
    * scheduling into the past raises :class:`SimulationError`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._live: int = 0
        self._tombstones: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self.processed_events: int = 0
        self.compactions: int = 0
        #: lazy Timer push-backs absorbed without touching the heap
        self.timer_pushbacks: int = 0

    # -- scheduling ----------------------------------------------------------

    # repro: hot
    def call_after(self, delay: float, callback: Callable[..., Any],
                   *args: Any) -> None:
        """Fast path: run ``callback(*args)`` ``delay`` seconds from now.

        No handle is returned and the call cannot be cancelled; in
        exchange, nothing is allocated beyond the heap tuple itself.
        """
        time = self.now + delay
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._live += 1
        heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    # repro: hot
    def call_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> None:
        """Fast path: run ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._live += 1
        heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now and
        return a cancellable :class:`Event` handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time`` and
        return a cancellable :class:`Event` handle."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, self._seq, callback, args)
        event._cancel_hook = self._note_cancelled
        self._live += 1
        heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._tombstones += 1
        # bounded compaction: tombstones may never exceed half the heap
        # (past the hysteresis floor), so cancel churn stays amortized O(1)
        # and the heap's memory stays proportional to live events
        if (self._tombstones >= _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled tombstone, wherever it sits in the heap."""
        heap = self._heap
        heap[:] = [
            entry for entry in heap
            if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(heap)
        self._tombstones = 0
        self.compactions += 1

    # -- execution -----------------------------------------------------------

    # repro: hot
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the heap drains, ``until`` passes, or
        ``max_events`` have fired.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        After returning because of ``until``, ``now`` equals ``until`` so a
        subsequent ``run`` resumes cleanly. After :meth:`stop`, ``now``
        stays at the stopping event's timestamp and a subsequent ``run``
        resumes from there.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        # hot loop: sentinel floats fold the None checks into one float
        # compare each, heappop binds locally, and the _stopped check sits
        # after event processing (it is reset above, so only a fired event
        # can set it -- checking at the bottom is equivalent and skips one
        # branch per iteration)
        fired = 0
        heap = self._heap
        pop = heappop
        until_v = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until_v or fired >= budget:
                    break
                pop(heap)
                try:
                    # typed fast path: (time, seq, callback, args). The
                    # IndexError probe replaces a len() call per event;
                    # cancellable 3-tuples take the exception path
                    args = entry[3]
                except IndexError:
                    event = entry[2]
                    if event.cancelled:
                        self._tombstones -= 1
                        continue
                    self._live -= 1
                    # a fired event is no longer live: a late cancel()
                    # (e.g. a timer stopped from its own callback) must
                    # not decrement the counter a second time
                    event._cancel_hook = None
                    self.now = time
                    event.callback(*event.args)
                else:
                    self._live -= 1
                    self.now = time
                    entry[2](*args)
                fired += 1
                self.processed_events += 1
                if self._stopped:
                    break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # -- introspection ---------------------------------------------------------

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on schedule, cancel and pop."""
        return self._live

    @property
    def cancelled_ratio(self) -> float:
        """Fraction of the heap that is cancelled tombstones right now.

        Bounded by the compaction rule at ~0.5 (plus the hysteresis
        floor); the bench harness records it as a heap-hygiene
        diagnostic."""
        return self._tombstones / len(self._heap) if self._heap else 0.0

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None if none are queued.

        Cancelled tombstones at the top of the heap are garbage-collected
        in passing; the set of live events is unchanged."""
        heap = self._heap
        while heap and len(heap[0]) == 3 and heap[0][2].cancelled:
            heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None
