"""Cancellable and restartable timers on top of the event heap.

Transport protocols need two recurring idioms:

* :class:`Timer` -- a one-shot timeout that is constantly pushed back
  (retransmission timers), restarted, or cancelled.
* :class:`PeriodicTimer` -- a repeating callback whose period can change
  between firings (PDQ's rate-controller update every 2 RTTs, probe timers
  whose interval is set by Suppressed Probing).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.events.event import Event
from repro.events.simulator import Simulator


class Timer:
    """One-shot, restartable timeout."""

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or None."""
        return self._event.time if self.armed else None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now, replacing any
        previously armed expiry."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTimer:
    """Repeating timer; the period may be changed at any time.

    The callback may call :meth:`stop` (or change :attr:`period`) and the
    change takes effect for the next firing.
    """

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], Any]):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, first_delay: Optional[float] = None) -> None:
        """Start firing; first firing after ``first_delay`` (default: one
        period)."""
        self.stop()
        self._running = True
        delay = self.period if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self.period, self._fire)
