"""Cancellable and restartable timers on top of the event heap.

Transport protocols need two recurring idioms:

* :class:`Timer` -- a one-shot timeout that is constantly pushed back
  (retransmission timers), restarted, or cancelled.
* :class:`PeriodicTimer` -- a repeating callback whose period can change
  between firings (PDQ's rate-controller update every 2 RTTs, probe timers
  whose interval is set by Suppressed Probing).

Retransmission timers are pushed back on nearly every ACK, so a naive
cancel-and-repush would churn the heap once per ACK. :class:`Timer`
instead keeps the *logical* expiry in a deferred-expiry field: pushing a
timer back just overwrites the field, and when the stale heap entry fires
it re-schedules itself at the real expiry -- one heap push per burst of
push-backs instead of one per push-back, and zero tombstones.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.events.event import Event
from repro.events.simulator import Simulator


class Timer:
    """One-shot, restartable timeout with lazy push-back."""

    __slots__ = ("_sim", "_callback", "_event", "_deadline")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        # the underlying heap entry may lag behind the logical deadline:
        # _event.time <= _deadline always holds while armed
        self._event: Event | None = None
        self._deadline: float | None = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def expiry(self) -> float | None:
        """Absolute time at which the timer will fire, or None."""
        return self._deadline

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now, replacing any
        previously armed expiry.

        Pushing the expiry *back* (the retransmission-timer common case)
        only updates the deadline field; the heap is untouched until the
        stale entry fires and re-schedules itself at the real expiry.
        Pulling the expiry *earlier* cancels and re-pushes.
        """
        at = self._sim.now + delay
        event = self._event
        if event is not None and not event.cancelled and event.time <= at:
            self._deadline = at  # lazy push-back: no heap traffic
            self._sim.timer_pushbacks += 1
            return
        if event is not None:
            event.cancel()
        self._deadline = at
        self._event = self._sim.schedule_at(at, self._fire)

    def cancel(self) -> None:
        self._deadline = None
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is None:  # cancelled; stale entry only (defensive)
            self._event = None
            return
        if deadline > self._sim.now:
            # the expiry was pushed back since this entry was scheduled:
            # chase the real deadline with one fresh entry
            self._event = self._sim.schedule_at(deadline, self._fire)
            return
        self._event = None
        self._deadline = None
        self._callback()


class PeriodicTimer:
    """Repeating timer; the period may be changed at any time.

    The callback may call :meth:`stop`, :meth:`start` (restarting the
    cadence from the moment of the call) or change :attr:`period`, and
    the change takes effect for the next firing.
    """

    __slots__ = ("_sim", "period", "_callback", "_event", "_running", "_epoch")

    def __init__(self, sim: Simulator, period: float, callback: Callable[[], Any]):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: Event | None = None
        self._running = False
        # bumped by every start()/stop(): _fire only re-schedules if the
        # callback did not itself restart the timer mid-fire (a restart
        # used to be silently overwritten, leaving a duplicate event)
        self._epoch = 0

    @property
    def running(self) -> bool:
        return self._running

    def start(self, first_delay: float | None = None) -> None:
        """Start firing; first firing after ``first_delay`` (default: one
        period)."""
        self.stop()
        self._running = True
        self._epoch += 1
        delay = self.period if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        self._epoch += 1
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        epoch = self._epoch
        self._callback()
        if self._running and self._epoch == epoch:
            self._event = self._sim.schedule(self.period, self._fire)
