"""Experiment harness: one module per paper figure.

Each ``figN`` module exposes ``run_*`` functions that regenerate the
corresponding figure's rows/series at configurable scale (benchmarks use
reduced defaults; paper-scale parameters are documented per function) and
return plain dictionaries the benchmark layer formats into tables.
"""

from repro.experiments.scenario import (
    available_protocols,
    execute_spec,
    make_stack,
    run_flow_level,
    run_packet_level,
)
from repro.experiments.search import binary_search_max

__all__ = [
    "available_protocols",
    "execute_spec",
    "make_stack",
    "run_packet_level",
    "run_flow_level",
    "binary_search_max",
]
