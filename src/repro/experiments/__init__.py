"""Experiment harness: the declarative Experiment API plus one module
per paper figure.

:mod:`repro.experiments.api` defines the surface — :class:`Panel`
(scenario grid + optional search directive + named reducer),
:class:`Experiment` (an ordered set of panels), and the registries that
resolve experiments, reducers, and custom panel runners by name. Each
``figN`` module declares its figure as an Experiment and keeps thin
``run_*`` wrappers with the historical signatures; user-authored JSON
experiment files load through :func:`load_experiment_file` (the
``python -m repro run-spec`` subcommand).
"""

from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    experiment_kinds,
    figure_numbers,
    get_experiment,
    load_experiment,
    load_experiment_file,
    register_experiment,
    register_panel_runner,
    run_experiment,
    run_panel,
    validate_experiment,
)
from repro.experiments.reducers import (
    collector_metric,
    get_reducer,
    metric_kinds,
    reducer_kinds,
    register_metric,
    register_reducer,
)
from repro.experiments.scenario import (
    available_protocols,
    execute_spec,
    make_stack,
    run_flow_level,
    run_packet_level,
)
from repro.experiments.search import binary_search_max

__all__ = [
    "Experiment",
    "Panel",
    "SearchSpec",
    "available_protocols",
    "binary_search_max",
    "collector_metric",
    "execute_spec",
    "experiment_kinds",
    "figure_numbers",
    "get_experiment",
    "get_reducer",
    "load_experiment",
    "load_experiment_file",
    "make_stack",
    "metric_kinds",
    "reducer_kinds",
    "register_experiment",
    "register_metric",
    "register_panel_runner",
    "register_reducer",
    "run_experiment",
    "run_flow_level",
    "run_packet_level",
    "run_panel",
    "validate_experiment",
]
