"""Declarative experiment surface: Panels, Experiments, and registries.

The paper's evaluation is a matrix of scenario grids reduced to
per-panel curves. This module makes that matrix *data*:

* a :class:`Panel` declares one figure panel — a scenario grid (a base
  :class:`~repro.campaign.spec.ScenarioSpec` plus named axes, expanded
  through the campaign layer's :func:`~repro.campaign.spec.expand_cells`
  / :func:`~repro.campaign.spec.expand_grid` machinery), an optional
  :class:`SearchSpec` directive (the paper's §5.2.1 "maximal load at
  99 % application throughput" binary search), and a named *reducer*
  (see :mod:`repro.experiments.reducers`) that turns the executed
  collectors into the panel's rows;
* an :class:`Experiment` is an ordered set of panels with metadata;
* registries resolve experiments (``fig3`` … ``fig12``, ``validate``)
  and custom panel runners by name, exactly like topology/workload
  kinds in :mod:`repro.campaign.registry`.

Panels that cannot be expressed as a scenario grid (fig 1's analytic
motivation, fig 6/7's in-run monitors, fig 9's seed-coupled loss
tuples) register a *panel runner* — an escape hatch that keeps them on
the same Experiment surface with full provenance.

Experiments canonicalize to sorted-key JSON with a stable SHA-256
``key`` (pinned by tests, like scenario keys), load from user-authored
JSON files (``python -m repro run-spec FILE.json``), and execute
through the ambient campaign runner — so user-defined studies get grid
expansion, process fan-out, and result caching with zero new code.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.campaign.context import run_scenarios
from repro.campaign.spec import (
    ScenarioSpec,
    _axis_cells,
    canonical_json,
    expand_cells,
    is_labeled_cell,
)
from repro.errors import CampaignError, ExperimentError
from repro.experiments.reducers import collector_metric, get_reducer
from repro.experiments.search import binary_search_max
from repro.metrics.collector import MetricsCollector
from repro.utils.stats import mean


def _check_fields(what: str, data: Mapping[str, Any],
                  allowed: Sequence[str]) -> None:
    """Spec files are validated strictly: a misspelled field would
    otherwise be silently dropped and its directive never applied."""
    import difflib

    unknown = sorted(set(data) - set(allowed))
    if unknown:
        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, allowed, n=1, cutoff=0.6)
            if close:
                hints.append(f"{name!r} (did you mean {close[0]!r}?)")
            else:
                hints.append(repr(name))
        raise CampaignError(
            f"{what}: unknown field(s) {', '.join(hints)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _axes_tuple(axes: Any) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    """Normalize an axes declaration (mapping or pair sequence, values
    possibly JSON lists) into the hashable stored form."""
    pairs = axes.items() if isinstance(axes, Mapping) else axes
    out = []
    for name, values in pairs:
        if not isinstance(name, str):
            raise CampaignError(f"axis names must be strings, got {name!r}")
        normalized = []
        for value in values:
            if isinstance(value, list):
                value = tuple(value)
            if is_labeled_cell(value):
                value = (value[0], dict(value[1]))
            normalized.append(value)
        out.append((name, tuple(normalized)))
    return tuple(out)


@dataclass(frozen=True)
class SearchSpec:
    """Declarative "maximal load meeting a target" directive (§5.2.1).

    For every grid cell the executor binary-searches the largest integer
    ``n`` in ``[lo, hi]`` for which the mean of ``metric`` over the
    ``seeds`` replicas — each run with the cell's spec and the search
    ``axis`` set to ``n`` (times ``scale`` when given, for axes like
    arrival rates that move in steps) — stays at or above ``target``.
    The reported value is ``n * scale``. ``grow=False`` caps the answer
    at ``hi`` instead of growing the bracket geometrically.

    ``require_deadlines`` makes a probe pass trivially when its built
    workload contains no deadline-constrained flow (fig 5a's guard: with
    nothing to miss, the throughput target is met by definition).
    """

    axis: str
    target: float = 0.99
    metric: str = "application_throughput"
    seeds: tuple[int, ...] = (1,)
    lo: int = 1
    hi: int = 64
    grow: bool = True
    scale: float | None = None
    require_deadlines: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(self.seeds))

    def canonical(self) -> dict[str, Any]:
        return {
            "axis": self.axis,
            "target": self.target,
            "metric": self.metric,
            "seeds": list(self.seeds),
            "lo": self.lo,
            "hi": self.hi,
            "grow": self.grow,
            "scale": self.scale,
            "require_deadlines": self.require_deadlines,
        }

    _FIELDS = ("axis", "target", "metric", "seeds", "lo", "hi", "grow",
               "scale", "require_deadlines")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        _check_fields("search directive", data, cls._FIELDS)
        known = {f: data[f] for f in cls._FIELDS if f in data}
        if "axis" not in known:
            raise CampaignError("search directive needs an 'axis'")
        return cls(**known)


@dataclass(frozen=True)
class Panel:
    """One declarative figure panel.

    Exactly one execution shape applies:

    * *grid* — ``base`` + ``axes`` (or explicit ``specs``) expanded into
      scenarios, executed through the ambient campaign runner, and
      reduced by the registered ``reducer``;
    * *search* — ``base`` + ``axes`` for the outer cells plus a
      :class:`SearchSpec` run per cell; the reducer shapes the found
      values;
    * *custom* — a registered panel ``runner`` called with ``params``
      (for panels that need in-run instrumentation the grid model cannot
      express).

    ``exclude`` drops grid cells whose axis display values match any of
    the given mappings (fig 8's "TCP has no flow-level model" hole).
    ``wraps``/``wraps_kwargs`` record the public wrapper function for
    provenance and CLI listings; they do not affect the content hash.
    """

    name: str
    title: str = ""
    base: ScenarioSpec | None = None
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    specs: tuple[ScenarioSpec, ...] | None = None
    exclude: tuple[Mapping[str, Any], ...] = ()
    search: SearchSpec | None = None
    reducer: str | None = None
    reducer_params: Mapping[str, Any] = field(default_factory=dict)
    runner: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    wraps: str = ""
    wraps_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", _axes_tuple(self.axes))
        if self.specs is not None:
            object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "exclude",
                           tuple(dict(e) for e in self.exclude))
        object.__setattr__(self, "reducer_params", dict(self.reducer_params))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "wraps_kwargs", dict(self.wraps_kwargs))
        if self.runner is not None:
            if (self.base is not None or self.specs is not None
                    or self.search is not None):
                raise CampaignError(
                    f"panel {self.name!r}: a custom runner panel declares "
                    "no grid or search"
                )
            if self.reducer is not None or self.reducer_params:
                raise CampaignError(
                    f"panel {self.name!r}: a custom runner returns its "
                    "result directly; reducer/reducer_params would be "
                    "silently ignored"
                )
        elif self.search is not None:
            if self.base is None or self.specs is not None:
                raise CampaignError(
                    f"panel {self.name!r}: a search panel needs a base "
                    "spec (and no explicit spec list)"
                )
        elif self.base is None and self.specs is None:
            raise CampaignError(
                f"panel {self.name!r}: declare a grid (base/specs), a "
                "search, or a custom runner"
            )
        if self.exclude:
            if self.specs is not None:
                raise CampaignError(
                    f"panel {self.name!r}: exclude rules only apply to "
                    "base+axes grids, not explicit spec lists"
                )
            axis_names = {name for name, _ in self.axes}
            for rule in self.exclude:
                unknown = sorted(set(rule) - axis_names)
                if unknown:
                    raise CampaignError(
                        f"panel {self.name!r}: exclude rule names unknown "
                        f"axis(es) {unknown}; declared axes: "
                        f"{sorted(axis_names)}"
                    )

    @property
    def kind(self) -> str:
        if self.runner is not None:
            return "custom"
        return "search" if self.search is not None else "grid"

    # -- grid expansion -----------------------------------------------------------

    def cells(self) -> list[tuple[dict[str, Any], ScenarioSpec]]:
        """``(combo, spec)`` grid cells; for search panels these are the
        outer cells the directive runs once per."""
        if self.runner is not None:
            raise CampaignError(
                f"panel {self.name!r} is a custom panel; it has no grid"
            )
        if self.specs is not None:
            return [({}, spec) for spec in self.specs]
        cells = expand_cells(self.base, dict(self.axes))
        if self.exclude:
            cells = [
                (combo, spec) for combo, spec in cells
                if not any(
                    all(combo.get(k) == v for k, v in rule.items())
                    for rule in self.exclude
                )
            ]
        return cells

    def expand(self) -> list[ScenarioSpec]:
        return [spec for _, spec in self.cells()]

    # -- identity -----------------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.canonical() if self.base else None,
            "axes": [[name, list(values)] for name, values in self.axes],
            "specs": ([s.canonical() for s in self.specs]
                      if self.specs is not None else None),
            "exclude": [dict(e) for e in self.exclude],
            "search": self.search.canonical() if self.search else None,
            "reducer": self.reducer,
            "reducer_params": dict(self.reducer_params),
            "runner": self.runner,
            "params": dict(self.params),
        }

    @property
    def key(self) -> str:
        """Stable content hash of the canonical form."""
        text = canonical_json(self.canonical())
        return hashlib.sha256(text.encode()).hexdigest()

    def __hash__(self) -> int:
        return hash(self.key)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Panel":
        _check_fields(
            f"panel {data.get('name', '?')!r}", data,
            ("name", "title", "base", "axes", "specs", "exclude",
             "search", "reducer", "reducer_params", "runner", "params"),
        )
        if "name" not in data:
            raise CampaignError("every panel needs a 'name'")
        base = data.get("base")
        specs = data.get("specs")
        search = data.get("search")
        return cls(
            name=data["name"],
            title=data.get("title", ""),
            base=ScenarioSpec.from_dict(base) if base is not None else None,
            axes=data.get("axes", ()),
            specs=(tuple(ScenarioSpec.from_dict(s) for s in specs)
                   if specs is not None else None),
            exclude=tuple(data.get("exclude", ())),
            search=(SearchSpec.from_dict(search)
                    if search is not None else None),
            reducer=data.get("reducer"),
            reducer_params=data.get("reducer_params", {}),
            runner=data.get("runner"),
            params=data.get("params", {}),
        )


@dataclass(frozen=True)
class Experiment:
    """An ordered set of panels plus metadata — one declared study."""

    name: str
    title: str = ""
    panels: tuple[Panel, ...] = ()
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "panels", tuple(self.panels))
        object.__setattr__(self, "meta", dict(self.meta))
        if not self.panels:
            raise CampaignError(f"experiment {self.name!r} has no panels")
        names = [p.name for p in self.panels]
        if len(set(names)) != len(names):
            raise CampaignError(
                f"experiment {self.name!r} has duplicate panel names"
            )

    def panel(self, name: str) -> Panel:
        for panel in self.panels:
            if panel.name == name:
                return panel
        raise CampaignError(
            f"experiment {self.name!r} has no panel {name!r}; panels: "
            f"{[p.name for p in self.panels]}"
        )

    def canonical(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "panels": [p.canonical() for p in self.panels],
            "meta": dict(self.meta),
        }

    @property
    def key(self) -> str:
        text = canonical_json(self.canonical())
        return hashlib.sha256(text.encode()).hexdigest()

    def __hash__(self) -> int:
        return hash(self.key)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Experiment":
        _check_fields("experiment", data,
                      ("name", "experiment", "title", "panels", "meta"))
        name = data.get("name") or data.get("experiment")
        if not name:
            raise CampaignError(
                "an experiment file needs a 'name' (or 'experiment') field"
            )
        panels = data.get("panels")
        if not panels:
            raise CampaignError(f"experiment {name!r} declares no panels")
        return cls(
            name=name,
            title=data.get("title", ""),
            panels=tuple(Panel.from_dict(p) for p in panels),
            meta=data.get("meta", {}),
        )


# -- execution ----------------------------------------------------------------------


@dataclass
class PanelRun:
    """One executed panel, handed to its reducer.

    ``rows`` holds ``(combo, spec, collector)`` per grid cell (in grid
    order); ``found`` holds ``(combo, value)`` per search cell. Custom
    panels never build a PanelRun.
    """

    panel: Panel
    rows: list[tuple[dict[str, Any], ScenarioSpec, MetricsCollector]] = (
        field(default_factory=list))
    found: list[tuple[dict[str, Any], Any]] | None = None

    def axis_names(self) -> list[str]:
        return [name for name, _ in self.panel.axes]

    def axis_values(self, name: str) -> list[Any]:
        """The display values declared for one axis, in order."""
        for axis, values in self.panel.axes:
            if axis == name:
                return [display for display, _ in _axis_cells(axis, values)]
        raise ExperimentError(
            f"panel {self.panel.name!r} has no axis {name!r}; "
            f"axes: {self.axis_names()}"
        )

    def cell_values(self, by: Sequence[str],
                    metric: str | None) -> dict[tuple[Any, ...], Any]:
        """Group results ``by`` axes (first-seen order) and average the
        grouped-out replicas: the named ``metric`` per collector for grid
        panels, the searched value for search panels."""
        by = list(by)
        groups: dict[tuple[Any, ...], list[Any]] = {}

        def cell_of(combo: dict[str, Any]) -> tuple[Any, ...]:
            try:
                return tuple(combo[a] for a in by)
            except KeyError as exc:
                raise ExperimentError(
                    f"panel {self.panel.name!r} has no axis {exc.args[0]!r};"
                    f" axes: {self.axis_names()}"
                ) from None

        if self.found is not None:
            for combo, value in self.found:
                groups.setdefault(cell_of(combo), []).append(value)
        else:
            if metric is None:
                raise ExperimentError("grid panels need a metric to reduce")
            fn = collector_metric(metric)
            for combo, _spec, collector in self.rows:
                groups.setdefault(cell_of(combo), []).append(fn(collector))
        return {
            cell: values[0] if len(values) == 1 else mean(values)
            for cell, values in groups.items()
        }


def _workload_has_deadlines(spec: ScenarioSpec) -> bool:
    topology = spec.topology.build()
    flows = spec.workload.build(topology, spec.seed)
    return any(f.has_deadline for f in flows)


def _run_grid(panel: Panel) -> PanelRun:
    cells = panel.cells()
    collectors = run_scenarios([spec for _, spec in cells])
    return PanelRun(panel, rows=[
        (combo, spec, collector)
        for (combo, spec), collector in zip(cells, collectors, strict=True)
    ])


def _run_search(panel: Panel) -> PanelRun:
    search = panel.search
    metric = collector_metric(search.metric)
    found: list[tuple[dict[str, Any], Any]] = []
    for combo, cell_base in panel.cells():

        def meets_target(n: int, _base: ScenarioSpec = cell_base) -> bool:
            value = n if search.scale is None else n * search.scale
            probe_specs = []
            for seed in search.seeds:
                spec = _base.with_(seed=seed, **{search.axis: value})
                if search.require_deadlines and \
                        not _workload_has_deadlines(spec):
                    return True
                probe_specs.append(spec)
            measured = [metric(c) for c in run_scenarios(probe_specs)]
            return mean(measured) >= search.target

        best = binary_search_max(meets_target, lo=search.lo, hi=search.hi,
                                 grow=search.grow)
        found.append(
            (combo, best if search.scale is None else best * search.scale)
        )
    return PanelRun(panel, found=found)


def run_panel(panel: Panel) -> Any:
    """Execute one panel through the ambient campaign runner and return
    its reduced result (custom panels return their runner's result)."""
    if panel.runner is not None:
        return panel_runner(panel.runner)(**dict(panel.params))
    run = _run_search(panel) if panel.search is not None else _run_grid(panel)
    reducer = get_reducer(panel.reducer or "table")
    return reducer(run, **dict(panel.reducer_params))


def run_experiment(experiment: Experiment) -> dict[str, Any]:
    """Run every panel in order; results keyed by panel name."""
    return {panel.name: run_panel(panel) for panel in experiment.panels}


# -- registries ---------------------------------------------------------------------

_PANEL_RUNNERS: dict[str, Callable[..., Any]] = {}
_EXPERIMENTS: dict[str, Experiment] = {}

_modules_loaded = False


def load_experiment_modules() -> None:
    """Import every module that registers experiment-surface kinds
    (the one module list lives in :mod:`repro.campaign.registry`;
    loaded lazily on first registry miss — importing here would cycle).
    """
    from repro.campaign.registry import EXPERIMENT_MODULES

    global _modules_loaded
    if _modules_loaded:
        return
    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)
    # only after every import succeeded: a transient failure must surface
    # again on the next call, not decay into "unknown kind"
    _modules_loaded = True


def register_panel_runner(name: str) -> Callable:
    """Decorator: register a custom panel runner under ``name``."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        _PANEL_RUNNERS[name] = fn
        return fn

    return decorate


def panel_runner_kinds() -> list[str]:
    load_experiment_modules()
    return sorted(_PANEL_RUNNERS)


def panel_runner(name: str) -> Callable[..., Any]:
    fn = _PANEL_RUNNERS.get(name)
    if fn is None:
        load_experiment_modules()
        fn = _PANEL_RUNNERS.get(name)
    if fn is None:
        from repro.campaign.registry import unknown_kind

        raise unknown_kind("panel runner", name, panel_runner_kinds())
    return fn


def bind_runner_params(runner: Callable[..., Any], args: Sequence[Any],
                       kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Map a wrapper call's positional/keyword arguments onto a panel
    runner's named parameters (``Panel.params`` is a mapping, so custom
    panels would otherwise lose positional-call compatibility).
    Unfilled parameters stay absent, leaving the runner's defaults in
    charge."""
    import inspect

    bound = inspect.signature(runner).bind_partial(*args, **kwargs)
    return dict(bound.arguments)


def register_experiment(experiment: Experiment) -> Experiment:
    """Register a declared experiment under its name (latest wins)."""
    _EXPERIMENTS[experiment.name] = experiment
    return experiment


def experiment_kinds() -> list[str]:
    load_experiment_modules()
    return sorted(_EXPERIMENTS)


def get_experiment(name: str) -> Experiment:
    experiment = _EXPERIMENTS.get(name)
    if experiment is None:
        load_experiment_modules()
        experiment = _EXPERIMENTS.get(name)
    if experiment is None:
        from repro.campaign.registry import unknown_kind

        raise unknown_kind("experiment", name, experiment_kinds())
    return experiment


def figure_numbers() -> list[int]:
    """The registered paper-figure numbers (``figN`` experiments)."""
    numbers = []
    for name in experiment_kinds():
        if name.startswith("fig") and name[3:].isdigit():
            numbers.append(int(name[3:]))
    return sorted(numbers)


# -- user-authored experiment files -------------------------------------------------


def load_experiment(data: Mapping[str, Any]) -> Experiment:
    """Build an Experiment from plain data (a parsed spec file)."""
    return Experiment.from_dict(data)


def load_experiment_file(path: str) -> Experiment:
    """Load and parse a user-authored JSON experiment file."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise CampaignError(f"cannot read experiment file {path}: {exc}") from exc
    except ValueError as exc:
        raise CampaignError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, Mapping):
        raise CampaignError(f"{path}: top level must be a JSON object")
    return load_experiment(data)


def validate_experiment(experiment: Experiment) -> int:
    """Resolve every name a declared experiment references — reducers,
    metrics, panel runners, topology/workload/engine kinds — and expand
    its grids, without executing anything. Returns the number of
    scenarios a (non-search) full run would submit. Raises
    :class:`CampaignError` with a close-match hint on the first unknown
    kind, which makes it the ``run-spec --dry-run`` schema check."""
    from repro.campaign.registry import validate_spec_kinds

    n_scenarios = 0
    for panel in experiment.panels:
        if panel.runner is not None:
            panel_runner(panel.runner)
            continue
        get_reducer(panel.reducer or "table")
        cells = panel.cells()
        for _combo, spec in cells:
            validate_spec_kinds(spec)
        if panel.search is not None:
            search = panel.search
            collector_metric(search.metric)
            if cells:
                probe = search.lo if search.scale is None \
                    else search.lo * search.scale
                # prove the search axis is assignable on this grid
                cells[0][1].with_(seed=search.seeds[0],
                                  **{search.axis: probe})
        else:
            n_scenarios += len(cells)
    return n_scenarios
