"""Fig 1: the motivating example.

Three flows (sizes 1/2/3, deadlines 1/4/6) on a unit bottleneck under fair
sharing, SJF/EDF and D3 with every arrival order. Pure fluid arithmetic —
no scenario grid — so it registers a custom panel runner on the
Experiment API surface.
"""

from __future__ import annotations

import itertools

from repro.experiments.api import (
    Experiment,
    Panel,
    register_experiment,
    register_panel_runner,
    run_panel,
)
from repro.sched.fluid import (
    d3_fluid_schedule,
    deadline_misses,
    fair_sharing_completions,
    serial_completions,
)

SIZES = [1.0, 2.0, 3.0]
DEADLINES = [1.0, 4.0, 6.0]


@register_panel_runner("fig1.motivation")
def _run_motivation() -> dict[str, object]:
    fair = fair_sharing_completions(SIZES)
    sjf = serial_completions(SIZES, [0, 1, 2])
    fair_misses = deadline_misses(dict(enumerate(fair)), DEADLINES)
    edf_misses = deadline_misses(dict(enumerate(sjf)), DEADLINES)

    d3_results: list[dict[str, object]] = []
    failing_orders = 0
    flows = list(zip(SIZES, DEADLINES, strict=True))
    for order in itertools.permutations(range(3)):
        completions = d3_fluid_schedule(flows, order)
        misses = deadline_misses(completions, DEADLINES)
        if misses > 0:
            failing_orders += 1
        d3_results.append({"order": order, "misses": misses})

    return {
        "fair_sharing_completions": fair,
        "fair_sharing_mean": sum(fair) / len(fair),
        "sjf_completions": sjf,
        "sjf_mean": sum(sjf) / len(sjf),
        "fair_sharing_deadline_misses": fair_misses,
        "edf_deadline_misses": edf_misses,
        "d3_orders": d3_results,
        "d3_failing_orders": failing_orders,
        "paper": {
            "fair_sharing_completions": [3.0, 5.0, 6.0],
            "fair_sharing_mean": 4.67,
            "sjf_completions": [1.0, 3.0, 6.0],
            "sjf_mean": 3.33,
            "edf_deadline_misses": 0,
            "d3_failing_orders": 5,
        },
    }


def fig1_panel() -> Panel:
    return Panel(
        name="fig1",
        title="the motivating example (fluid arithmetic, no simulation)",
        runner="fig1.motivation",
        wraps="repro.experiments.fig1:run",
    )


def run() -> dict[str, object]:
    """Regenerate every number quoted in §2.1."""
    return run_panel(fig1_panel())


register_experiment(Experiment(
    name="fig1",
    title="the motivating example",
    panels=(fig1_panel(),),
))
