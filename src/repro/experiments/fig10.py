"""Fig 10: resilience to inaccurate flow information (flow level).

Query aggregation, 10 deadline-unconstrained flows, mean size 100 KB,
uniform and Pareto(1.1) size distributions. Schemes:

* PDQ with perfect flow information (the default comparator),
* PDQ with Random criticality (chosen at flow start, kept consistent),
* PDQ with Flow Size Estimation (criticality = bytes sent, updated every
  50 KB),
* RCP as the fair-sharing reference.

The scheme axis is a *labeled* grid axis (each label bundles a protocol
with its engine options), reduced by the generic ``series`` reducer.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    register_experiment,
    run_panel,
)
from repro.units import KBYTE
from repro.utils.rng import spawn_rng
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import pareto_sizes, uniform_sizes

SCHEMES = ("PDQ perfect", "PDQ random", "PDQ estimation", "RCP")
N_SENDERS = 10
TOPOLOGY = TopologySpec("single_bottleneck", {"n_senders": N_SENDERS})

#: scheme name -> spec-axis assignments (protocol + engine options)
_SCHEME_AXES = {
    "PDQ perfect": {"protocol": "PDQ(Full)"},
    "PDQ random": {"protocol": "PDQ(Full)",
                   "options.criticality_mode": "random"},
    "PDQ estimation": {"protocol": "PDQ(Full)",
                       "options.criticality_mode": "estimate"},
    "RCP": {"protocol": "RCP"},
}


def _workload(dist: str, n_flows: int, seed: int,
              mean_size: float) -> list[FlowSpec]:
    rng = spawn_rng(seed, f"fig10:{dist}")
    if dist == "uniform":
        sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    elif dist == "pareto":
        sizes = pareto_sizes(n_flows, mean_size, rng=rng, tail_index=1.1)
    else:
        raise ValueError(f"unknown distribution {dist!r}")
    senders = [f"send{i}" for i in range(N_SENDERS)]
    return aggregation_flows(senders, "recv", sizes, rng=rng)


@register_workload("fig10.aggregation")
def _build_workload(topology, seed: int, dist: str, n_flows: int,
                    mean_size: float) -> list[FlowSpec]:
    return _workload(dist, n_flows, seed, mean_size)


def _scheme_axis(schemes: Sequence[str]) -> tuple:
    cells = []
    for scheme in schemes:
        try:
            cells.append((scheme, _SCHEME_AXES[scheme]))
        except KeyError:
            raise ValueError(f"unknown scheme {scheme!r}") from None
    return tuple(cells)


def fig10_panel(distributions: Sequence[str] = ("uniform", "pareto"),
                schemes: Sequence[str] = SCHEMES,
                seeds: Sequence[int] = tuple(range(1, 9)),
                n_flows: int = 10,
                mean_size: float = 100 * KBYTE) -> Panel:
    return Panel(
        name="fig10",
        title="mean FCT per scheme under inaccurate flow information",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig10.aggregation", {
                "dist": distributions[0],
                "n_flows": n_flows,
                "mean_size": mean_size,
            }),
            engine="flow",
        ),
        axes=(("workload.dist", tuple(distributions)),
              ("scheme", _scheme_axis(schemes)),
              ("seed", tuple(seeds))),
        reducer="series",
        reducer_params={"series": "workload.dist", "x": "scheme",
                        "metric": "mean_fct"},
        wraps="repro.experiments.fig10:run_fig10",
    )


def run_fig10(*args, **kwargs) -> dict[str, dict[str, float]]:
    """Mean FCT (seconds) per scheme per size distribution."""
    return run_panel(fig10_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig10",
    title="resilience to inaccurate flow information",
    panels=(fig10_panel(),),
))
