"""Fig 10: resilience to inaccurate flow information (flow level).

Query aggregation, 10 deadline-unconstrained flows, mean size 100 KB,
uniform and Pareto(1.1) size distributions. Schemes:

* PDQ with perfect flow information (the default comparator),
* PDQ with Random criticality (chosen at flow start, kept consistent),
* PDQ with Flow Size Estimation (criticality = bytes sent, updated every
  50 KB),
* RCP as the fair-sharing reference.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.scenario import run_flow_level
from repro.topology.single_bottleneck import SingleBottleneck
from repro.units import KBYTE
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import pareto_sizes, uniform_sizes

SCHEMES = ("PDQ perfect", "PDQ random", "PDQ estimation", "RCP")
N_SENDERS = 10


def _workload(dist: str, n_flows: int, seed: int,
              mean_size: float) -> List[FlowSpec]:
    rng = spawn_rng(seed, f"fig10:{dist}")
    if dist == "uniform":
        sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    elif dist == "pareto":
        sizes = pareto_sizes(n_flows, mean_size, rng=rng, tail_index=1.1)
    else:
        raise ValueError(f"unknown distribution {dist!r}")
    senders = [f"send{i}" for i in range(N_SENDERS)]
    return aggregation_flows(senders, "recv", sizes, rng=rng)


def _run_scheme(scheme: str, flows: Sequence[FlowSpec]) -> float:
    topo = SingleBottleneck(N_SENDERS)
    if scheme == "PDQ perfect":
        metrics = run_flow_level(topo, "PDQ(Full)", flows)
    elif scheme == "PDQ random":
        metrics = run_flow_level(topo, "PDQ(Full)", flows,
                                 criticality_mode="random")
    elif scheme == "PDQ estimation":
        metrics = run_flow_level(topo, "PDQ(Full)", flows,
                                 criticality_mode="estimate")
    elif scheme == "RCP":
        metrics = run_flow_level(topo, "RCP", flows)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return metrics.mean_fct()


def run_fig10(distributions: Sequence[str] = ("uniform", "pareto"),
              schemes: Sequence[str] = SCHEMES,
              seeds: Sequence[int] = tuple(range(1, 9)),
              n_flows: int = 10,
              mean_size: float = 100 * KBYTE) -> Dict[str, Dict[str, float]]:
    """Mean FCT (seconds) per scheme per size distribution."""
    results: Dict[str, Dict[str, float]] = {}
    for dist in distributions:
        results[dist] = {}
        for scheme in schemes:
            results[dist][scheme] = mean(
                _run_scheme(scheme, _workload(dist, n_flows, s, mean_size))
                for s in seeds
            )
    return results
