"""Fig 10: resilience to inaccurate flow information (flow level).

Query aggregation, 10 deadline-unconstrained flows, mean size 100 KB,
uniform and Pareto(1.1) size distributions. Schemes:

* PDQ with perfect flow information (the default comparator),
* PDQ with Random criticality (chosen at flow start, kept consistent),
* PDQ with Flow Size Estimation (criticality = bytes sent, updated every
  50 KB),
* RCP as the fair-sharing reference.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.units import KBYTE
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import pareto_sizes, uniform_sizes

SCHEMES = ("PDQ perfect", "PDQ random", "PDQ estimation", "RCP")
N_SENDERS = 10
TOPOLOGY = TopologySpec("single_bottleneck", {"n_senders": N_SENDERS})

#: scheme name -> (protocol, engine options)
_SCHEME_RUNS = {
    "PDQ perfect": ("PDQ(Full)", {}),
    "PDQ random": ("PDQ(Full)", {"criticality_mode": "random"}),
    "PDQ estimation": ("PDQ(Full)", {"criticality_mode": "estimate"}),
    "RCP": ("RCP", {}),
}


def _workload(dist: str, n_flows: int, seed: int,
              mean_size: float) -> List[FlowSpec]:
    rng = spawn_rng(seed, f"fig10:{dist}")
    if dist == "uniform":
        sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    elif dist == "pareto":
        sizes = pareto_sizes(n_flows, mean_size, rng=rng, tail_index=1.1)
    else:
        raise ValueError(f"unknown distribution {dist!r}")
    senders = [f"send{i}" for i in range(N_SENDERS)]
    return aggregation_flows(senders, "recv", sizes, rng=rng)


@register_workload("fig10.aggregation")
def _build_workload(topology, seed: int, dist: str, n_flows: int,
                    mean_size: float) -> List[FlowSpec]:
    return _workload(dist, n_flows, seed, mean_size)


def _scheme_spec(scheme: str, dist: str, n_flows: int, seed: int,
                 mean_size: float) -> ScenarioSpec:
    try:
        protocol, options = _SCHEME_RUNS[scheme]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme!r}") from None
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig10.aggregation", {
            "dist": dist,
            "n_flows": n_flows,
            "mean_size": mean_size,
        }),
        engine="flow",
        seed=seed,
        options=options,
    )


def run_fig10(distributions: Sequence[str] = ("uniform", "pareto"),
              schemes: Sequence[str] = SCHEMES,
              seeds: Sequence[int] = tuple(range(1, 9)),
              n_flows: int = 10,
              mean_size: float = 100 * KBYTE) -> Dict[str, Dict[str, float]]:
    """Mean FCT (seconds) per scheme per size distribution."""
    grid = [(dist, scheme, s)
            for dist in distributions for scheme in schemes for s in seeds]
    collectors = run_scenarios(
        _scheme_spec(scheme, dist, n_flows, s, mean_size)
        for (dist, scheme, s) in grid
    )
    by_cell: Dict[tuple, List[float]] = {}
    for (dist, scheme, _s), metrics in zip(grid, collectors):
        by_cell.setdefault((dist, scheme), []).append(metrics.mean_fct())
    results: Dict[str, Dict[str, float]] = {}
    for dist in distributions:
        results[dist] = {
            scheme: mean(by_cell[(dist, scheme)]) for scheme in schemes
        }
    return results
