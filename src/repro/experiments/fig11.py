"""Fig 11: Multipath PDQ on BCube(2,3) with random permutation traffic.

(a) mean FCT vs load (fraction of sending hosts): PDQ vs M-PDQ(3 subflows)
(b) mean FCT vs number of subflows at full load
(c) max deadline flows at 99 % application throughput vs subflows
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.experiments.search import binary_search_max
from repro.topology.bcube import BCube
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.sizes import uniform_sizes


TOPOLOGY = TopologySpec("bcube", {"n": 2, "k": 3})


def _bcube() -> BCube:
    return BCube(n=2, k=3)  # 16 servers, 4 NICs each (§6)


def _permutation_subset(load: float, seed: int, mean_size: float,
                        mean_deadline=None, topo=None) -> List[FlowSpec]:
    """Random permutation over a ``load`` fraction of hosts."""
    topo = topo if topo is not None else _bcube()
    hosts = list(topo.hosts)
    rng = spawn_rng(seed, "fig11")
    n_senders = max(2, int(round(load * len(hosts))))
    chosen = list(rng.permutation(hosts))[:n_senders]
    # derangement over the chosen hosts
    while True:
        perm = list(rng.permutation(len(chosen)))
        if all(perm[i] != i for i in range(len(chosen))):
            break
    sizes = uniform_sizes(n_senders, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n_senders, mean=mean_deadline,
                                          rng=rng)
    return [
        FlowSpec(fid=i, src=chosen[i], dst=chosen[perm[i]],
                 size_bytes=sizes[i],
                 deadline=deadlines[i] if deadlines else None)
        for i in range(n_senders)
    ]


@register_workload("fig11.permutation_subset")
def _build_permutation_subset(topology, seed: int, load: float,
                              mean_size: float,
                              mean_deadline=None) -> List[FlowSpec]:
    return _permutation_subset(load, seed, mean_size, mean_deadline,
                               topo=topology)


def _subset_spec(protocol: str, load: float, seed: int, mean_size: float,
                 n_subflows: int) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig11.permutation_subset", {
            "load": load,
            "mean_size": mean_size,
        }),
        engine="packet",
        seed=seed,
        sim_deadline=4.0,
        options={"n_subflows": n_subflows},
    )


def run_fig11a(loads: Sequence[float] = (0.25, 0.5, 1.0),
               seeds: Sequence[int] = (1, 2),
               mean_size: float = 1000 * KBYTE,
               n_subflows: int = 3) -> Dict[str, Dict[float, float]]:
    """Mean FCT (seconds) vs load for PDQ and M-PDQ."""
    results: Dict[str, Dict[float, float]] = {"PDQ": {}, "M-PDQ": {}}
    names = (("PDQ", "PDQ(Full)"), ("M-PDQ", "M-PDQ"))
    grid = [(load, name, protocol, s)
            for load in loads for (name, protocol) in names for s in seeds]
    collectors = run_scenarios(
        _subset_spec(protocol, load, s, mean_size, n_subflows)
        for (load, _name, protocol, s) in grid
    )
    by_cell: Dict[tuple, List[float]] = {}
    for (load, name, _p, _s), metrics in zip(grid, collectors):
        by_cell.setdefault((name, load), []).append(metrics.mean_fct())
    for (name, load), values in by_cell.items():
        results[name][load] = mean(values)
    return results


def run_fig11b(subflow_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
               seeds: Sequence[int] = (1, 2),
               mean_size: float = 1000 * KBYTE) -> Dict[int, float]:
    """Mean FCT (seconds) vs number of subflows at 100 % load; 1 subflow
    means single-path PDQ."""
    grid = [(count, s) for count in subflow_counts for s in seeds]
    collectors = run_scenarios(
        _subset_spec("PDQ(Full)" if count == 1 else "M-PDQ", 1.0, s,
                     mean_size, count)
        for (count, s) in grid
    )
    by_count: Dict[int, List[float]] = {}
    for (count, _s), metrics in zip(grid, collectors):
        by_count.setdefault(count, []).append(metrics.mean_fct())
    return {count: mean(values) for count, values in by_count.items()}


@register_workload("fig11.random_pairs")
def _build_random_pairs(topology, seed: int, n_flows: int, mean_size: float,
                        mean_deadline: float) -> List[FlowSpec]:
    hosts = list(topology.hosts)
    rng = spawn_rng(seed, "fig11c")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    flows = []
    for i in range(n_flows):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=sizes[i],
                              deadline=deadlines[i]))
    return flows


def run_fig11c(subflow_counts: Sequence[int] = (1, 2, 4),
               seeds: Sequence[int] = (1,),
               mean_size: float = 1000 * KBYTE,
               mean_deadline: float = 30 * MSEC,
               target: float = 0.99,
               hi: int = 32) -> Dict[int, int]:
    """Max deadline flows at 99 % application throughput vs subflows.

    The flow count is swept by running multiple permutation rounds over a
    random host subset (more flows than hosts reuse senders)."""
    results: Dict[int, int] = {}
    for count in subflow_counts:
        protocol = "PDQ(Full)" if count == 1 else "M-PDQ"

        def ok(n: int, _p=protocol, _c=count) -> bool:
            collectors = run_scenarios(
                ScenarioSpec(
                    protocol=_p,
                    topology=TOPOLOGY,
                    workload=WorkloadSpec("fig11.random_pairs", {
                        "n_flows": n,
                        "mean_size": mean_size,
                        "mean_deadline": mean_deadline,
                    }),
                    engine="packet",
                    seed=s,
                    sim_deadline=2.0,
                    options={"n_subflows": _c},
                )
                for s in seeds
            )
            return mean(
                m.application_throughput() for m in collectors
            ) >= target

        results[count] = binary_search_max(ok, hi=hi)
    return results
