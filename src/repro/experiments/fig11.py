"""Fig 11: Multipath PDQ on BCube(2,3) with random permutation traffic.

(a) mean FCT vs load (fraction of sending hosts): PDQ vs M-PDQ(3 subflows)
(b) mean FCT vs number of subflows at full load
(c) max deadline flows at 99 % application throughput vs subflows

The PDQ/M-PDQ choice rides a *labeled* axis (1 subflow means single-path
PDQ, so the protocol and ``n_subflows`` option vary together); all three
panels are declarative grids/searches on the Experiment API.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    register_experiment,
    run_panel,
)
from repro.topology.bcube import BCube
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.sizes import uniform_sizes


TOPOLOGY = TopologySpec("bcube", {"n": 2, "k": 3})


def _bcube() -> BCube:
    return BCube(n=2, k=3)  # 16 servers, 4 NICs each (§6)


def _permutation_subset(load: float, seed: int, mean_size: float,
                        mean_deadline=None, topo=None) -> list[FlowSpec]:
    """Random permutation over a ``load`` fraction of hosts."""
    topo = topo if topo is not None else _bcube()
    hosts = list(topo.hosts)
    rng = spawn_rng(seed, "fig11")
    n_senders = max(2, int(round(load * len(hosts))))
    chosen = list(rng.permutation(hosts))[:n_senders]
    # derangement over the chosen hosts
    while True:
        perm = list(rng.permutation(len(chosen)))
        if all(perm[i] != i for i in range(len(chosen))):
            break
    sizes = uniform_sizes(n_senders, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n_senders, mean=mean_deadline,
                                          rng=rng)
    return [
        FlowSpec(fid=i, src=chosen[i], dst=chosen[perm[i]],
                 size_bytes=sizes[i],
                 deadline=deadlines[i] if deadlines else None)
        for i in range(n_senders)
    ]


@register_workload("fig11.permutation_subset")
def _build_permutation_subset(topology, seed: int, load: float,
                              mean_size: float,
                              mean_deadline=None) -> list[FlowSpec]:
    return _permutation_subset(load, seed, mean_size, mean_deadline,
                               topo=topology)


@register_workload("fig11.random_pairs")
def _build_random_pairs(topology, seed: int, n_flows: int, mean_size: float,
                        mean_deadline: float) -> list[FlowSpec]:
    hosts = list(topology.hosts)
    rng = spawn_rng(seed, "fig11c")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    flows = []
    for i in range(n_flows):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=sizes[i],
                              deadline=deadlines[i]))
    return flows


def _subflow_axis(counts: Sequence[int]) -> tuple:
    """Labeled axis: 1 subflow = single-path PDQ, more = M-PDQ."""
    return tuple(
        (count, {"protocol": "PDQ(Full)" if count == 1 else "M-PDQ",
                 "options.n_subflows": count})
        for count in counts
    )


def fig11a_panel(loads: Sequence[float] = (0.25, 0.5, 1.0),
                 seeds: Sequence[int] = (1, 2),
                 mean_size: float = 1000 * KBYTE,
                 n_subflows: int = 3) -> Panel:
    return Panel(
        name="fig11a",
        title="mean FCT vs load: PDQ vs M-PDQ",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig11.permutation_subset", {
                "load": loads[0],
                "mean_size": mean_size,
            }),
            engine="packet",
            sim_deadline=4.0,
            options={"n_subflows": n_subflows},
        ),
        axes=(("workload.load", tuple(loads)),
              ("scheme", (("PDQ", {"protocol": "PDQ(Full)"}),
                          ("M-PDQ", {"protocol": "M-PDQ"}))),
              ("seed", tuple(seeds))),
        reducer="series",
        reducer_params={"series": "scheme", "x": "workload.load",
                        "metric": "mean_fct"},
        wraps="repro.experiments.fig11:run_fig11a",
    )


def fig11b_panel(subflow_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
                 seeds: Sequence[int] = (1, 2),
                 mean_size: float = 1000 * KBYTE) -> Panel:
    return Panel(
        name="fig11b",
        title="mean FCT vs number of subflows at full load",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig11.permutation_subset", {
                "load": 1.0,
                "mean_size": mean_size,
            }),
            engine="packet",
            sim_deadline=4.0,
            options={"n_subflows": subflow_counts[0]},
        ),
        axes=(("subflows", _subflow_axis(subflow_counts)),
              ("seed", tuple(seeds))),
        reducer="series",
        reducer_params={"x": "subflows", "metric": "mean_fct"},
        wraps="repro.experiments.fig11:run_fig11b",
    )


def fig11c_panel(subflow_counts: Sequence[int] = (1, 2, 4),
                 seeds: Sequence[int] = (1,),
                 mean_size: float = 1000 * KBYTE,
                 mean_deadline: float = 30 * MSEC,
                 target: float = 0.99,
                 hi: int = 32) -> Panel:
    # the flow count is swept by running multiple permutation rounds over
    # a random host subset (more flows than hosts reuse senders)
    return Panel(
        name="fig11c",
        title="max deadline flows at 99 % throughput vs subflows",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig11.random_pairs", {
                "n_flows": 1,
                "mean_size": mean_size,
                "mean_deadline": mean_deadline,
            }),
            engine="packet",
            sim_deadline=2.0,
            options={"n_subflows": subflow_counts[0]},
        ),
        axes=(("subflows", _subflow_axis(subflow_counts)),),
        search=SearchSpec(axis="workload.n_flows", target=target,
                          metric="application_throughput",
                          seeds=tuple(seeds), hi=hi),
        reducer="series",
        reducer_params={"x": "subflows"},
        wraps="repro.experiments.fig11:run_fig11c",
    )


def run_fig11a(*args, **kwargs) -> dict[str, dict[float, float]]:
    """Mean FCT (seconds) vs load for PDQ and M-PDQ."""
    return run_panel(fig11a_panel(*args, **kwargs))


def run_fig11b(*args, **kwargs) -> dict[int, float]:
    """Mean FCT (seconds) vs number of subflows at 100 % load; 1 subflow
    means single-path PDQ."""
    return run_panel(fig11b_panel(*args, **kwargs))


def run_fig11c(*args, **kwargs) -> dict[int, int]:
    """Max deadline flows at 99 % application throughput vs subflows."""
    return run_panel(fig11c_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig11",
    title="multipath PDQ on BCube(2,3)",
    panels=(fig11a_panel(), fig11b_panel(), fig11c_panel()),
))
