"""Fig 11: Multipath PDQ on BCube(2,3) with random permutation traffic.

(a) mean FCT vs load (fraction of sending hosts): PDQ vs M-PDQ(3 subflows)
(b) mean FCT vs number of subflows at full load
(c) max deadline flows at 99 % application throughput vs subflows
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.scenario import run_packet_level
from repro.experiments.search import binary_search_max
from repro.topology.bcube import BCube
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.sizes import uniform_sizes


def _bcube() -> BCube:
    return BCube(n=2, k=3)  # 16 servers, 4 NICs each (§6)


def _permutation_subset(load: float, seed: int, mean_size: float,
                        mean_deadline=None) -> List[FlowSpec]:
    """Random permutation over a ``load`` fraction of hosts."""
    topo = _bcube()
    hosts = list(topo.hosts)
    rng = spawn_rng(seed, "fig11")
    n_senders = max(2, int(round(load * len(hosts))))
    chosen = list(rng.permutation(hosts))[:n_senders]
    # derangement over the chosen hosts
    while True:
        perm = list(rng.permutation(len(chosen)))
        if all(perm[i] != i for i in range(len(chosen))):
            break
    sizes = uniform_sizes(n_senders, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n_senders, mean=mean_deadline,
                                          rng=rng)
    return [
        FlowSpec(fid=i, src=chosen[i], dst=chosen[perm[i]],
                 size_bytes=sizes[i],
                 deadline=deadlines[i] if deadlines else None)
        for i in range(n_senders)
    ]


def run_fig11a(loads: Sequence[float] = (0.25, 0.5, 1.0),
               seeds: Sequence[int] = (1, 2),
               mean_size: float = 1000 * KBYTE,
               n_subflows: int = 3) -> Dict[str, Dict[float, float]]:
    """Mean FCT (seconds) vs load for PDQ and M-PDQ."""
    results: Dict[str, Dict[float, float]] = {"PDQ": {}, "M-PDQ": {}}
    for load in loads:
        for name, protocol in (("PDQ", "PDQ(Full)"), ("M-PDQ", "M-PDQ")):
            results[name][load] = mean(
                run_packet_level(
                    _bcube(), protocol,
                    _permutation_subset(load, s, mean_size),
                    sim_deadline=4.0, n_subflows=n_subflows,
                ).mean_fct()
                for s in seeds
            )
    return results


def run_fig11b(subflow_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
               seeds: Sequence[int] = (1, 2),
               mean_size: float = 1000 * KBYTE) -> Dict[int, float]:
    """Mean FCT (seconds) vs number of subflows at 100 % load; 1 subflow
    means single-path PDQ."""
    results: Dict[int, float] = {}
    for count in subflow_counts:
        protocol = "PDQ(Full)" if count == 1 else "M-PDQ"
        results[count] = mean(
            run_packet_level(
                _bcube(), protocol, _permutation_subset(1.0, s, mean_size),
                sim_deadline=4.0, n_subflows=count,
            ).mean_fct()
            for s in seeds
        )
    return results


def run_fig11c(subflow_counts: Sequence[int] = (1, 2, 4),
               seeds: Sequence[int] = (1,),
               mean_size: float = 1000 * KBYTE,
               mean_deadline: float = 30 * MSEC,
               target: float = 0.99,
               hi: int = 32) -> Dict[int, int]:
    """Max deadline flows at 99 % application throughput vs subflows.

    The flow count is swept by running multiple permutation rounds over a
    random host subset (more flows than hosts reuse senders)."""
    topo = _bcube()
    hosts = list(topo.hosts)

    def flows_for(n: int, seed: int) -> List[FlowSpec]:
        rng = spawn_rng(seed, "fig11c")
        sizes = uniform_sizes(n, mean_size, rng=rng)
        deadlines = exponential_deadlines(n, mean=mean_deadline, rng=rng)
        flows = []
        for i in range(n):
            src_i = int(rng.integers(len(hosts)))
            dst_i = int(rng.integers(len(hosts) - 1))
            if dst_i >= src_i:
                dst_i += 1
            flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                                  size_bytes=sizes[i],
                                  deadline=deadlines[i]))
        return flows

    results: Dict[int, int] = {}
    for count in subflow_counts:
        protocol = "PDQ(Full)" if count == 1 else "M-PDQ"

        def ok(n: int, _p=protocol, _c=count) -> bool:
            return mean(
                run_packet_level(
                    topo, _p, flows_for(n, s), sim_deadline=2.0,
                    n_subflows=_c,
                ).application_throughput()
                for s in seeds
            ) >= target

        results[count] = binary_search_max(ok, hi=hi)
    return results
