"""Fig 12: flow aging prevents starvation (flow level).

Fat-tree, deadline-unconstrained flows under a sustained high-load Poisson
stream of random-pair flows: fresh short flows keep preempting the large
ones, so without aging the largest flows starve (SRPT's known tail
behaviour). The PDQ sender inflates criticality by reducing T_H by
2^(alpha * t) with t the flow's waiting time; sweeping alpha should cut the
worst-case FCT substantially (paper: ~48 % at the knee) while leaving the
mean nearly untouched (paper: +1.7 %). RCP's max/mean are the fairness
reference.

The paper measures t in units of 100 ms against ~100 ms worst-case FCTs;
reduced-scale runs have ~10x smaller FCTs, so ``aging_time_unit`` defaults
to 10 ms to preserve the dimensionless shape.

The RCP reference and the PDQ aging sweep are one *labeled* axis — a
non-cartesian grid (RCP takes no aging options) the Experiment API
expresses directly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    register_experiment,
    run_panel,
)
from repro.experiments.fig8 import topology_for
from repro.experiments.reducers import register_reducer
from repro.units import GBPS, KBYTE
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.arrivals import poisson_arrivals
from repro.workload.flow import FlowSpec
from repro.workload.sizes import uniform_sizes


def fig12_workload(n_servers: int, duration: float, load: float,
                   seed: int, mean_size: float = 100 * KBYTE) -> list[FlowSpec]:
    """Poisson random-pair traffic at per-host offered ``load`` (fraction
    of the 1 Gbps access links)."""
    topo = topology_for("fattree", n_servers)
    return _poisson_pair_flows(topo.hosts, duration, load, seed, mean_size)


def _poisson_pair_flows(hosts, duration: float, load: float, seed: int,
                        mean_size: float) -> list[FlowSpec]:
    rng = spawn_rng(seed, "fig12")
    per_host_rate = load * (1 * GBPS) / (mean_size * 8.0)
    arrivals = poisson_arrivals(per_host_rate * len(hosts), duration, rng=rng)
    sizes = uniform_sizes(len(arrivals), mean_size, rng=rng)
    flows = []
    for i, (t, size) in enumerate(zip(arrivals, sizes, strict=True)):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=size, arrival=t))
    return flows


@register_workload("fig12.poisson_pairs")
def _build_workload(topology, seed: int, duration: float,
                    load: float, mean_size: float) -> list[FlowSpec]:
    return _poisson_pair_flows(topology.hosts, duration, load, seed,
                               mean_size)


@register_reducer("fig12.aging_table")
def _reduce_aging(run) -> dict:
    """Max/mean FCT per aging rate plus the flat RCP reference rows."""
    aging_rates = [v for v in run.axis_values("variant") if v != "RCP"]
    by_variant: dict[object, list] = {}
    for combo, _spec, metrics in run.rows:
        by_variant.setdefault(combo["variant"], []).append(metrics)
    rcp_max = mean(m.max_fct() for m in by_variant["RCP"])
    rcp_mean = mean(m.mean_fct() for m in by_variant["RCP"])
    results: dict[str, dict[float, float]] = {
        "PDQ max": {}, "PDQ mean": {}, "RCP max": {}, "RCP mean": {},
    }
    for alpha in aging_rates:
        runs = by_variant[alpha]
        results["PDQ max"][alpha] = mean(m.max_fct() for m in runs)
        results["PDQ mean"][alpha] = mean(m.mean_fct() for m in runs)
        results["RCP max"][alpha] = rcp_max
        results["RCP mean"][alpha] = rcp_mean
    return results


def fig12_panel(aging_rates: Sequence[float] = (0.0, 2.0, 6.0, 10.0),
                seeds: Sequence[int] = (1, 2),
                n_servers: int = 16,
                duration: float = 0.04,
                load: float = 0.85,
                mean_size: float = 100 * KBYTE,
                aging_time_unit: float = 0.01) -> Panel:
    variant_axis = (("RCP", {"protocol": "RCP"}),) + tuple(
        (alpha, {"protocol": "PDQ(Full)",
                 "options.aging_rate": alpha,
                 "options.aging_time_unit": aging_time_unit})
        for alpha in aging_rates
    )
    return Panel(
        name="fig12",
        title="flow aging prevents starvation",
        base=ScenarioSpec(
            protocol="RCP",
            topology=TopologySpec("fattree", {"n_servers": n_servers}),
            workload=WorkloadSpec("fig12.poisson_pairs", {
                "duration": duration,
                "load": load,
                "mean_size": mean_size,
            }),
            engine="flow",
            sim_deadline=20.0,
        ),
        axes=(("variant", variant_axis), ("seed", tuple(seeds))),
        reducer="fig12.aging_table",
        wraps="repro.experiments.fig12:run_fig12",
    )


def run_fig12(*args, **kwargs) -> dict[str, dict[float, float]]:
    """Max and mean FCT (seconds) vs aging rate, plus RCP references."""
    return run_panel(fig12_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig12",
    title="flow aging prevents starvation",
    panels=(fig12_panel(),),
))
