"""Fig 12: flow aging prevents starvation (flow level).

Fat-tree, deadline-unconstrained flows under a sustained high-load Poisson
stream of random-pair flows: fresh short flows keep preempting the large
ones, so without aging the largest flows starve (SRPT's known tail
behaviour). The PDQ sender inflates criticality by reducing T_H by
2^(alpha * t) with t the flow's waiting time; sweeping alpha should cut the
worst-case FCT substantially (paper: ~48 % at the knee) while leaving the
mean nearly untouched (paper: +1.7 %). RCP's max/mean are the fairness
reference.

The paper measures t in units of 100 ms against ~100 ms worst-case FCTs;
reduced-scale runs have ~10x smaller FCTs, so ``aging_time_unit`` defaults
to 10 ms to preserve the dimensionless shape.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.fig8 import topology_for
from repro.experiments.scenario import run_flow_level
from repro.units import GBPS, KBYTE
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.arrivals import poisson_arrivals
from repro.workload.flow import FlowSpec
from repro.workload.sizes import uniform_sizes


def fig12_workload(n_servers: int, duration: float, load: float,
                   seed: int, mean_size: float = 100 * KBYTE) -> List[FlowSpec]:
    """Poisson random-pair traffic at per-host offered ``load`` (fraction
    of the 1 Gbps access links)."""
    topo = topology_for("fattree", n_servers)
    hosts = topo.hosts
    rng = spawn_rng(seed, "fig12")
    per_host_rate = load * (1 * GBPS) / (mean_size * 8.0)
    arrivals = poisson_arrivals(per_host_rate * len(hosts), duration, rng=rng)
    sizes = uniform_sizes(len(arrivals), mean_size, rng=rng)
    flows = []
    for i, (t, size) in enumerate(zip(arrivals, sizes)):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=size, arrival=t))
    return flows


def run_fig12(aging_rates: Sequence[float] = (0.0, 2.0, 6.0, 10.0),
              seeds: Sequence[int] = (1, 2),
              n_servers: int = 16,
              duration: float = 0.04,
              load: float = 0.85,
              mean_size: float = 100 * KBYTE,
              aging_time_unit: float = 0.01) -> Dict[str, Dict[float, float]]:
    """Max and mean FCT (seconds) vs aging rate, plus RCP references."""
    topo = topology_for("fattree", n_servers)
    results: Dict[str, Dict[float, float]] = {
        "PDQ max": {}, "PDQ mean": {}, "RCP max": {}, "RCP mean": {},
    }
    workloads = [
        fig12_workload(n_servers, duration, load, seed, mean_size)
        for seed in seeds
    ]
    rcp_runs = [run_flow_level(topo, "RCP", w, 20.0) for w in workloads]
    rcp_max = mean(m.max_fct() for m in rcp_runs)
    rcp_mean = mean(m.mean_fct() for m in rcp_runs)
    for alpha in aging_rates:
        runs = [
            run_flow_level(topo, "PDQ(Full)", w, 20.0, aging_rate=alpha,
                           aging_time_unit=aging_time_unit)
            for w in workloads
        ]
        results["PDQ max"][alpha] = mean(m.max_fct() for m in runs)
        results["PDQ mean"][alpha] = mean(m.mean_fct() for m in runs)
        results["RCP max"][alpha] = rcp_max
        results["RCP mean"][alpha] = rcp_mean
    return results
