"""Fig 3: query aggregation on the default 12-server single-rooted tree.

(a) application throughput vs number of deadline flows
(b) application throughput vs mean flow size (3 flows)
(c) max flows sustaining 99 % application throughput vs mean deadline
(d) mean FCT (normalized to optimal) vs number of flows, no deadlines
(e) mean FCT (normalized to optimal) vs mean flow size (3 flows)

Paper scale: flows up to 25, sizes 100-350 KB, deadlines 20-60 ms, many
seeds. Benchmarks run reduced sweeps; every function takes the full ranges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.experiments.search import binary_search_max
from repro.sched.optimal import (
    optimal_application_throughput,
    sjf_completion_times,
)
from repro.units import GBPS, KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes

DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)", "PDQ(Basic)",
                     "D3", "RCP", "TCP")
BOTTLENECK = 1 * GBPS  # the receiver's access link
TOPOLOGY = TopologySpec("single_rooted")


def _workload(n_flows: int, seed: int, mean_size: float,
              mean_deadline: Optional[float],
              deadline_floor: float = 3 * MSEC) -> List[FlowSpec]:
    """Query-aggregation workload: senders h1..h11 -> aggregator h0."""
    rng = spawn_rng(seed, "fig3")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(
            n_flows, mean=mean_deadline, floor=deadline_floor, rng=rng
        )
    senders = [f"h{i}" for i in range(1, 12)]
    return aggregation_flows(senders, "h0", sizes, deadlines=deadlines,
                             rng=rng)


@register_workload("fig3.aggregation")
def _build_workload(topology, seed: int, n_flows: int, mean_size: float,
                    mean_deadline: Optional[float] = None,
                    deadline_floor: float = 3 * MSEC) -> List[FlowSpec]:
    return _workload(n_flows, seed, mean_size, mean_deadline, deadline_floor)


def _spec(protocol: str, n_flows: int, seed: int, mean_size: float,
          mean_deadline: Optional[float], sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig3.aggregation", {
            "n_flows": n_flows,
            "mean_size": mean_size,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        seed=seed,
        sim_deadline=sim_deadline,
    )


def _optimal_app_throughput(flows: Sequence[FlowSpec]) -> float:
    sizes = [f.size_bytes for f in flows]
    deadlines = [f.deadline for f in flows]
    return optimal_application_throughput(sizes, deadlines, BOTTLENECK)


# -- Fig 3a ---------------------------------------------------------------------

def run_fig3a(flow_counts: Sequence[int] = (3, 10, 18),
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE,
              mean_deadline: float = 20 * MSEC) -> Dict[str, Dict[int, float]]:
    """Application throughput [0..1] per protocol per flow count."""
    results: Dict[str, Dict[int, float]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    grid = [(n, p, s) for n in flow_counts for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, n, s, mean_size, mean_deadline, 2.0) for (n, p, s) in grid
    )
    for n in flow_counts:
        results["Optimal"][n] = mean(
            _optimal_app_throughput(_workload(n, s, mean_size, mean_deadline))
            for s in seeds
        )
    by_cell: Dict[tuple, List[float]] = {}
    for (n, p, _s), metrics in zip(grid, collectors):
        by_cell.setdefault((p, n), []).append(
            metrics.application_throughput()
        )
    for (p, n), values in by_cell.items():
        results[p][n] = mean(values)
    return results


# -- Fig 3b ---------------------------------------------------------------------

def run_fig3b(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                             300 * KBYTE),
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 3,
              mean_deadline: float = 20 * MSEC) -> Dict[str, Dict[float, float]]:
    """Application throughput per protocol per mean flow size (3 flows)."""
    results: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    grid = [(size, p, s)
            for size in mean_sizes for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, n_flows, s, size, mean_deadline, 2.0)
        for (size, p, s) in grid
    )
    for size in mean_sizes:
        results["Optimal"][size] = mean(
            _optimal_app_throughput(_workload(n_flows, s, size,
                                              mean_deadline))
            for s in seeds
        )
    by_cell: Dict[tuple, List[float]] = {}
    for (size, p, _s), metrics in zip(grid, collectors):
        by_cell.setdefault((p, size), []).append(
            metrics.application_throughput()
        )
    for (p, size), values in by_cell.items():
        results[p][size] = mean(values)
    return results


# -- Fig 3c ---------------------------------------------------------------------

def run_fig3c(mean_deadlines: Sequence[float] = (20 * MSEC, 40 * MSEC),
              protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE,
              target: float = 0.99,
              hi: int = 48) -> Dict[str, Dict[float, int]]:
    """Max number of flows at >= 99 % application throughput."""
    results: Dict[str, Dict[float, int]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    for deadline in mean_deadlines:
        def optimal_ok(n: int, _d=deadline) -> bool:
            return mean(
                _optimal_app_throughput(_workload(n, s, mean_size, _d))
                for s in seeds
            ) >= target

        results["Optimal"][deadline] = binary_search_max(optimal_ok, hi=hi)
        for protocol in protocols:
            def ok(n: int, _p=protocol, _d=deadline) -> bool:
                collectors = run_scenarios(
                    _spec(_p, n, s, mean_size, _d, 2.0) for s in seeds
                )
                return mean(
                    m.application_throughput() for m in collectors
                ) >= target

            results[protocol][deadline] = binary_search_max(ok, hi=hi)
    return results


# -- Fig 3d / 3e ------------------------------------------------------------------

def _normalized_fct(metrics, flows: Sequence[FlowSpec]) -> float:
    measured = metrics.mean_fct()
    optimal = mean(
        sjf_completion_times([f.size_bytes for f in flows], BOTTLENECK)
    )
    return measured / optimal


def run_fig3d(flow_counts: Sequence[int] = (1, 5, 10),
              protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                          "PDQ(Basic)", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE) -> Dict[str, Dict[int, float]]:
    """Mean FCT normalized to the omniscient optimal, no deadlines."""
    results: Dict[str, Dict[int, float]] = {p: {} for p in protocols}
    grid = [(n, p, s) for n in flow_counts for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, n, s, mean_size, None, 4.0) for (n, p, s) in grid
    )
    by_cell: Dict[tuple, List[float]] = {}
    for (n, p, s), metrics in zip(grid, collectors):
        flows = _workload(n, s, mean_size, None)
        by_cell.setdefault((p, n), []).append(_normalized_fct(metrics, flows))
    for (p, n), values in by_cell.items():
        results[p][n] = mean(values)
    return results


def run_fig3e(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                             300 * KBYTE),
              protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                          "PDQ(Basic)", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 3) -> Dict[str, Dict[float, float]]:
    """Mean FCT normalized to optimal vs mean flow size (3 flows)."""
    results: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    grid = [(size, p, s)
            for size in mean_sizes for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, n_flows, s, size, None, 4.0) for (size, p, s) in grid
    )
    by_cell: Dict[tuple, List[float]] = {}
    for (size, p, s), metrics in zip(grid, collectors):
        flows = _workload(n_flows, s, size, None)
        by_cell.setdefault((p, size), []).append(
            _normalized_fct(metrics, flows)
        )
    for (p, size), values in by_cell.items():
        results[p][size] = mean(values)
    return results
