"""Fig 3: query aggregation on the default 12-server single-rooted tree.

(a) application throughput vs number of deadline flows
(b) application throughput vs mean flow size (3 flows)
(c) max flows sustaining 99 % application throughput vs mean deadline
(d) mean FCT (normalized to optimal) vs number of flows, no deadlines
(e) mean FCT (normalized to optimal) vs mean flow size (3 flows)

Paper scale: flows up to 25, sizes 100-350 KB, deadlines 20-60 ms, many
seeds. Benchmarks run reduced sweeps; every panel builder takes the full
ranges. Each panel is declared through the Experiment API
(:mod:`repro.experiments.api`); the ``run_fig3*`` functions are thin
wrappers kept for their historical signatures.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    register_experiment,
    run_panel,
)
from repro.experiments.reducers import register_reducer
from repro.experiments.search import binary_search_max
from repro.sched.optimal import (
    optimal_application_throughput,
    sjf_completion_times,
)
from repro.units import GBPS, KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes

DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)", "PDQ(Basic)",
                     "D3", "RCP", "TCP")
BOTTLENECK = 1 * GBPS  # the receiver's access link
TOPOLOGY = TopologySpec("single_rooted")


def _workload(n_flows: int, seed: int, mean_size: float,
              mean_deadline: float | None,
              deadline_floor: float = 3 * MSEC) -> list[FlowSpec]:
    """Query-aggregation workload: senders h1..h11 -> aggregator h0."""
    rng = spawn_rng(seed, "fig3")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(
            n_flows, mean=mean_deadline, floor=deadline_floor, rng=rng
        )
    senders = [f"h{i}" for i in range(1, 12)]
    return aggregation_flows(senders, "h0", sizes, deadlines=deadlines,
                             rng=rng)


@register_workload("fig3.aggregation")
def _build_workload(topology, seed: int, n_flows: int, mean_size: float,
                    mean_deadline: float | None = None,
                    deadline_floor: float = 3 * MSEC) -> list[FlowSpec]:
    return _workload(n_flows, seed, mean_size, mean_deadline, deadline_floor)


def _base_spec(n_flows: int, mean_size: float,
               mean_deadline: float | None,
               sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=DEFAULT_PROTOCOLS[0],
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig3.aggregation", {
            "n_flows": n_flows,
            "mean_size": mean_size,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        sim_deadline=sim_deadline,
    )


def _built_flows(spec: ScenarioSpec) -> list[FlowSpec]:
    """The workload a grid cell ran (protocol-independent)."""
    return spec.workload.build(spec.topology.build(), spec.seed)


def _optimal_app_throughput(flows: Sequence[FlowSpec]) -> float:
    sizes = [f.size_bytes for f in flows]
    deadlines = [f.deadline for f in flows]
    return optimal_application_throughput(sizes, deadlines, BOTTLENECK)


# -- reducers ---------------------------------------------------------------------


@register_reducer("fig3.app_tput_table")
def _reduce_app_tput(run, x: str) -> dict:
    """{protocol: {x: mean application throughput}} plus the omniscient
    "Optimal" scheduler row computed from the rebuilt workloads."""
    protocols = run.axis_values("protocol")
    seeds = run.axis_values("seed")
    results = {p: {} for p in protocols}
    results["Optimal"] = {}
    spec_at = {
        (combo[x], combo["seed"]): spec for combo, spec, _ in run.rows
    }
    for x_value in run.axis_values(x):
        results["Optimal"][x_value] = mean(
            _optimal_app_throughput(_built_flows(spec_at[(x_value, s)]))
            for s in seeds
        )
    cells = run.cell_values(("protocol", x), "application_throughput")
    for (protocol, x_value), value in cells.items():
        results[protocol][x_value] = value
    return results


def _normalized_fct(metrics, flows: Sequence[FlowSpec]) -> float:
    measured = metrics.mean_fct()
    optimal = mean(
        sjf_completion_times([f.size_bytes for f in flows], BOTTLENECK)
    )
    return measured / optimal


@register_reducer("fig3.norm_fct_table")
def _reduce_norm_fct(run, x: str) -> dict:
    """{protocol: {x: mean FCT normalized to the omniscient optimal}}."""
    results = {p: {} for p in run.axis_values("protocol")}
    by_cell = {}
    for combo, spec, metrics in run.rows:
        by_cell.setdefault((combo["protocol"], combo[x]), []).append(
            _normalized_fct(metrics, _built_flows(spec))
        )
    for (protocol, x_value), values in by_cell.items():
        results[protocol][x_value] = mean(values)
    return results


@register_reducer("fig3.flows_at_target")
def _reduce_flows_at_target(run) -> dict:
    """Search results {protocol: {deadline: max flows}} plus the Optimal
    row found by the same binary search over the analytic scheduler."""
    search = run.panel.search
    mean_size = run.panel.base.workload.params["mean_size"]
    results = {p: {} for p in run.axis_values("protocol")}
    results["Optimal"] = {}
    for deadline in run.axis_values("workload.mean_deadline"):
        def optimal_ok(n: int, _d=deadline) -> bool:
            return mean(
                _optimal_app_throughput(_workload(n, s, mean_size, _d))
                for s in search.seeds
            ) >= search.target

        results["Optimal"][deadline] = binary_search_max(
            optimal_ok, hi=search.hi
        )
    cells = run.cell_values(("protocol", "workload.mean_deadline"), None)
    for (protocol, deadline), value in cells.items():
        results[protocol][deadline] = value
    return results


# -- panels -----------------------------------------------------------------------


def fig3a_panel(flow_counts: Sequence[int] = (3, 10, 18),
                protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1, 2),
                mean_size: float = 100 * KBYTE,
                mean_deadline: float = 20 * MSEC) -> Panel:
    return Panel(
        name="fig3a",
        title="application throughput vs number of deadline flows",
        base=_base_spec(flow_counts[0], mean_size, mean_deadline, 2.0),
        axes=(("workload.n_flows", tuple(flow_counts)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="fig3.app_tput_table",
        reducer_params={"x": "workload.n_flows"},
        wraps="repro.experiments.fig3:run_fig3a",
    )


def fig3b_panel(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                               300 * KBYTE),
                protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1, 2),
                n_flows: int = 3,
                mean_deadline: float = 20 * MSEC) -> Panel:
    return Panel(
        name="fig3b",
        title="application throughput vs mean flow size",
        base=_base_spec(n_flows, mean_sizes[0], mean_deadline, 2.0),
        axes=(("workload.mean_size", tuple(mean_sizes)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="fig3.app_tput_table",
        reducer_params={"x": "workload.mean_size"},
        wraps="repro.experiments.fig3:run_fig3b",
    )


def fig3c_panel(mean_deadlines: Sequence[float] = (20 * MSEC, 40 * MSEC),
                protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP", "TCP"),
                seeds: Sequence[int] = (1, 2),
                mean_size: float = 100 * KBYTE,
                target: float = 0.99,
                hi: int = 48) -> Panel:
    return Panel(
        name="fig3c",
        title="max flows at 99 % application throughput vs mean deadline",
        base=_base_spec(1, mean_size, mean_deadlines[0], 2.0),
        axes=(("workload.mean_deadline", tuple(mean_deadlines)),
              ("protocol", tuple(protocols))),
        search=SearchSpec(axis="workload.n_flows", target=target,
                          metric="application_throughput",
                          seeds=tuple(seeds), hi=hi),
        reducer="fig3.flows_at_target",
        wraps="repro.experiments.fig3:run_fig3c",
    )


def fig3d_panel(flow_counts: Sequence[int] = (1, 5, 10),
                protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                            "PDQ(Basic)", "RCP", "TCP"),
                seeds: Sequence[int] = (1, 2),
                mean_size: float = 100 * KBYTE) -> Panel:
    return Panel(
        name="fig3d",
        title="mean FCT normalized to optimal vs number of flows",
        base=_base_spec(flow_counts[0], mean_size, None, 4.0),
        axes=(("workload.n_flows", tuple(flow_counts)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="fig3.norm_fct_table",
        reducer_params={"x": "workload.n_flows"},
        wraps="repro.experiments.fig3:run_fig3d",
    )


def fig3e_panel(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                               300 * KBYTE),
                protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                            "PDQ(Basic)", "RCP", "TCP"),
                seeds: Sequence[int] = (1, 2),
                n_flows: int = 3) -> Panel:
    return Panel(
        name="fig3e",
        title="mean FCT normalized to optimal vs mean flow size",
        base=_base_spec(n_flows, mean_sizes[0], None, 4.0),
        axes=(("workload.mean_size", tuple(mean_sizes)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="fig3.norm_fct_table",
        reducer_params={"x": "workload.mean_size"},
        wraps="repro.experiments.fig3:run_fig3e",
    )


# -- public wrappers (historical signatures) --------------------------------------


def run_fig3a(*args, **kwargs):
    """Application throughput [0..1] per protocol per flow count."""
    return run_panel(fig3a_panel(*args, **kwargs))


def run_fig3b(*args, **kwargs):
    """Application throughput per protocol per mean flow size (3 flows)."""
    return run_panel(fig3b_panel(*args, **kwargs))


def run_fig3c(*args, **kwargs):
    """Max number of flows at >= 99 % application throughput."""
    return run_panel(fig3c_panel(*args, **kwargs))


def run_fig3d(*args, **kwargs):
    """Mean FCT normalized to the omniscient optimal, no deadlines."""
    return run_panel(fig3d_panel(*args, **kwargs))


def run_fig3e(*args, **kwargs):
    """Mean FCT normalized to optimal vs mean flow size (3 flows)."""
    return run_panel(fig3e_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig3",
    title="query aggregation on the default 12-server single-rooted tree",
    panels=(fig3a_panel(), fig3b_panel(), fig3c_panel(), fig3d_panel(),
            fig3e_panel()),
))
