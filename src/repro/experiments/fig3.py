"""Fig 3: query aggregation on the default 12-server single-rooted tree.

(a) application throughput vs number of deadline flows
(b) application throughput vs mean flow size (3 flows)
(c) max flows sustaining 99 % application throughput vs mean deadline
(d) mean FCT (normalized to optimal) vs number of flows, no deadlines
(e) mean FCT (normalized to optimal) vs mean flow size (3 flows)

Paper scale: flows up to 25, sizes 100-350 KB, deadlines 20-60 ms, many
seeds. Benchmarks run reduced sweeps; every function takes the full ranges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.scenario import run_packet_level
from repro.experiments.search import binary_search_max
from repro.sched.optimal import (
    optimal_application_throughput,
    sjf_completion_times,
)
from repro.topology.single_rooted import SingleRootedTree
from repro.units import GBPS, KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes

DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)", "PDQ(Basic)",
                     "D3", "RCP", "TCP")
BOTTLENECK = 1 * GBPS  # the receiver's access link


def _workload(n_flows: int, seed: int, mean_size: float,
              mean_deadline: Optional[float],
              deadline_floor: float = 3 * MSEC) -> List[FlowSpec]:
    """Query-aggregation workload: senders h1..h11 -> aggregator h0."""
    rng = spawn_rng(seed, "fig3")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(
            n_flows, mean=mean_deadline, floor=deadline_floor, rng=rng
        )
    senders = [f"h{i}" for i in range(1, 12)]
    return aggregation_flows(senders, "h0", sizes, deadlines=deadlines,
                             rng=rng)


def _app_throughput(protocol: str, flows: Sequence[FlowSpec]) -> float:
    metrics = run_packet_level(SingleRootedTree(), protocol, flows,
                               sim_deadline=2.0)
    return metrics.application_throughput()


def _optimal_app_throughput(flows: Sequence[FlowSpec]) -> float:
    sizes = [f.size_bytes for f in flows]
    deadlines = [f.deadline for f in flows]
    return optimal_application_throughput(sizes, deadlines, BOTTLENECK)


# -- Fig 3a ---------------------------------------------------------------------

def run_fig3a(flow_counts: Sequence[int] = (3, 10, 18),
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE,
              mean_deadline: float = 20 * MSEC) -> Dict[str, Dict[int, float]]:
    """Application throughput [0..1] per protocol per flow count."""
    results: Dict[str, Dict[int, float]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    for n in flow_counts:
        workloads = [_workload(n, s, mean_size, mean_deadline) for s in seeds]
        results["Optimal"][n] = mean(
            _optimal_app_throughput(w) for w in workloads
        )
        for protocol in protocols:
            results[protocol][n] = mean(
                _app_throughput(protocol, w) for w in workloads
            )
    return results


# -- Fig 3b ---------------------------------------------------------------------

def run_fig3b(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                             300 * KBYTE),
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 3,
              mean_deadline: float = 20 * MSEC) -> Dict[str, Dict[float, float]]:
    """Application throughput per protocol per mean flow size (3 flows)."""
    results: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    for size in mean_sizes:
        workloads = [_workload(n_flows, s, size, mean_deadline) for s in seeds]
        results["Optimal"][size] = mean(
            _optimal_app_throughput(w) for w in workloads
        )
        for protocol in protocols:
            results[protocol][size] = mean(
                _app_throughput(protocol, w) for w in workloads
            )
    return results


# -- Fig 3c ---------------------------------------------------------------------

def run_fig3c(mean_deadlines: Sequence[float] = (20 * MSEC, 40 * MSEC),
              protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE,
              target: float = 0.99,
              hi: int = 48) -> Dict[str, Dict[float, int]]:
    """Max number of flows at >= 99 % application throughput."""
    results: Dict[str, Dict[float, int]] = {p: {} for p in protocols}
    results["Optimal"] = {}
    for deadline in mean_deadlines:
        def optimal_ok(n: int, _d=deadline) -> bool:
            return mean(
                _optimal_app_throughput(_workload(n, s, mean_size, _d))
                for s in seeds
            ) >= target

        results["Optimal"][deadline] = binary_search_max(optimal_ok, hi=hi)
        for protocol in protocols:
            def ok(n: int, _p=protocol, _d=deadline) -> bool:
                return mean(
                    _app_throughput(_p, _workload(n, s, mean_size, _d))
                    for s in seeds
                ) >= target

            results[protocol][deadline] = binary_search_max(ok, hi=hi)
    return results


# -- Fig 3d / 3e ------------------------------------------------------------------

def _normalized_fct(protocol: str, flows: Sequence[FlowSpec]) -> float:
    metrics = run_packet_level(SingleRootedTree(), protocol, flows,
                               sim_deadline=4.0)
    measured = metrics.mean_fct()
    optimal = mean(
        sjf_completion_times([f.size_bytes for f in flows], BOTTLENECK)
    )
    return measured / optimal


def run_fig3d(flow_counts: Sequence[int] = (1, 5, 10),
              protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                          "PDQ(Basic)", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              mean_size: float = 100 * KBYTE) -> Dict[str, Dict[int, float]]:
    """Mean FCT normalized to the omniscient optimal, no deadlines."""
    results: Dict[str, Dict[int, float]] = {p: {} for p in protocols}
    for n in flow_counts:
        workloads = [_workload(n, s, mean_size, None) for s in seeds]
        for protocol in protocols:
            results[protocol][n] = mean(
                _normalized_fct(protocol, w) for w in workloads
            )
    return results


def run_fig3e(mean_sizes: Sequence[float] = (100 * KBYTE, 200 * KBYTE,
                                             300 * KBYTE),
              protocols: Sequence[str] = ("PDQ(Full)", "PDQ(ES)",
                                          "PDQ(Basic)", "RCP", "TCP"),
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 3) -> Dict[str, Dict[float, float]]:
    """Mean FCT normalized to optimal vs mean flow size (3 flows)."""
    results: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    for size in mean_sizes:
        workloads = [_workload(n_flows, s, size, None) for s in seeds]
        for protocol in protocols:
            results[protocol][size] = mean(
                _normalized_fct(protocol, w) for w in workloads
            )
    return results
