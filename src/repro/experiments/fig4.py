"""Fig 4: sending patterns on the 12-server tree.

(a) deadline flows: max flows at 99 % application throughput, normalized
    to PDQ(Full)
(b) no deadlines: mean FCT normalized to PDQ(Full)

Patterns: Aggregation, Stride(1), Stride(N/2), Staggered Prob(0.7),
Staggered Prob(0.3), Random Permutation. Both panels are declared
through the Experiment API; ``run_fig4a``/``run_fig4b`` are thin
wrappers kept for their historical signatures.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.errors import ExperimentError
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    register_experiment,
    run_panel,
)
from repro.experiments.reducers import register_reducer
from repro.experiments.scenario import normalize
from repro.topology.single_rooted import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import (
    aggregation_flows,
    random_permutation_flows,
    staggered_flows,
    stride_flows,
)
from repro.workload.sizes import uniform_sizes

PATTERNS = ("Aggregation", "Stride(1)", "Stride(N/2)", "Staggered(0.7)",
            "Staggered(0.3)", "RandomPermutation")
DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "D3", "RCP", "TCP")
TOPOLOGY = TopologySpec("single_rooted")


def pattern_flows(pattern: str, n_flows: int, seed: int,
                  mean_size: float = 100 * KBYTE,
                  mean_deadline: float | None = None) -> list[FlowSpec]:
    """Build ``n_flows`` flows for a named pattern on the default tree."""
    tree = SingleRootedTree()
    hosts = [f"h{i}" for i in range(tree.n_servers)]
    rng = spawn_rng(seed, f"fig4:{pattern}")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    if pattern == "Aggregation":
        return aggregation_flows(hosts[1:], hosts[0], sizes,
                                 deadlines=deadlines, rng=rng)
    if pattern == "Stride(1)":
        reps = -(-n_flows // len(hosts))
        pairs = stride_flows(hosts, 1, sizes[: len(hosts)] * reps,
                             deadlines=None)
        specs = pairs[:n_flows]
    elif pattern == "Stride(N/2)":
        reps = -(-n_flows // len(hosts))
        pairs = stride_flows(hosts, len(hosts) // 2,
                             sizes[: len(hosts)] * reps, deadlines=None)
        specs = pairs[:n_flows]
    elif pattern == "Staggered(0.7)":
        specs = staggered_flows(tree, sizes, p_local=0.7, rng=rng)
    elif pattern == "Staggered(0.3)":
        specs = staggered_flows(tree, sizes, p_local=0.3, rng=rng)
    elif pattern == "RandomPermutation":
        rounds = -(-n_flows // len(hosts))
        needed = rounds * len(hosts)
        all_sizes = (sizes * (needed // len(sizes) + 1))[:needed]
        specs = random_permutation_flows(hosts, all_sizes, rng=rng)[:n_flows]
    else:
        raise ExperimentError(f"unknown pattern {pattern!r}")
    # attach sizes/deadlines uniformly for the sliced patterns
    out = []
    for i, spec in enumerate(specs[:n_flows]):
        out.append(spec.with_(
            fid=i, size_bytes=sizes[i],
            deadline=deadlines[i] if deadlines else None,
        ))
    return out


@register_workload("fig4.pattern")
def _build_pattern(topology, seed: int, pattern: str, n_flows: int,
                   mean_size: float = 100 * KBYTE,
                   mean_deadline: float | None = None) -> list[FlowSpec]:
    return pattern_flows(pattern, n_flows, seed, mean_size, mean_deadline)


def _base_spec(pattern: str, n_flows: int,
               mean_deadline: float | None,
               sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=DEFAULT_PROTOCOLS[0],
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig4.pattern", {
            "pattern": pattern,
            "n_flows": n_flows,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        sim_deadline=sim_deadline,
    )


@register_reducer("fig4.normalized")
def _reduce_normalized(run, metric: str = "mean_fct",
                       reference: str = "PDQ(Full)") -> dict:
    """{pattern: {protocol: value normalized to the reference protocol}};
    grid panels reduce ``metric``, search panels the found maxima."""
    cells = run.cell_values(("workload.pattern", "protocol"), metric)
    results = {}
    for pattern in run.axis_values("workload.pattern"):
        absolute = {
            protocol: cells[(pattern, protocol)]
            for protocol in run.axis_values("protocol")
        }
        results[pattern] = normalize(absolute, reference)
    return results


def fig4a_panel(patterns: Sequence[str] = PATTERNS,
                protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1,),
                mean_deadline: float = 20 * MSEC,
                target: float = 0.99,
                hi: int = 32) -> Panel:
    return Panel(
        name="fig4a",
        title="normalized max flows at 99 % application throughput",
        base=_base_spec(patterns[0], 1, mean_deadline, 2.0),
        axes=(("workload.pattern", tuple(patterns)),
              ("protocol", tuple(protocols))),
        search=SearchSpec(axis="workload.n_flows", target=target,
                          metric="application_throughput",
                          seeds=tuple(seeds), hi=hi),
        reducer="fig4.normalized",
        wraps="repro.experiments.fig4:run_fig4a",
    )


def fig4b_panel(patterns: Sequence[str] = PATTERNS,
                protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1, 2),
                n_flows: int = 12) -> Panel:
    return Panel(
        name="fig4b",
        title="mean FCT normalized to PDQ(Full), no deadlines",
        base=_base_spec(patterns[0], n_flows, None, 4.0),
        axes=(("workload.pattern", tuple(patterns)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        reducer="fig4.normalized",
        reducer_params={"metric": "mean_fct"},
        wraps="repro.experiments.fig4:run_fig4b",
    )


def run_fig4a(*args, **kwargs):
    """Normalized max flows at 99 % application throughput."""
    return run_panel(fig4a_panel(*args, **kwargs))


def run_fig4b(*args, **kwargs):
    """Mean FCT normalized to PDQ(Full), deadline-unconstrained."""
    return run_panel(fig4b_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig4",
    title="sending patterns on the 12-server tree",
    panels=(fig4a_panel(), fig4b_panel()),
))
