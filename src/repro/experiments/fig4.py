"""Fig 4: sending patterns on the 12-server tree.

(a) deadline flows: max flows at 99 % application throughput, normalized
    to PDQ(Full)
(b) no deadlines: mean FCT normalized to PDQ(Full)

Patterns: Aggregation, Stride(1), Stride(N/2), Staggered Prob(0.7),
Staggered Prob(0.3), Random Permutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.errors import ExperimentError
from repro.experiments.scenario import normalize
from repro.experiments.search import binary_search_max
from repro.topology.single_rooted import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import (
    aggregation_flows,
    random_permutation_flows,
    staggered_flows,
    stride_flows,
)
from repro.workload.sizes import uniform_sizes

PATTERNS = ("Aggregation", "Stride(1)", "Stride(N/2)", "Staggered(0.7)",
            "Staggered(0.3)", "RandomPermutation")
DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "D3", "RCP", "TCP")
TOPOLOGY = TopologySpec("single_rooted")


def pattern_flows(pattern: str, n_flows: int, seed: int,
                  mean_size: float = 100 * KBYTE,
                  mean_deadline: Optional[float] = None) -> List[FlowSpec]:
    """Build ``n_flows`` flows for a named pattern on the default tree."""
    tree = SingleRootedTree()
    hosts = [f"h{i}" for i in range(tree.n_servers)]
    rng = spawn_rng(seed, f"fig4:{pattern}")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    if pattern == "Aggregation":
        return aggregation_flows(hosts[1:], hosts[0], sizes,
                                 deadlines=deadlines, rng=rng)
    if pattern == "Stride(1)":
        reps = -(-n_flows // len(hosts))
        pairs = stride_flows(hosts, 1, sizes[: len(hosts)] * reps,
                             deadlines=None)
        specs = pairs[:n_flows]
    elif pattern == "Stride(N/2)":
        reps = -(-n_flows // len(hosts))
        pairs = stride_flows(hosts, len(hosts) // 2,
                             sizes[: len(hosts)] * reps, deadlines=None)
        specs = pairs[:n_flows]
    elif pattern == "Staggered(0.7)":
        specs = staggered_flows(tree, sizes, p_local=0.7, rng=rng)
    elif pattern == "Staggered(0.3)":
        specs = staggered_flows(tree, sizes, p_local=0.3, rng=rng)
    elif pattern == "RandomPermutation":
        rounds = -(-n_flows // len(hosts))
        needed = rounds * len(hosts)
        all_sizes = (sizes * (needed // len(sizes) + 1))[:needed]
        specs = random_permutation_flows(hosts, all_sizes, rng=rng)[:n_flows]
    else:
        raise ExperimentError(f"unknown pattern {pattern!r}")
    # attach sizes/deadlines uniformly for the sliced patterns
    out = []
    for i, spec in enumerate(specs[:n_flows]):
        out.append(spec.with_(
            fid=i, size_bytes=sizes[i],
            deadline=deadlines[i] if deadlines else None,
        ))
    return out


@register_workload("fig4.pattern")
def _build_pattern(topology, seed: int, pattern: str, n_flows: int,
                   mean_size: float = 100 * KBYTE,
                   mean_deadline: Optional[float] = None) -> List[FlowSpec]:
    return pattern_flows(pattern, n_flows, seed, mean_size, mean_deadline)


def _spec(protocol: str, pattern: str, n_flows: int, seed: int,
          mean_deadline: Optional[float],
          sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig4.pattern", {
            "pattern": pattern,
            "n_flows": n_flows,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        seed=seed,
        sim_deadline=sim_deadline,
    )


def run_fig4a(patterns: Sequence[str] = PATTERNS,
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1,),
              mean_deadline: float = 20 * MSEC,
              target: float = 0.99,
              hi: int = 32) -> Dict[str, Dict[str, float]]:
    """Normalized max flows at 99 % application throughput."""
    results: Dict[str, Dict[str, float]] = {}
    for pattern in patterns:
        absolute: Dict[str, float] = {}
        for protocol in protocols:
            def ok(n: int, _p=protocol, _pat=pattern) -> bool:
                collectors = run_scenarios(
                    _spec(_p, _pat, n, seed, mean_deadline, 2.0)
                    for seed in seeds
                )
                values = [m.application_throughput() for m in collectors]
                return mean(values) >= target

            absolute[protocol] = binary_search_max(ok, hi=hi)
        results[pattern] = normalize(absolute, "PDQ(Full)")
    return results


def run_fig4b(patterns: Sequence[str] = PATTERNS,
              protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 12) -> Dict[str, Dict[str, float]]:
    """Mean FCT normalized to PDQ(Full), deadline-unconstrained."""
    grid = [(pattern, p, s)
            for pattern in patterns for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, pattern, n_flows, s, None, 4.0) for (pattern, p, s) in grid
    )
    by_cell: Dict[tuple, List[float]] = {}
    for (pattern, p, _s), metrics in zip(grid, collectors):
        by_cell.setdefault((pattern, p), []).append(metrics.mean_fct())
    results: Dict[str, Dict[str, float]] = {}
    for pattern in patterns:
        absolute = {p: mean(by_cell[(pattern, p)]) for p in protocols}
        results[pattern] = normalize(absolute, "PDQ(Full)")
    return results
