"""Fig 5: realistic datacenter workloads.

(a) VL2-like workload: sustainable short-flow arrival rate at 99 %
    application throughput vs mean deadline
(b) VL2-like workload: long-flow FCT normalized to PDQ(Full)
(c) EDU1-like workload (synthetic trace -> Bro-like summaries): FCT
    normalized to PDQ(Full)

All three panels are declared through the Experiment API; the
``run_fig5*`` functions are thin wrappers kept for their historical
signatures.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    register_experiment,
    run_panel,
)
from repro.experiments.reducers import register_reducer
from repro.experiments.scenario import normalize
from repro.topology.single_rooted import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.arrivals import poisson_arrivals
from repro.workload.deadlines import exponential_deadlines
from repro.workload.edu import edu1_flow_summaries
from repro.workload.flow import FlowSpec
from repro.workload.vl2 import SHORT_FLOW_CUTOFF, vl2_flow_sizes

DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "D3", "RCP", "TCP")
TOPOLOGY = TopologySpec("single_rooted")


def vl2_workload(rate_per_sec: float, duration: float, seed: int,
                 mean_deadline: float = 20 * MSEC,
                 size_scale: float = 1.0,
                 cap_bytes: int = 1_000_000) -> list[FlowSpec]:
    """Poisson flow arrivals with VL2-like sizes between random host pairs;
    short flows (< 40 KB) carry deadlines. ``cap_bytes`` truncates the
    elephant tail so packet-level runs stay tractable (the deadline metric
    only concerns the short flows; elephants are background load)."""
    tree = SingleRootedTree()
    hosts = [f"h{i}" for i in range(tree.n_servers)]
    rng = spawn_rng(seed, "fig5:vl2")
    arrivals = poisson_arrivals(rate_per_sec, duration, rng=rng)
    sizes = vl2_flow_sizes(len(arrivals), rng=rng, scale=size_scale,
                           cap_bytes=cap_bytes)
    deadlines = exponential_deadlines(len(arrivals), mean=mean_deadline,
                                      rng=rng)
    flows = []
    for i, (t, size) in enumerate(zip(arrivals, sizes, strict=True)):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        deadline = (deadlines[i]
                    if size < SHORT_FLOW_CUTOFF * size_scale else None)
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=size, arrival=t, deadline=deadline))
    return flows


@register_workload("fig5.vl2")
def _build_vl2(topology, seed: int, rate_per_sec: float, duration: float,
               mean_deadline: float = 20 * MSEC, size_scale: float = 1.0,
               cap_bytes: int = 1_000_000) -> list[FlowSpec]:
    return vl2_workload(rate_per_sec, duration, seed, mean_deadline,
                        size_scale, cap_bytes)


@register_workload("fig5.edu1")
def _build_edu1(topology, seed: int, duration: float,
                flows_per_second: float) -> list[FlowSpec]:
    hosts = [f"h{i}" for i in range(topology.n_servers)]
    return edu1_flow_summaries(hosts, duration, flows_per_second, rng=seed)


def _vl2_base(rate_per_sec: float, duration: float, mean_deadline: float,
              sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=DEFAULT_PROTOCOLS[0],
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig5.vl2", {
            "rate_per_sec": rate_per_sec,
            "duration": duration,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        sim_deadline=sim_deadline,
    )


@register_reducer("fig5.long_fct")
def _reduce_long_fct(run, long_cutoff: int = 100 * KBYTE,
                     reference: str = "PDQ(Full)") -> dict:
    """Long-flow mean FCT per protocol, normalized to the reference.

    The collector carries each FlowSpec, so the long-flow subset needs
    no driver-side workload rebuild."""
    by_protocol = {}
    for combo, _spec, metrics in run.rows:
        long_fids = [
            r.spec.fid for r in metrics.all_records()
            if r.spec.size_bytes >= long_cutoff
        ]
        by_protocol.setdefault(combo["protocol"], []).append(
            metrics.mean_fct(only=long_fids)
        )
    absolute = {p: mean(values) for p, values in by_protocol.items()}
    return normalize(absolute, reference)


def fig5a_panel(mean_deadlines: Sequence[float] = (20 * MSEC, 40 * MSEC),
                protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP", "TCP"),
                seeds: Sequence[int] = (1,),
                duration: float = 0.04,
                rate_step: float = 1000.0,
                hi_steps: int = 10,
                target: float = 0.99) -> Panel:
    # the search is capped at hi_steps * rate_step (grow=False): the
    # offered load already far exceeds the fabric there. A probe whose
    # workload draws no deadline flow passes trivially
    # (require_deadlines), keeping the no-deadline early exit
    # driver-side where building the workload is cheap.
    return Panel(
        name="fig5a",
        title="sustainable arrival rate at 99 % application throughput",
        base=_vl2_base(rate_step, duration, mean_deadlines[0],
                       duration + 1.0),
        axes=(("workload.mean_deadline", tuple(mean_deadlines)),
              ("protocol", tuple(protocols))),
        search=SearchSpec(axis="workload.rate_per_sec", target=target,
                          metric="application_throughput",
                          seeds=tuple(seeds), hi=hi_steps, grow=False,
                          scale=rate_step, require_deadlines=True),
        reducer="series",
        reducer_params={"series": "protocol",
                        "x": "workload.mean_deadline"},
        wraps="repro.experiments.fig5:run_fig5a",
    )


def fig5b_panel(protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1, 2),
                rate_per_sec: float = 2000.0,
                duration: float = 0.03,
                long_cutoff: int = 100 * KBYTE) -> Panel:
    return Panel(
        name="fig5b",
        title="long-flow FCT normalized to PDQ(Full) under the VL2 mix",
        base=_vl2_base(rate_per_sec, duration, 20 * MSEC, duration + 2.0),
        axes=(("protocol", tuple(protocols)), ("seed", tuple(seeds))),
        reducer="fig5.long_fct",
        reducer_params={"long_cutoff": long_cutoff},
        wraps="repro.experiments.fig5:run_fig5b",
    )


def fig5c_panel(protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                seeds: Sequence[int] = (1, 2),
                duration: float = 0.05,
                flows_per_second: float = 2000.0) -> Panel:
    return Panel(
        name="fig5c",
        title="EDU1-like trace workload: FCT normalized to PDQ(Full)",
        base=ScenarioSpec(
            protocol=DEFAULT_PROTOCOLS[0],
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig5.edu1", {
                "duration": duration,
                "flows_per_second": flows_per_second,
            }),
            engine="packet",
            sim_deadline=duration + 2.0,
        ),
        axes=(("protocol", tuple(protocols)), ("seed", tuple(seeds))),
        reducer="series",
        reducer_params={"x": "protocol", "metric": "mean_fct",
                        "normalize_to": "PDQ(Full)"},
        wraps="repro.experiments.fig5:run_fig5c",
    )


def run_fig5a(*args, **kwargs):
    """Sustainable arrival rate (flows/sec) at 99 % application
    throughput of the deadline-constrained short flows."""
    return run_panel(fig5a_panel(*args, **kwargs))


def run_fig5b(*args, **kwargs):
    """Long-flow mean FCT normalized to PDQ(Full) under the VL2 mix."""
    return run_panel(fig5b_panel(*args, **kwargs))


def run_fig5c(*args, **kwargs):
    """EDU1-like trace-driven workload: mean FCT normalized to PDQ(Full)."""
    return run_panel(fig5c_panel(*args, **kwargs))


register_experiment(Experiment(
    name="fig5",
    title="realistic datacenter workloads (VL2 mix, EDU1 trace)",
    panels=(fig5a_panel(), fig5b_panel(), fig5c_panel()),
))
