"""Fig 5: realistic datacenter workloads.

(a) VL2-like workload: sustainable short-flow arrival rate at 99 %
    application throughput vs mean deadline
(b) VL2-like workload: long-flow FCT normalized to PDQ(Full)
(c) EDU1-like workload (synthetic trace -> Bro-like summaries): FCT
    normalized to PDQ(Full)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.experiments.scenario import normalize
from repro.experiments.search import binary_search_max
from repro.topology.single_rooted import SingleRootedTree
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.arrivals import poisson_arrivals
from repro.workload.deadlines import exponential_deadlines
from repro.workload.edu import edu1_flow_summaries
from repro.workload.flow import FlowSpec
from repro.workload.vl2 import SHORT_FLOW_CUTOFF, vl2_flow_sizes

DEFAULT_PROTOCOLS = ("PDQ(Full)", "PDQ(ES)", "PDQ(Basic)", "D3", "RCP", "TCP")
TOPOLOGY = TopologySpec("single_rooted")


def vl2_workload(rate_per_sec: float, duration: float, seed: int,
                 mean_deadline: float = 20 * MSEC,
                 size_scale: float = 1.0,
                 cap_bytes: int = 1_000_000) -> List[FlowSpec]:
    """Poisson flow arrivals with VL2-like sizes between random host pairs;
    short flows (< 40 KB) carry deadlines. ``cap_bytes`` truncates the
    elephant tail so packet-level runs stay tractable (the deadline metric
    only concerns the short flows; elephants are background load)."""
    tree = SingleRootedTree()
    hosts = [f"h{i}" for i in range(tree.n_servers)]
    rng = spawn_rng(seed, "fig5:vl2")
    arrivals = poisson_arrivals(rate_per_sec, duration, rng=rng)
    sizes = vl2_flow_sizes(len(arrivals), rng=rng, scale=size_scale,
                           cap_bytes=cap_bytes)
    deadlines = exponential_deadlines(len(arrivals), mean=mean_deadline,
                                      rng=rng)
    flows = []
    for i, (t, size) in enumerate(zip(arrivals, sizes)):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        deadline = (deadlines[i]
                    if size < SHORT_FLOW_CUTOFF * size_scale else None)
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=size, arrival=t, deadline=deadline))
    return flows


@register_workload("fig5.vl2")
def _build_vl2(topology, seed: int, rate_per_sec: float, duration: float,
               mean_deadline: float = 20 * MSEC, size_scale: float = 1.0,
               cap_bytes: int = 1_000_000) -> List[FlowSpec]:
    return vl2_workload(rate_per_sec, duration, seed, mean_deadline,
                        size_scale, cap_bytes)


@register_workload("fig5.edu1")
def _build_edu1(topology, seed: int, duration: float,
                flows_per_second: float) -> List[FlowSpec]:
    hosts = [f"h{i}" for i in range(topology.n_servers)]
    return edu1_flow_summaries(hosts, duration, flows_per_second, rng=seed)


def _vl2_spec(protocol: str, rate_per_sec: float, duration: float, seed: int,
              mean_deadline: float, sim_deadline: float) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig5.vl2", {
            "rate_per_sec": rate_per_sec,
            "duration": duration,
            "mean_deadline": mean_deadline,
        }),
        engine="packet",
        seed=seed,
        sim_deadline=sim_deadline,
    )


def run_fig5a(mean_deadlines: Sequence[float] = (20 * MSEC, 40 * MSEC),
              protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP", "TCP"),
              seeds: Sequence[int] = (1,),
              duration: float = 0.04,
              rate_step: float = 1000.0,
              hi_steps: int = 10,
              target: float = 0.99) -> Dict[str, Dict[float, float]]:
    """Sustainable arrival rate (flows/sec) at 99 % application throughput
    of the deadline-constrained short flows. The search is capped at
    ``hi_steps * rate_step`` (the offered load already far exceeds the
    fabric there)."""
    results: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    for deadline in mean_deadlines:
        for protocol in protocols:
            def ok(steps: int, _p=protocol, _d=deadline) -> bool:
                # building the workload is cheap; simulating it is not,
                # so the no-deadline early exit stays driver-side
                specs = []
                for seed in seeds:
                    flows = vl2_workload(steps * rate_step, duration, seed,
                                         mean_deadline=_d)
                    if not any(f.has_deadline for f in flows):
                        return True
                    specs.append(_vl2_spec(_p, steps * rate_step, duration,
                                           seed, _d, duration + 1.0))
                values = [
                    m.application_throughput() for m in run_scenarios(specs)
                ]
                return mean(values) >= target

            steps = binary_search_max(ok, hi=hi_steps, grow=False)
            results[protocol][deadline] = steps * rate_step
    return results


def run_fig5b(protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              rate_per_sec: float = 2000.0,
              duration: float = 0.03,
              long_cutoff: int = 100 * KBYTE) -> Dict[str, float]:
    """Long-flow mean FCT normalized to PDQ(Full) under the VL2 mix."""
    grid = [(p, s) for p in protocols for s in seeds]
    collectors = run_scenarios(
        _vl2_spec(p, rate_per_sec, duration, s, 20 * MSEC, duration + 2.0)
        for (p, s) in grid
    )
    by_protocol: Dict[str, List[float]] = {}
    for (p, _s), metrics in zip(grid, collectors):
        # the collector carries each FlowSpec, so the long-flow subset
        # needs no driver-side workload rebuild
        long_fids = [
            r.spec.fid for r in metrics.all_records()
            if r.spec.size_bytes >= long_cutoff
        ]
        by_protocol.setdefault(p, []).append(
            metrics.mean_fct(only=long_fids)
        )
    absolute = {p: mean(values) for p, values in by_protocol.items()}
    return normalize(absolute, "PDQ(Full)")


def run_fig5c(protocols: Sequence[str] = DEFAULT_PROTOCOLS,
              seeds: Sequence[int] = (1, 2),
              duration: float = 0.05,
              flows_per_second: float = 2000.0) -> Dict[str, float]:
    """EDU1-like trace-driven workload: mean FCT normalized to PDQ(Full)."""
    grid = [(p, s) for p in protocols for s in seeds]
    collectors = run_scenarios(
        ScenarioSpec(
            protocol=p,
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig5.edu1", {
                "duration": duration,
                "flows_per_second": flows_per_second,
            }),
            engine="packet",
            seed=s,
            sim_deadline=duration + 2.0,
        )
        for (p, s) in grid
    )
    by_protocol: Dict[str, List[float]] = {}
    for (p, _s), metrics in zip(grid, collectors):
        by_protocol.setdefault(p, []).append(metrics.mean_fct())
    absolute = {p: mean(values) for p, values in by_protocol.items()}
    return normalize(absolute, "PDQ(Full)")
