"""Fig 6: convergence dynamics (seamless flow switching).

Five ~1 MB flows start together; PDQ should complete them serially in SJF
order, finish around 42 ms (raw 40 ms + ~3 % header overhead + 2-RTT
initialization), keep the bottleneck ~100 % utilized at switchovers, hold
only a few packets of queue, and drop nothing.

This panel samples per-flow throughput *inside* the run, which the
scenario-grid model cannot express, so it registers a custom panel
runner on the Experiment API surface.
"""

from __future__ import annotations


from repro.core.config import PdqConfig
from repro.core.stack import PdqStack
from repro.events.timers import PeriodicTimer
from repro.experiments.api import (
    Experiment,
    Panel,
    bind_runner_params,
    register_experiment,
    register_panel_runner,
    run_panel,
)
from repro.net.network import Network
from repro.topology.single_bottleneck import SingleBottleneck
from repro.units import MBYTE, MSEC
from repro.workload.flow import FlowSpec


@register_panel_runner("fig6.convergence")
def _run_convergence(n_flows: int = 5, flow_size: int = 1 * MBYTE,
                     sample_interval: float = 1 * MSEC,
                     sim_deadline: float = 0.2) -> dict[str, object]:
    topo = SingleBottleneck(n_flows)
    net = Network(topo, PdqStack(PdqConfig.full()))
    monitor = net.monitor("sw0", "recv", interval=sample_interval)
    flows = [
        # slight size perturbation: lower fid = slightly smaller = more
        # critical (paper's setup)
        FlowSpec(fid=i, src=f"send{i}", dst="recv",
                 size_bytes=flow_size + i * 1_000)
        for i in range(n_flows)
    ]
    net.launch(flows)

    # sample each flow's delivered bytes to derive per-flow throughput
    delivered_samples: list[tuple[float, list[int]]] = []

    def sample() -> None:
        delivered_samples.append((
            net.sim.now,
            [net.metrics.record(f.fid).bytes_delivered for f in flows],
        ))

    sampler = PeriodicTimer(net.sim, sample_interval, sample)
    sampler.start()
    net.run_until_quiet(deadline=sim_deadline)
    sampler.stop()
    monitor.stop()

    throughput_series: list[tuple[float, list[float]]] = []
    for i in range(1, len(delivered_samples)):
        t0, prev = delivered_samples[i - 1]
        t1, cur = delivered_samples[i]
        dt = t1 - t0
        if dt <= 0:
            continue
        throughput_series.append(
            (t1, [(c - p) * 8.0 / dt for p, c in zip(prev, cur, strict=True)])
        )

    completions = sorted(
        r.fct for r in net.metrics.all_records() if r.completed
    )
    last = completions[-1] if completions else 0.0
    return {
        "completions": completions,
        "total_time": last,
        "mean_utilization": monitor.mean_utilization(2 * MSEC,
                                                     max(last - 2e-3, 1e-3)),
        "max_queue_packets": monitor.max_queue_packets(),
        "drops": net.total_drops(),
        "throughput_series": throughput_series,
        "utilization_series": monitor.utilization,
        "queue_series": monitor.queue_packets,
        "paper": {
            "total_time": 42 * MSEC,
            "utilization": "~100%",
            "queue": "a few packets",
            "drops": 0,
        },
    }


def fig6_panel(*args, **params) -> Panel:
    """Parameters: ``n_flows``, ``flow_size``, ``sample_interval``,
    ``sim_deadline`` (see the panel runner's defaults)."""
    return Panel(
        name="fig6",
        title="convergence dynamics: seamless flow switching",
        runner="fig6.convergence",
        params=bind_runner_params(_run_convergence, args, params),
        wraps="repro.experiments.fig6:run_fig6",
    )


def run_fig6(*args, **params) -> dict[str, object]:
    """Returns per-flow throughput series, utilization/queue series and
    the headline summary values."""
    return run_panel(fig6_panel(*args, **params))


register_experiment(Experiment(
    name="fig6",
    title="convergence dynamics (seamless flow switching)",
    panels=(fig6_panel(),),
))
