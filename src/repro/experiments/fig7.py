"""Fig 7: robustness to bursty traffic.

A long-lived flow starts at t=0; 50 short (20 KB) flows all start at
t=10 ms. PDQ should preempt the long flow, serve the burst with high
utilization (paper: 91.7 % average during the preemption period), keep the
queue around 5-10 packets, and resume the long flow afterwards.

Like fig 6, this panel samples throughput inside the run, so it
registers a custom panel runner on the Experiment API surface.
"""

from __future__ import annotations


from repro.core.config import PdqConfig
from repro.core.stack import PdqStack
from repro.events.timers import PeriodicTimer
from repro.experiments.api import (
    Experiment,
    Panel,
    bind_runner_params,
    register_experiment,
    register_panel_runner,
    run_panel,
)
from repro.net.network import Network
from repro.topology.single_bottleneck import SingleBottleneck
from repro.units import KBYTE, MBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.workload.flow import FlowSpec


@register_panel_runner("fig7.burst")
def _run_burst(n_short: int = 50, short_size: int = 20 * KBYTE,
               long_size: int = 6 * MBYTE, burst_at: float = 10 * MSEC,
               sample_interval: float = 1 * MSEC,
               sim_deadline: float = 0.3, seed: int = 1) -> dict[str, object]:
    topo = SingleBottleneck(n_short + 1)
    net = Network(topo, PdqStack(PdqConfig.full()))
    monitor = net.monitor("sw0", "recv", interval=sample_interval)
    rng = spawn_rng(seed, "fig7")
    flows = [FlowSpec(fid=0, src="send0", dst="recv", size_bytes=long_size)]
    for i in range(n_short):
        # small random perturbation, as in the paper
        size = short_size + int(rng.integers(0, 512))
        flows.append(FlowSpec(fid=i + 1, src=f"send{i + 1}", dst="recv",
                              size_bytes=size, arrival=burst_at))
    net.launch(flows)

    long_samples: list[tuple] = []

    def sample() -> None:
        record = net.metrics.record(0)
        long_samples.append((net.sim.now, record.bytes_delivered))

    sampler = PeriodicTimer(net.sim, sample_interval, sample)
    sampler.start()
    net.run_until_quiet(deadline=sim_deadline)
    sampler.stop()
    monitor.stop()

    long_throughput = []
    for i in range(1, len(long_samples)):
        t0, b0 = long_samples[i - 1]
        t1, b1 = long_samples[i]
        if t1 > t0:
            long_throughput.append((t1, (b1 - b0) * 8.0 / (t1 - t0)))

    short_records = [net.metrics.record(i + 1) for i in range(n_short)]
    short_completions = sorted(
        r.completion_time for r in short_records if r.completed
    )
    preemption_end = short_completions[-1] if short_completions else burst_at
    return {
        "long_flow_fct": net.metrics.record(0).fct,
        "short_completed": sum(1 for r in short_records if r.completed),
        "preemption_period": (burst_at, preemption_end),
        "utilization_during_preemption": monitor.mean_utilization(
            burst_at, preemption_end
        ),
        "max_queue_packets_during_preemption": monitor.max_queue_packets(
            burst_at, preemption_end
        ),
        # the 50-SYN arrival instant itself causes a brief admission
        # transient; the steady preemption-period queue is the paper's
        # 5-10 packet figure
        "max_queue_packets_steady": monitor.max_queue_packets(
            burst_at + 2e-3, preemption_end
        ),
        "drops": net.total_drops(),
        "long_throughput_series": long_throughput,
        "utilization_series": monitor.utilization,
        "queue_series": monitor.queue_packets,
        "paper": {
            "utilization_during_preemption": 0.917,
            "queue_packets": "5-10",
        },
    }


def fig7_panel(*args, **params) -> Panel:
    """Parameters: ``n_short``, ``short_size``, ``long_size``,
    ``burst_at``, ``sample_interval``, ``sim_deadline``, ``seed``."""
    return Panel(
        name="fig7",
        title="robustness to bursty traffic",
        runner="fig7.burst",
        params=bind_runner_params(_run_burst, args, params),
        wraps="repro.experiments.fig7:run_fig7",
    )


def run_fig7(*args, **params) -> dict[str, object]:
    return run_panel(fig7_panel(*args, **params))


register_experiment(Experiment(
    name="fig7",
    title="robustness to bursty traffic",
    panels=(fig7_panel(),),
))
