"""Fig 8: network scale, topology generality, and the packet-level vs
flow-level cross-validation.

(a) fat-tree, deadline flows: max flows at 99 % application throughput vs
    network size (packet and flow level)
(b) fat-tree, no deadlines: mean FCT vs network size
(c,d) BCube / Jellyfish: mean FCT vs network size
(e) per-flow CDF of RCP FCT / PDQ FCT (flow level, ~128 servers)

Panels (a)-(d) are declarative grids/searches on the Experiment API
(the engine is just another axis, and the ``exclude`` rule expresses
"TCP has no flow-level model"); (e) pairs per-flow FCTs across two runs,
so it registers a custom panel runner.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.campaign.registry import build_topology
from repro.errors import ExperimentError
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    bind_runner_params,
    register_experiment,
    register_panel_runner,
    run_panel,
)
from repro.experiments.reducers import register_reducer
from repro.topology.base import Topology
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import cdf_points, fraction_at_most
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import random_permutation_flows
from repro.workload.sizes import uniform_sizes


FAMILIES = ("fattree", "bcube", "jellyfish")
_FAMILY_PANELS = {"fattree": "fig8b", "bcube": "fig8c", "jellyfish": "fig8d"}


def _topo_spec(family: str, n_servers: int) -> TopologySpec:
    if family not in FAMILIES:
        raise ExperimentError(f"unknown topology family {family!r}")
    return TopologySpec(family, {"n_servers": n_servers})


def topology_for(family: str, n_servers: int) -> Topology:
    spec = _topo_spec(family, n_servers)
    return build_topology(spec.kind, spec.params)


def permutation_workload(topology: Topology, flows_per_server: int,
                         seed: int, mean_size: float = 100 * KBYTE,
                         mean_deadline=None) -> list[FlowSpec]:
    hosts = topology.hosts
    n = len(hosts) * flows_per_server
    rng = spawn_rng(seed, "fig8")
    sizes = uniform_sizes(n, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n, mean=mean_deadline, rng=rng)
    return random_permutation_flows(hosts, sizes, deadlines=deadlines,
                                    rng=rng)


def _subset_deadline_workload(topology: Topology, n_flows: int,
                              seed: int, mean_deadline: float) -> list[FlowSpec]:
    """n random src->dst deadline flows (for the 99 %-throughput search)."""
    hosts = topology.hosts
    rng = spawn_rng(seed, "fig8a")
    sizes = uniform_sizes(n_flows, 100 * KBYTE, rng=rng)
    deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    flows = []
    for i in range(n_flows):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=sizes[i], deadline=deadlines[i]))
    return flows


@register_workload("fig8.permutation")
def _build_permutation(topology, seed: int, flows_per_server: int,
                       mean_size: float = 100 * KBYTE,
                       mean_deadline=None) -> list[FlowSpec]:
    return permutation_workload(topology, flows_per_server, seed, mean_size,
                                mean_deadline)


@register_workload("fig8.random_pairs")
def _build_random_pairs(topology, seed: int, n_flows: int,
                        mean_deadline: float) -> list[FlowSpec]:
    return _subset_deadline_workload(topology, n_flows, seed, mean_deadline)


@register_reducer("fig8.per_level")
def _reduce_per_level(run, metric: str = "mean_fct") -> dict:
    """{'<protocol>/<level>': {n_servers: value}} — searched maxima or
    the mean of ``metric`` over seeds."""
    cells = run.cell_values(
        ("topology.n_servers", "engine", "protocol"),
        metric,
    )
    results: dict[str, dict[int, float]] = {}
    for (n_servers, level, protocol), value in cells.items():
        results.setdefault(f"{protocol}/{level}", {})[n_servers] = value
    return results


def fig8a_panel(sizes: Sequence[int] = (16, 54),
                protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP"),
                levels: Sequence[str] = ("packet", "flow"),
                seeds: Sequence[int] = (1,),
                mean_deadline: float = 20 * MSEC,
                target: float = 0.99,
                hi: int = 64) -> Panel:
    return Panel(
        name="fig8a",
        title="max deadline flows at 99 % throughput vs fat-tree size",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=_topo_spec("fattree", sizes[0]),
            workload=WorkloadSpec("fig8.random_pairs", {
                "n_flows": 1,
                "mean_deadline": mean_deadline,
            }),
            engine=levels[0],
            sim_deadline=2.0,
        ),
        axes=(("topology.n_servers", tuple(sizes)),
              ("engine", tuple(levels)),
              ("protocol", tuple(protocols))),
        search=SearchSpec(axis="workload.n_flows", target=target,
                          metric="application_throughput",
                          seeds=tuple(seeds), hi=hi),
        reducer="fig8.per_level",
        wraps="repro.experiments.fig8:run_fig8a",
    )


def fct_vs_size_panel(family: str,
                      sizes: Sequence[int] = (16, 54),
                      protocols: Sequence[str] = ("PDQ(Full)", "RCP"),
                      levels: Sequence[str] = ("packet", "flow"),
                      seeds: Sequence[int] = (1,),
                      flows_per_server: int = 2) -> Panel:
    return Panel(
        name=_FAMILY_PANELS.get(family, f"fig8-{family}"),
        title=f"mean FCT vs network size ({family})",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=_topo_spec(family, sizes[0]),
            workload=WorkloadSpec("fig8.permutation", {
                "flows_per_server": flows_per_server,
            }),
            engine=levels[0],
            sim_deadline=4.0,
        ),
        axes=(("topology.n_servers", tuple(sizes)),
              ("engine", tuple(levels)),
              ("protocol", tuple(protocols)),
              ("seed", tuple(seeds))),
        # TCP only exists at packet level
        exclude=({"engine": "flow", "protocol": "TCP"},),
        reducer="fig8.per_level",
        reducer_params={"metric": "mean_fct"},
        wraps="repro.experiments.fig8:run_fct_vs_size",
        wraps_kwargs={"family": family},
    )


@register_panel_runner("fig8.rcp_pdq_cdf")
def _run_cdf(n_servers: int = 128, flows_per_server: int = 2,
             seeds: Sequence[int] = (1,)) -> dict[str, object]:
    def spec_for(protocol: str, seed: int) -> ScenarioSpec:
        return ScenarioSpec(
            protocol=protocol,
            topology=_topo_spec("fattree", n_servers),
            workload=WorkloadSpec("fig8.permutation", {
                "flows_per_server": flows_per_server,
            }),
            engine="flow",
            seed=seed,
            sim_deadline=10.0,
        )

    # one flat grid so all seeds' runs fan out together
    collectors = run_scenarios(
        spec_for(protocol, seed)
        for seed in seeds for protocol in ("PDQ(Full)", "RCP")
    )
    ratios: list[float] = []
    for i, _seed in enumerate(seeds):
        pdq = collectors[2 * i].fct_by_fid()
        rcp = collectors[2 * i + 1].fct_by_fid()
        for fid, pdq_fct in pdq.items():
            rcp_fct = rcp.get(fid)
            if rcp_fct is not None and pdq_fct > 0:
                ratios.append(rcp_fct / pdq_fct)
    if not ratios:
        raise ExperimentError("no comparable flows")
    return {
        "cdf": cdf_points(ratios),
        "fraction_pdq_2x_faster": 1.0 - fraction_at_most(ratios, 2.0),
        "fraction_pdq_slower": fraction_at_most(ratios, 1.0),
        "worst_inflation": 1.0 / min(ratios),
        "paper": {
            "fraction_pdq_2x_faster": "~40%",
            "fraction_pdq_slower": "5-15%",
            "worst_inflation": 2.57,
        },
    }


def fig8e_panel(*args, **params) -> Panel:
    """Parameters: ``n_servers``, ``flows_per_server``, ``seeds``."""
    return Panel(
        name="fig8e",
        title="CDF of per-flow RCP FCT / PDQ FCT (flow level)",
        runner="fig8.rcp_pdq_cdf",
        params=bind_runner_params(_run_cdf, args, params),
        wraps="repro.experiments.fig8:run_fig8e",
    )


def run_fig8a(*args, **kwargs):
    """Max deadline flows at 99 % app throughput; keys are
    '<protocol>/<level>'."""
    return run_panel(fig8a_panel(*args, **kwargs))


def run_fct_vs_size(family: str, *args, **kwargs):
    """Fig 8b/c/d: mean FCT (seconds) vs network size for one topology
    family; keys are '<protocol>/<level>'. TCP only exists at packet
    level."""
    return run_panel(fct_vs_size_panel(family, *args, **kwargs))


def run_fig8e(*args, **params):
    """CDF of per-flow RCP FCT / PDQ FCT ratios (flow level)."""
    return run_panel(fig8e_panel(*args, **params))


register_experiment(Experiment(
    name="fig8",
    title="network scale, topology generality, cross-validation",
    panels=(fig8a_panel(), fct_vs_size_panel("fattree"),
            fct_vs_size_panel("bcube"), fct_vs_size_panel("jellyfish"),
            fig8e_panel()),
))
