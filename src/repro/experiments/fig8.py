"""Fig 8: network scale, topology generality, and the packet-level vs
flow-level cross-validation.

(a) fat-tree, deadline flows: max flows at 99 % application throughput vs
    network size (packet and flow level)
(b) fat-tree, no deadlines: mean FCT vs network size
(c,d) BCube / Jellyfish: mean FCT vs network size
(e) per-flow CDF of RCP FCT / PDQ FCT (flow level, ~128 servers)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.scenario import run_flow_level, run_packet_level
from repro.experiments.search import binary_search_max
from repro.topology.base import Topology
from repro.topology.bcube import BCube
from repro.topology.fattree import FatTree
from repro.topology.jellyfish import Jellyfish
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import cdf_points, fraction_at_most, mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import random_permutation_flows
from repro.workload.sizes import uniform_sizes


def topology_for(family: str, n_servers: int) -> Topology:
    if family == "fattree":
        return FatTree.for_servers(n_servers)
    if family == "bcube":
        n, k = 2, 1
        while 2 ** (k + 1) < n_servers:
            k += 1
        return BCube(n=2, k=k)
    if family == "jellyfish":
        return Jellyfish.for_servers(n_servers)
    raise ExperimentError(f"unknown topology family {family!r}")


def permutation_workload(topology: Topology, flows_per_server: int,
                         seed: int, mean_size: float = 100 * KBYTE,
                         mean_deadline=None) -> List[FlowSpec]:
    hosts = topology.hosts
    n = len(hosts) * flows_per_server
    rng = spawn_rng(seed, "fig8")
    sizes = uniform_sizes(n, mean_size, rng=rng)
    deadlines = None
    if mean_deadline is not None:
        deadlines = exponential_deadlines(n, mean=mean_deadline, rng=rng)
    return random_permutation_flows(hosts, sizes, deadlines=deadlines,
                                    rng=rng)


def _subset_deadline_workload(topology: Topology, n_flows: int,
                              seed: int, mean_deadline: float) -> List[FlowSpec]:
    """n random src->dst deadline flows (for the 99 %-throughput search)."""
    hosts = topology.hosts
    rng = spawn_rng(seed, "fig8a")
    sizes = uniform_sizes(n_flows, 100 * KBYTE, rng=rng)
    deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    flows = []
    for i in range(n_flows):
        src_i = int(rng.integers(len(hosts)))
        dst_i = int(rng.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        flows.append(FlowSpec(fid=i, src=hosts[src_i], dst=hosts[dst_i],
                              size_bytes=sizes[i], deadline=deadlines[i]))
    return flows


def run_fig8a(sizes: Sequence[int] = (16, 54),
              protocols: Sequence[str] = ("PDQ(Full)", "D3", "RCP"),
              levels: Sequence[str] = ("packet", "flow"),
              seeds: Sequence[int] = (1,),
              mean_deadline: float = 20 * MSEC,
              target: float = 0.99,
              hi: int = 64) -> Dict[str, Dict[int, int]]:
    """Max deadline flows at 99 % app throughput; keys are
    '<protocol>/<level>'."""
    results: Dict[str, Dict[int, int]] = {}
    for n_servers in sizes:
        topo = topology_for("fattree", n_servers)
        for level in levels:
            for protocol in protocols:
                key = f"{protocol}/{level}"
                results.setdefault(key, {})

                def ok(n: int, _p=protocol, _l=level) -> bool:
                    values = []
                    for seed in seeds:
                        flows = _subset_deadline_workload(
                            topo, n, seed, mean_deadline
                        )
                        runner = (run_packet_level if _l == "packet"
                                  else run_flow_level)
                        metrics = runner(topo, _p, flows, 2.0)
                        values.append(metrics.application_throughput())
                    return mean(values) >= target

                results[key][n_servers] = binary_search_max(ok, hi=hi)
    return results


def run_fct_vs_size(family: str,
                    sizes: Sequence[int] = (16, 54),
                    protocols: Sequence[str] = ("PDQ(Full)", "RCP"),
                    levels: Sequence[str] = ("packet", "flow"),
                    seeds: Sequence[int] = (1,),
                    flows_per_server: int = 2) -> Dict[str, Dict[int, float]]:
    """Fig 8b/c/d: mean FCT (seconds) vs network size for one topology
    family; keys are '<protocol>/<level>'. TCP only exists at packet
    level."""
    results: Dict[str, Dict[int, float]] = {}
    for n_servers in sizes:
        topo = topology_for(family, n_servers)
        for level in levels:
            for protocol in protocols:
                if level == "flow" and protocol == "TCP":
                    continue
                key = f"{protocol}/{level}"
                results.setdefault(key, {})
                values = []
                for seed in seeds:
                    flows = permutation_workload(topo, flows_per_server, seed)
                    runner = (run_packet_level if level == "packet"
                              else run_flow_level)
                    metrics = runner(topo, protocol, flows, 4.0)
                    values.append(metrics.mean_fct())
                results[key][n_servers] = mean(values)
    return results


def run_fig8e(n_servers: int = 128, flows_per_server: int = 2,
              seeds: Sequence[int] = (1,)) -> Dict[str, object]:
    """CDF of per-flow RCP FCT / PDQ FCT ratios (flow level)."""
    ratios: List[float] = []
    for seed in seeds:
        topo = topology_for("fattree", n_servers)
        flows = permutation_workload(topo, flows_per_server, seed)
        pdq = run_flow_level(topo, "PDQ(Full)", flows, 10.0).fct_by_fid()
        rcp = run_flow_level(topo, "RCP", flows, 10.0).fct_by_fid()
        for fid, pdq_fct in pdq.items():
            rcp_fct = rcp.get(fid)
            if rcp_fct is not None and pdq_fct > 0:
                ratios.append(rcp_fct / pdq_fct)
    if not ratios:
        raise ExperimentError("no comparable flows")
    return {
        "cdf": cdf_points(ratios),
        "fraction_pdq_2x_faster": 1.0 - fraction_at_most(ratios, 2.0),
        "fraction_pdq_slower": fraction_at_most(ratios, 1.0),
        "worst_inflation": 1.0 / min(ratios),
        "paper": {
            "fraction_pdq_2x_faster": "~40%",
            "fraction_pdq_slower": "5-15%",
            "worst_inflation": 2.57,
        },
    }
