"""Fig 9: resilience to packet loss.

Random wire loss at the bottleneck link, both directions, 0-3 %.

(a) deadline flows: max flows at 99 % application throughput vs loss rate
(b) no deadlines: mean FCT (normalized to PDQ without loss) vs loss rate

PDQ's explicit rate control should degrade mildly (paper: +11.4 % FCT at
3 % loss) while TCP suffers (+44.7 %).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.scenario import run_packet_level
from repro.experiments.search import binary_search_max
from repro.topology.single_bottleneck import SingleBottleneck
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes

N_SENDERS = 12


def _workload(n_flows: int, seed: int, deadline_constrained: bool,
              mean_size: float = 100 * KBYTE,
              mean_deadline: float = 20 * MSEC) -> List[FlowSpec]:
    topo_senders = [f"send{i}" for i in range(N_SENDERS)]
    rng = spawn_rng(seed, "fig9")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if deadline_constrained:
        deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    return aggregation_flows(topo_senders, "recv", sizes,
                             deadlines=deadlines, rng=rng)


def _run(protocol: str, flows, loss_rate: float, seed: int):
    return run_packet_level(
        SingleBottleneck(N_SENDERS), protocol, flows,
        sim_deadline=4.0,
        loss=("sw0", "recv", loss_rate, seed) if loss_rate > 0 else None,
    )


def run_fig9a(loss_rates: Sequence[float] = (0.0, 0.01, 0.03),
              protocols: Sequence[str] = ("PDQ(Full)", "TCP"),
              seeds: Sequence[int] = (1, 2),
              target: float = 0.99,
              hi: int = 32) -> Dict[str, Dict[float, int]]:
    """Max deadline flows at 99 % application throughput vs loss rate."""
    results: Dict[str, Dict[float, int]] = {p: {} for p in protocols}
    for loss in loss_rates:
        for protocol in protocols:
            def ok(n: int, _p=protocol, _l=loss) -> bool:
                return mean(
                    _run(_p, _workload(n, s, True), _l, s)
                    .application_throughput()
                    for s in seeds
                ) >= target

            results[protocol][loss] = binary_search_max(ok, hi=hi)
    return results


def run_fig9b(loss_rates: Sequence[float] = (0.0, 0.01, 0.03),
              protocols: Sequence[str] = ("PDQ(Full)", "TCP"),
              seeds: Sequence[int] = (1, 2),
              n_flows: int = 8) -> Dict[str, Dict[float, float]]:
    """Mean FCT normalized to PDQ(Full) at zero loss."""
    raw: Dict[str, Dict[float, float]] = {p: {} for p in protocols}
    for loss in loss_rates:
        for protocol in protocols:
            raw[protocol][loss] = mean(
                _run(protocol, _workload(n_flows, s, False), loss, s)
                .mean_fct()
                for s in seeds
            )
    base = raw["PDQ(Full)"][0.0]
    return {
        p: {l: v / base for l, v in series.items()}
        for p, series in raw.items()
    }
