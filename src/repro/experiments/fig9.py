"""Fig 9: resilience to packet loss.

Random wire loss at the bottleneck link, both directions, 0-3 %.

(a) deadline flows: max flows at 99 % application throughput vs loss rate
(b) no deadlines: mean FCT (normalized to PDQ without loss) vs loss rate

PDQ's explicit rate control should degrade mildly (paper: +11.4 % FCT at
3 % loss) while TCP suffers (+44.7 %).

Both panels register custom runners on the Experiment API surface: the
spec's ``loss`` tuple carries the scenario *seed* (so loss draws are
reproducible per seed), an axis coupling the declarative grid model
does not express. The runners still execute every scenario through the
ambient campaign runner, so they cache and fan out like any grid.

The legacy 4-tuple is now sugar over :mod:`repro.faults` loss rules —
the engine adapter turns it into one exact-name
:class:`~repro.faults.spec.LossRule`, proven byte-identical to the
pre-faults wire-loss path — so this figure exercises the generalized
loss machinery on every run. New studies should prefer the spec's
``faults`` field (glob rules, many links); the tuple stays for these
pinned panel hashes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    register_workload,
    run_scenarios,
)
from repro.experiments.api import (
    Experiment,
    Panel,
    bind_runner_params,
    register_experiment,
    register_panel_runner,
    run_panel,
)
from repro.experiments.search import binary_search_max
from repro.units import KBYTE, MSEC
from repro.utils.rng import spawn_rng
from repro.utils.stats import mean
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes

N_SENDERS = 12
TOPOLOGY = TopologySpec("single_bottleneck", {"n_senders": N_SENDERS})


def _workload(n_flows: int, seed: int, deadline_constrained: bool,
              mean_size: float = 100 * KBYTE,
              mean_deadline: float = 20 * MSEC) -> list[FlowSpec]:
    topo_senders = [f"send{i}" for i in range(N_SENDERS)]
    rng = spawn_rng(seed, "fig9")
    sizes = uniform_sizes(n_flows, mean_size, rng=rng)
    deadlines = None
    if deadline_constrained:
        deadlines = exponential_deadlines(n_flows, mean=mean_deadline, rng=rng)
    return aggregation_flows(topo_senders, "recv", sizes,
                             deadlines=deadlines, rng=rng)


@register_workload("fig9.aggregation")
def _build_workload(topology, seed: int, n_flows: int,
                    deadline_constrained: bool,
                    mean_size: float = 100 * KBYTE,
                    mean_deadline: float = 20 * MSEC) -> list[FlowSpec]:
    return _workload(n_flows, seed, deadline_constrained, mean_size,
                     mean_deadline)


def _spec(protocol: str, n_flows: int, deadline_constrained: bool,
          loss_rate: float, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        topology=TOPOLOGY,
        workload=WorkloadSpec("fig9.aggregation", {
            "n_flows": n_flows,
            "deadline_constrained": deadline_constrained,
        }),
        engine="packet",
        seed=seed,
        sim_deadline=4.0,
        loss=("sw0", "recv", loss_rate, seed) if loss_rate > 0 else None,
    )


@register_panel_runner("fig9.max_flows_vs_loss")
def _run_max_flows(loss_rates: Sequence[float] = (0.0, 0.01, 0.03),
                   protocols: Sequence[str] = ("PDQ(Full)", "TCP"),
                   seeds: Sequence[int] = (1, 2),
                   target: float = 0.99,
                   hi: int = 32) -> dict[str, dict[float, int]]:
    results: dict[str, dict[float, int]] = {p: {} for p in protocols}
    for loss in loss_rates:
        for protocol in protocols:
            def ok(n: int, _p=protocol, _l=loss) -> bool:
                collectors = run_scenarios(
                    _spec(_p, n, True, _l, s) for s in seeds
                )
                return mean(
                    m.application_throughput() for m in collectors
                ) >= target

            results[protocol][loss] = binary_search_max(ok, hi=hi)
    return results


@register_panel_runner("fig9.fct_vs_loss")
def _run_fct(loss_rates: Sequence[float] = (0.0, 0.01, 0.03),
             protocols: Sequence[str] = ("PDQ(Full)", "TCP"),
             seeds: Sequence[int] = (1, 2),
             n_flows: int = 8) -> dict[str, dict[float, float]]:
    raw: dict[str, dict[float, float]] = {p: {} for p in protocols}
    grid = [(loss, p, s)
            for loss in loss_rates for p in protocols for s in seeds]
    collectors = run_scenarios(
        _spec(p, n_flows, False, loss, s) for (loss, p, s) in grid
    )
    by_cell: dict[tuple, list[float]] = {}
    for (loss, p, _s), metrics in zip(grid, collectors, strict=True):
        by_cell.setdefault((p, loss), []).append(metrics.mean_fct())
    for (p, loss), values in by_cell.items():
        raw[p][loss] = mean(values)
    base = raw["PDQ(Full)"][0.0]
    return {
        p: {loss: v / base for loss, v in series.items()}
        for p, series in raw.items()
    }


def fig9a_panel(*args, **params) -> Panel:
    """Parameters: ``loss_rates``, ``protocols``, ``seeds``, ``target``,
    ``hi``."""
    return Panel(
        name="fig9a",
        title="max deadline flows at 99 % throughput vs loss rate",
        runner="fig9.max_flows_vs_loss",
        params=bind_runner_params(_run_max_flows, args, params),
        wraps="repro.experiments.fig9:run_fig9a",
    )


def fig9b_panel(*args, **params) -> Panel:
    """Parameters: ``loss_rates``, ``protocols``, ``seeds``, ``n_flows``."""
    return Panel(
        name="fig9b",
        title="mean FCT normalized to lossless PDQ vs loss rate",
        runner="fig9.fct_vs_loss",
        params=bind_runner_params(_run_fct, args, params),
        wraps="repro.experiments.fig9:run_fig9b",
    )


def run_fig9a(*args, **params):
    """Max deadline flows at 99 % application throughput vs loss rate."""
    return run_panel(fig9a_panel(*args, **params))


def run_fig9b(*args, **params):
    """Mean FCT normalized to PDQ(Full) at zero loss."""
    return run_panel(fig9b_panel(*args, **params))


register_experiment(Experiment(
    name="fig9",
    title="resilience to packet loss",
    panels=(fig9a_panel(), fig9b_panel()),
))
