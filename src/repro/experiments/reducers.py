"""Named reducers: executed scenario grids -> figure-style results.

A *metric* maps one :class:`~repro.metrics.collector.MetricsCollector`
to a scalar; a *reducer* maps a whole executed panel (a
:class:`~repro.experiments.api.PanelRun`) to the panel's result — the
rows/series a paper figure plots. Both are registered by name so
declarative :class:`~repro.experiments.api.Panel` specs (including
user-authored ``run-spec`` JSON files) can reference them as data.

Generic reducers live here; figure-specific ones (the reduction code
extracted from the ``figN`` modules — normalized-to-optimal FCT,
per-pattern normalization, aging tables) are registered by the figure
modules that own their constants. Lookup failures raise the registry's
close-match :class:`~repro.errors.CampaignError`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector

# -- metric registry ----------------------------------------------------------------

_METRICS: dict[str, Callable[[MetricsCollector], float]] = {}


def register_metric(name: str) -> Callable:
    """Decorator: register a collector -> scalar metric under ``name``."""

    def decorate(fn: Callable[[MetricsCollector], float]) -> Callable:
        _METRICS[name] = fn
        return fn

    return decorate


def metric_kinds() -> list[str]:
    return sorted(_METRICS)


def collector_metric(name: str) -> Callable[[MetricsCollector], float]:
    fn = _METRICS.get(name)
    if fn is None:
        from repro.campaign.registry import unknown_kind

        raise unknown_kind("metric", name, metric_kinds())
    return fn


@register_metric("mean_fct")
def _mean_fct(collector: MetricsCollector) -> float:
    return collector.mean_fct()


@register_metric("max_fct")
def _max_fct(collector: MetricsCollector) -> float:
    return collector.max_fct()


@register_metric("application_throughput")
def _application_throughput(collector: MetricsCollector) -> float:
    return collector.application_throughput()


@register_metric("completion_fraction")
def _completion_fraction(collector: MetricsCollector) -> float:
    """Fraction of flows that completed (1.0 for an empty workload)."""
    total = len(collector)
    if total == 0:
        return 1.0
    return collector.completed_count() / total


@register_metric("p50_fct")
def _p50_fct(collector: MetricsCollector) -> float:
    return collector.fct_percentile(50.0)


@register_metric("p95_fct")
def _p95_fct(collector: MetricsCollector) -> float:
    return collector.fct_percentile(95.0)


@register_metric("p99_fct")
def _p99_fct(collector: MetricsCollector) -> float:
    return collector.fct_percentile(99.0)


# fault-injection counters (repro.faults): harvested into
# ``collector.stats`` only when a scenario declares faults, so the
# metrics default to 0 on fault-free runs


@register_metric("reroutes")
def _reroutes(collector: MetricsCollector) -> float:
    """Flows re-pinned onto surviving paths after fault events."""
    return float(collector.stats.get("faults.reroutes", 0))


@register_metric("flows_rejected")
def _flows_rejected(collector: MetricsCollector) -> float:
    """Flows terminated because faults left them no route."""
    return float(collector.stats.get("faults.flows_rejected", 0))


@register_metric("fault_packets_dropped")
def _fault_packets_dropped(collector: MetricsCollector) -> float:
    """Packets released at failed links (packet engine only)."""
    return float(collector.stats.get("faults.packets_dropped", 0))


@register_metric("wire_losses")
def _wire_losses(collector: MetricsCollector) -> float:
    """Packets lost to random wire loss (loss rules / Fig 9)."""
    return float(collector.stats.get("net.wire_losses", 0))


# -- reducer registry ---------------------------------------------------------------

_REDUCERS: dict[str, Callable] = {}


def register_reducer(name: str) -> Callable:
    """Decorator: register a panel reducer under ``name``.

    A reducer takes the executed :class:`~repro.experiments.api.PanelRun`
    plus the panel's declared ``reducer_params`` as keywords and returns
    plain data.
    """

    def decorate(fn: Callable) -> Callable:
        _REDUCERS[name] = fn
        return fn

    return decorate


def reducer_kinds() -> list[str]:
    from repro.experiments.api import load_experiment_modules

    load_experiment_modules()
    return sorted(_REDUCERS)


def get_reducer(name: str) -> Callable:
    fn = _REDUCERS.get(name)
    if fn is None:
        from repro.experiments.api import load_experiment_modules

        load_experiment_modules()
        fn = _REDUCERS.get(name)
    if fn is None:
        from repro.campaign.registry import unknown_kind

        raise unknown_kind("reducer", name, reducer_kinds())
    return fn


# -- generic reducers ---------------------------------------------------------------


@register_reducer("series")
def series_reducer(run, x: str, series: str | None = None,
                   metric: str = "mean_fct",
                   normalize_to: Any | None = None) -> dict:
    """The classic figure shape.

    With ``series``: ``{series value: {x value: value}}``; without:
    a flat ``{x value: value}``. Grid panels average ``metric`` over the
    remaining axes (typically ``seed``); search panels use the searched
    value directly. ``normalize_to`` (flat form only) divides every
    entry by the entry at that key — "normalized to PDQ(Full)" series.
    """
    if series is None:
        flat = {
            cell[0]: value
            for cell, value in run.cell_values((x,), metric).items()
        }
        if normalize_to is not None:
            base = flat.get(normalize_to)
            if base is None or base <= 0:
                raise ExperimentError(
                    f"bad normalization reference {normalize_to!r}"
                )
            flat = {k: v / base for k, v in flat.items()}
        return flat
    if normalize_to is not None:
        raise ExperimentError(
            "normalize_to requires the flat (series=None) form; register "
            "a custom reducer for per-series normalization"
        )
    out: dict[Any, dict] = {s: {} for s in run.axis_values(series)}
    for (s_value, x_value), value in run.cell_values((series, x),
                                                     metric).items():
        out[s_value][x_value] = value
    return out


@register_reducer("table")
def table_reducer(run, metrics: Sequence[str] = ("mean_fct",),
                  by: Sequence[str] | None = None) -> dict:
    """Schema-first output: ``{"columns": [...], "rows": [[...]]}``.

    One row per grid cell grouped ``by`` the named axes (default: every
    axis except ``seed``), with each metric averaged over the grouped-out
    axes. Search panels emit a single ``value`` column instead.
    """
    axes = run.axis_names()
    group_by = list(by) if by is not None else [a for a in axes
                                               if a != "seed"]
    if run.found is not None:
        columns = group_by + ["value"]
        cells = run.cell_values(group_by, None)
        rows = [list(cell) + [value] for cell, value in cells.items()]
        return {"columns": columns, "rows": rows}
    if not metrics:
        raise ExperimentError("the table reducer needs at least one metric")
    columns = group_by + list(metrics)
    per_metric = [run.cell_values(group_by, m) for m in metrics]
    rows = []
    for cell in per_metric[0]:
        rows.append(list(cell) + [values[cell] for values in per_metric])
    return {"columns": columns, "rows": rows}
