"""Generic scenario runners shared by all figure experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import PdqConfig
from repro.core.multipath import MpdqStack
from repro.core.stack import PdqStack
from repro.errors import ExperimentError
from repro.flowsim.d3_model import D3Model
from repro.flowsim.engine import FlowLevelSimulation
from repro.flowsim.pdq_model import PdqModel
from repro.flowsim.rcp_model import RcpModel
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network, NetworkConfig
from repro.topology.base import Topology
from repro.transport.d3 import D3Stack
from repro.transport.rcp import RcpStack
from repro.transport.tcp import TcpStack
from repro.workload.flow import FlowSpec

#: protocols understood by make_stack / make_model
PROTOCOLS = (
    "PDQ(Full)",
    "PDQ(ES+ET)",
    "PDQ(ES)",
    "PDQ(Basic)",
    "D3",
    "RCP",
    "TCP",
)


def available_protocols() -> Tuple[str, ...]:
    return PROTOCOLS


def make_stack(name: str, n_subflows: int = 3, **pdq_overrides):
    """Build a protocol stack from its paper name."""
    if name == "PDQ(Full)":
        return PdqStack(PdqConfig.full(**pdq_overrides))
    if name == "PDQ(ES+ET)":
        return PdqStack(PdqConfig.es_et(**pdq_overrides))
    if name == "PDQ(ES)":
        return PdqStack(PdqConfig.es(**pdq_overrides))
    if name == "PDQ(Basic)":
        return PdqStack(PdqConfig.basic(**pdq_overrides))
    if name == "M-PDQ":
        return MpdqStack(PdqConfig.full(**pdq_overrides), n_subflows=n_subflows)
    if name == "D3":
        return D3Stack()
    if name == "RCP":
        return RcpStack()
    if name == "TCP":
        return TcpStack()
    raise ExperimentError(f"unknown protocol {name!r}")


def make_model(name: str, **pdq_overrides):
    """Flow-level rate model for a protocol name (TCP has none)."""
    if name.startswith("PDQ"):
        variant = {
            "PDQ(Full)": PdqConfig.full,
            "PDQ(ES+ET)": PdqConfig.es_et,
            "PDQ(ES)": PdqConfig.es,
            "PDQ(Basic)": PdqConfig.basic,
        }.get(name, PdqConfig.full)
        return PdqModel(variant(**pdq_overrides))
    if name == "RCP":
        return RcpModel()
    if name == "D3":
        return D3Model()
    raise ExperimentError(f"no flow-level model for {name!r}")


def run_packet_level(
    topology: Topology,
    protocol: str,
    flows: Sequence[FlowSpec],
    sim_deadline: float = 2.0,
    loss: Optional[Tuple[str, str, float, int]] = None,
    network_config: Optional[NetworkConfig] = None,
    n_subflows: int = 3,
    **pdq_overrides,
) -> MetricsCollector:
    """Run one packet-level scenario and return its metrics.

    ``loss`` is (node_a, node_b, rate, seed) for Fig 9's random wire loss.
    """
    stack = make_stack(protocol, n_subflows=n_subflows, **pdq_overrides)
    net = Network(topology, stack, config=network_config)
    if loss is not None:
        a, b, rate, seed = loss
        net.set_loss(a, b, rate, seed=seed)
    net.launch(flows)
    net.run_until_quiet(deadline=sim_deadline)
    return net.metrics


def run_flow_level(
    topology: Topology,
    protocol: str,
    flows: Sequence[FlowSpec],
    sim_deadline: float = 10.0,
    **pdq_overrides,
) -> MetricsCollector:
    """Run one flow-level scenario and return its metrics."""
    model = make_model(protocol, **pdq_overrides)
    header = {"RCP": 44, "D3": 52}.get(protocol, 56)
    sim = FlowLevelSimulation(topology, model, header_bytes=header)
    return sim.run(flows, deadline=sim_deadline)


def execute_spec(spec) -> MetricsCollector:
    """Run one declarative :class:`~repro.campaign.spec.ScenarioSpec`.

    This is the campaign runner's single entry point into the simulators:
    it builds the topology and workload from their registered kinds and
    dispatches on the spec's engine. Keyword options ride in
    ``spec.options`` (``n_subflows`` plus any PDQ config overrides); a
    spec without ``sim_deadline`` runs at the engine's default horizon.
    """
    topology = spec.topology.build()
    flows = spec.workload.build(topology, spec.seed)
    options = dict(spec.options)
    if spec.sim_deadline is not None:
        options["sim_deadline"] = spec.sim_deadline
    if spec.engine == "packet":
        return run_packet_level(
            topology, spec.protocol, flows,
            loss=spec.loss,
            **options,
        )
    return run_flow_level(topology, spec.protocol, flows, **options)


def mean_fct_by(collector: MetricsCollector,
                fids: Sequence[int]) -> float:
    return collector.mean_fct(only=fids)


def normalize(series: Dict[str, float], reference: str) -> Dict[str, float]:
    """Normalize a {label: value} series to one entry (Fig 4/5 style)."""
    base = series.get(reference)
    if base is None or base <= 0:
        raise ExperimentError(f"bad normalization reference {reference!r}")
    return {k: v / base for k, v in series.items()}
