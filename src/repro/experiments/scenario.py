"""Scenario helpers shared by the figure experiments.

The simulator entry points (protocol factories, the packet/flow runners
and declarative-spec execution) live in :mod:`repro.campaign.engines`
since the engine layer became part of the campaign subsystem; they are
re-exported here so experiment code and downstream users keep their
historical imports. This module adds the experiment-side analysis
helpers (normalization, per-fid means) on top.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.campaign.engines import (  # noqa: F401 - re-exports
    PROTOCOLS,
    available_protocols,
    execute_spec,
    make_model,
    make_stack,
    run_flow_level,
    run_packet_level,
)
from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector

__all__ = [
    "PROTOCOLS",
    "available_protocols",
    "execute_spec",
    "make_model",
    "make_stack",
    "mean_fct_by",
    "normalize",
    "run_flow_level",
    "run_packet_level",
]


def mean_fct_by(collector: MetricsCollector,
                fids: Sequence[int]) -> float:
    return collector.mean_fct(only=fids)


def normalize(series: dict[str, float], reference: str) -> dict[str, float]:
    """Normalize a {label: value} series to one entry (Fig 4/5 style)."""
    base = series.get(reference)
    if base is None or base <= 0:
        raise ExperimentError(f"bad normalization reference {reference!r}")
    return {k: v / base for k, v in series.items()}
