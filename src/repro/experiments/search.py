"""Binary search for the operating point the paper reports.

Fig 3c / 4a / 5a / 8a / 9a / 11c all report "the maximal load (number of
flows, arrival rate, ...) a protocol can support while ensuring 99 %
application throughput", found "using a binary search procedure" (§5.2.1).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExperimentError


def binary_search_max(
    meets_target: Callable[[int], bool],
    lo: int = 1,
    hi: int = 64,
    max_probes: int = 32,
    grow: bool = True,
) -> int:
    """Largest integer n in [lo, hi] with ``meets_target(n)``.

    Assumes (approximate) monotonicity, as the paper does. Returns 0 if
    even ``lo`` fails; ``hi`` is raised geometrically if it still passes
    (unless ``grow`` is False, which caps the answer at ``hi``).
    """
    if lo < 1 or hi < lo:
        raise ExperimentError(f"bad search range [{lo}, {hi}]")
    probes = 0
    if not meets_target(lo):
        return 0
    if not grow and meets_target(hi):
        return hi
    # grow hi until it fails (or give up and accept hi)
    while grow and meets_target(hi):
        probes += 1
        lo = hi
        hi *= 2
        if probes >= max_probes:
            return lo
    # invariant: meets_target(lo) and not meets_target(hi)
    while hi - lo > 1:
        probes += 1
        if probes > max_probes:
            break
        mid = (lo + hi) // 2
        if meets_target(mid):
            lo = mid
        else:
            hi = mid
    return lo
