"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table, right-aligned numerics."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    body: list[list[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
