"""Fault injection: scheduled link/switch failures and generalized loss.

Declared on :class:`~repro.campaign.spec.ScenarioSpec` via the ``faults``
field (see :mod:`repro.faults.spec` for the schema), executed by the
packet engine's :class:`~repro.faults.controller.FaultController` and the
fluid engine's fault-epoch handling in
:meth:`~repro.flowsim.engine.FlowLevelSimulation._run_stream`.
"""

from repro.faults.spec import (
    ACTIONS,
    FaultEvent,
    LossRule,
    canonical_faults,
    events_from,
    legacy_loss_rule,
    loss_rules_from,
)
from repro.faults.controller import FaultController, apply_loss

__all__ = [
    "ACTIONS",
    "FaultController",
    "FaultEvent",
    "LossRule",
    "apply_loss",
    "canonical_faults",
    "events_from",
    "legacy_loss_rule",
    "loss_rules_from",
]
