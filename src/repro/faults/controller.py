"""Packet-engine fault injection: scheduled outages and loss rules.

The :class:`FaultController` registers one simulator event per scheduled
:class:`~repro.faults.spec.FaultEvent`. Applying an event updates the
controller's down sets, syncs every :class:`~repro.net.link.Link`'s
``up`` flag (a failed link drains its queue into the
:class:`~repro.net.pool.PacketPool` and refuses new packets),
invalidates the :class:`~repro.net.routing.Router` caches, and reroutes
every live flow whose pinned path crosses a failed link — or terminates
it when the fault partitioned its endpoints. Packets already in flight
on a stale path are dropped (and released) at the failed link; the
transports' retransmission machinery recovers them on the new path.

:func:`apply_loss` is the run-time half of the loss generalization: it
configures random wire loss from :class:`~repro.faults.spec.LossRule`
glob patterns (or the legacy 4-tuple, byte-identically).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.errors import FaultError, RoutingError
from repro.faults.spec import LossRule, FaultEvent
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence
    from repro.net.link import Link
    from repro.net.network import Network


def _pair(a: str, b: str) -> tuple[str, str]:
    """Order-free undirected edge key."""
    return (a, b) if a <= b else (b, a)


class FaultController:
    """Applies a fault schedule to a built :class:`Network`."""

    def __init__(self, net: "Network", events: "Sequence[FaultEvent]"):
        self.net = net
        # stable sort: same-time events apply in declaration order
        self.events = tuple(sorted(events, key=lambda e: e.time))
        self.down_pairs: set[tuple[str, str]] = set()
        self.down_switches: set[str] = set()
        self.events_applied = 0
        self.reroutes = 0
        self.flows_rejected = 0
        self._validate()
        net.fault_controller = self

    def _validate(self) -> None:
        """Fail fast on events naming nodes/links the topology lacks."""
        graph = self.net.topology.graph
        for event in self.events:
            if event.is_link:
                if not graph.has_edge(event.a, event.b):
                    raise FaultError(
                        f"{event.action} at t={event.time}: no link "
                        f"{event.a!r} -- {event.b!r} in the topology"
                    )
            else:
                if event.a not in graph.nodes:
                    raise FaultError(
                        f"{event.action} at t={event.time}: no node "
                        f"{event.a!r} in the topology"
                    )

    def start(self) -> None:
        """Schedule every event at its simulated time."""
        for event in self.events:
            self.net.sim.call_at(event.time, self._apply, event)

    # -- event application ---------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.action == "link_down":
            self.down_pairs.add(_pair(event.a, event.b))
        elif event.action == "link_up":
            self.down_pairs.discard(_pair(event.a, event.b))
        elif event.action == "switch_down":
            self.down_switches.add(event.a)
        else:  # switch_up
            self.down_switches.discard(event.a)
        self.events_applied += 1
        self._sync_links()
        self.net.router.invalidate_routes()
        self._reroute_live_flows()

    def _link_should_be_up(self, link: "Link") -> bool:
        src, dst = link.src.name, link.dst.name
        if src in self.down_switches or dst in self.down_switches:
            return False
        return _pair(src, dst) not in self.down_pairs

    def _sync_links(self) -> None:
        """Reconcile every link's ``up`` flag with the down sets.

        Derived from scratch rather than updated incrementally so
        overlapping faults compose (a link downed both explicitly and
        via its switch stays down until *both* are lifted).
        """
        for link in self.net.links:
            should = self._link_should_be_up(link)
            if link.up and not should:
                link.fail()
            elif not link.up and should:
                link.restore()

    def _reroute_live_flows(self) -> None:
        """Re-pin the path of every registered flow that lost a link.

        The sweep walks the hosts' sender registries (which include
        M-PDQ subflows under their subflow fids), recomputes the pinned
        forward path with the same fid-keyed ECMP hash, and mirrors the
        exact reverse onto the receiver so scheduling state stays on the
        round-trip path. Flows whose endpoints are now partitioned are
        terminated — the open-system analogue of rejecting work when a
        machine disappears.
        """
        net = self.net
        router = net.router
        for node in net.nodes:
            senders = getattr(node, "senders", None)
            if not senders:
                continue
            for fid, sender in list(senders.items()):
                path = getattr(sender, "path", None)
                if path is None or all(link.up for link in path):
                    continue
                try:
                    forward = router.flow_path(fid, node.id, sender.dst_id)
                except RoutingError:
                    self._reject(fid, sender)
                    continue
                reverse = router.reverse_path(forward)
                sender.path = forward
                receiver = net.nodes[sender.dst_id].receivers.get(fid)
                if receiver is not None:
                    receiver.path = reverse
                self.reroutes += 1

    def _reject(self, fid: int, sender) -> None:
        self.flows_rejected += 1
        terminate = getattr(sender, "terminate", None)
        if terminate is not None:
            # explicit-rate transports: records the termination and
            # sends TERM down the (dead) old path; the packets drop at
            # the failed link and the close timer reaps the sender
            terminate("fault: no route after failure")
            return
        # window-based transports (TCP) have no TERM; record and close
        self.net.metrics.on_terminated(
            fid, self.net.sim.now, "fault: no route after failure"
        )
        close = getattr(sender, "_close", None)
        if close is not None:
            close()

    # -- diagnostics ---------------------------------------------------------------

    def packets_dropped(self) -> int:
        """Packets released at failed links (queue drains + in-flight)."""
        return sum(link.fault_drops for link in self.net.links)


# -- loss rules ---------------------------------------------------------------------


def apply_loss(net: "Network",
               loss: "tuple | Sequence[LossRule]") -> None:
    """Configure random wire loss from rules or the legacy 4-tuple.

    The legacy ``(node_a, node_b, rate, seed)`` tuple goes through
    :meth:`Network.set_loss` unchanged. Rules are applied in order over
    the links in link-id order, so later rules deterministically
    override earlier ones on overlapping links; every link draws from
    its own ``spawn_rng(seed, "loss:<link_id>")`` stream — the same
    stream ``set_loss`` uses, which is what keeps an exact-name rule
    bit-identical to the tuple it generalizes.
    """
    if isinstance(loss, tuple) and len(loss) == 4 and \
            isinstance(loss[0], str):
        a, b, rate, seed = loss
        net.set_loss(a, b, rate, seed=seed)
        return
    for rule in loss:
        if not isinstance(rule, LossRule):
            raise FaultError(f"expected a LossRule, got {rule!r}")
        matched = 0
        for link in net.links:
            src, dst = link.src.name, link.dst.name
            hit = fnmatchcase(src, rule.src) and fnmatchcase(dst, rule.dst)
            if not hit and rule.both_directions:
                hit = (fnmatchcase(src, rule.dst)
                       and fnmatchcase(dst, rule.src))
            if hit:
                link.set_loss(
                    rule.rate, spawn_rng(rule.seed, f"loss:{link.link_id}")
                )
                matched += 1
        if not matched:
            raise FaultError(
                f"loss rule {rule.src!r} -> {rule.dst!r} matches no link "
                f"in the topology"
            )
