"""Fault schedules and loss rules as first-class scenario data.

A spec's ``faults`` field is a plain mapping with up to two keys:

* ``events`` — a schedule of topology changes, each
  ``{"time": t, "action": "link_down"|"link_up", "a": ..., "b": ...}``
  or ``{"time": t, "action": "switch_down"|"switch_up", "node": ...}``;
* ``loss`` — random wire-loss rules, each
  ``{"src": pattern, "dst": pattern, "rate": p}`` plus optional
  ``seed`` (defaults to the scenario seed at run time) and
  ``both_directions`` (defaults true, matching Fig 9). Patterns are
  ``fnmatch``-style globs over node names, generalizing the legacy
  single ``(node_a, node_b, rate, seed)`` tuple to whole link classes.

:func:`canonical_faults` validates and normalizes the mapping into the
plain-data form that :meth:`~repro.campaign.spec.ScenarioSpec.canonical`
hashes; :func:`events_from` / :func:`loss_rules_from` turn that form
into the typed objects the engines consume. Validation lives here — not
in the engines — so a bad schedule fails at spec construction, before
anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import FaultError

#: every action a fault event may carry
ACTIONS = ("link_down", "link_up", "switch_down", "switch_up")
LINK_ACTIONS = ("link_down", "link_up")
SWITCH_ACTIONS = ("switch_down", "switch_up")

_EVENT_KEYS_LINK = frozenset(("time", "action", "a", "b"))
_EVENT_KEYS_SWITCH = frozenset(("time", "action", "node"))
_LOSS_KEYS = frozenset(("src", "dst", "rate", "seed", "both_directions"))
_FAULT_KEYS = frozenset(("events", "loss"))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled topology change.

    ``a``/``b`` are the link endpoints for link actions; switch actions
    carry the switch name in ``a`` with ``b`` left None.
    """

    time: float
    action: str
    a: str
    b: str | None = None

    @property
    def is_link(self) -> bool:
        return self.action in LINK_ACTIONS


@dataclass(frozen=True)
class LossRule:
    """Random wire loss on every link whose endpoints match the globs."""

    src: str
    dst: str
    rate: float
    seed: int
    both_directions: bool = True


def _require_str(value: Any, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise FaultError(f"{what} must be a non-empty string, got {value!r}")
    return value


def _require_time(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultError(f"fault event time must be a number, got {value!r}")
    if value < 0:
        raise FaultError(f"fault event time must be >= 0, got {value!r}")
    return float(value)


def _canonical_event(data: Any) -> dict[str, Any]:
    if not isinstance(data, Mapping):
        raise FaultError(f"fault event must be a mapping, got {data!r}")
    action = data.get("action")
    if action not in ACTIONS:
        raise FaultError(
            f"fault action must be one of {'/'.join(ACTIONS)}, got {action!r}"
        )
    allowed = _EVENT_KEYS_LINK if action in LINK_ACTIONS else _EVENT_KEYS_SWITCH
    extra = set(data) - allowed
    missing = allowed - set(data)
    if extra or missing:
        raise FaultError(
            f"{action} event needs exactly keys {sorted(allowed)}; "
            f"got {sorted(data)}"
        )
    out: dict[str, Any] = {"time": _require_time(data["time"]),
                           "action": action}
    if action in LINK_ACTIONS:
        a = _require_str(data["a"], "link event endpoint 'a'")
        b = _require_str(data["b"], "link event endpoint 'b'")
        if a == b:
            raise FaultError(f"link event endpoints must differ, got {a!r}")
        out["a"], out["b"] = a, b
    else:
        out["node"] = _require_str(data["node"], "switch event 'node'")
    return out


def _canonical_loss_rule(data: Any) -> dict[str, Any]:
    if not isinstance(data, Mapping):
        raise FaultError(f"loss rule must be a mapping, got {data!r}")
    extra = set(data) - _LOSS_KEYS
    if extra:
        raise FaultError(f"unknown loss-rule keys {sorted(extra)}")
    for required in ("src", "dst", "rate"):
        if required not in data:
            raise FaultError(f"loss rule needs a {required!r} key")
    rate = data["rate"]
    if isinstance(rate, bool) or not isinstance(rate, (int, float)) \
            or not 0.0 <= rate <= 1.0:
        raise FaultError(f"loss rate must be in [0, 1], got {rate!r}")
    out: dict[str, Any] = {
        "src": _require_str(data["src"], "loss rule 'src'"),
        "dst": _require_str(data["dst"], "loss rule 'dst'"),
        "rate": float(rate),
    }
    # defaults are *omitted* from the canonical form so an explicit
    # default and an absent key hash identically
    seed = data.get("seed")
    if seed is not None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultError(f"loss rule seed must be an int, got {seed!r}")
        out["seed"] = seed
    both = data.get("both_directions", True)
    if not isinstance(both, bool):
        raise FaultError(
            f"both_directions must be a bool, got {both!r}"
        )
    if not both:
        out["both_directions"] = False
    return out


def canonical_faults(data: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a ``faults`` mapping and return its normal form.

    The normal form is plain data (hashable by ``canonical_json``):
    events sorted by time (stable, so same-time events keep declaration
    order), loss rules in declaration order (later rules override
    earlier ones on overlapping links), empty sections omitted.
    """
    if not isinstance(data, Mapping):
        raise FaultError(f"faults must be a mapping, got {data!r}")
    extra = set(data) - _FAULT_KEYS
    if extra:
        raise FaultError(
            f"unknown faults keys {sorted(extra)} (expected 'events'/'loss')"
        )
    out: dict[str, Any] = {}
    events = data.get("events")
    if events is not None:
        if isinstance(events, (str, Mapping)) or \
                not isinstance(events, Sequence):
            raise FaultError("faults 'events' must be a list of events")
        normalized = [_canonical_event(event) for event in events]
        normalized.sort(key=lambda e: e["time"])
        if normalized:
            out["events"] = normalized
    loss = data.get("loss")
    if loss is not None:
        if isinstance(loss, (str, Mapping)) or not isinstance(loss, Sequence):
            raise FaultError("faults 'loss' must be a list of loss rules")
        rules = [_canonical_loss_rule(rule) for rule in loss]
        if rules:
            out["loss"] = rules
    if not out:
        raise FaultError("faults must declare at least one event or loss rule")
    return out


def events_from(faults: Mapping[str, Any]) -> tuple[FaultEvent, ...]:
    """Typed fault events from a (canonical or raw) ``faults`` mapping."""
    events = canonical_faults(faults).get("events", ())
    return tuple(
        FaultEvent(
            time=event["time"],
            action=event["action"],
            a=event.get("a", event.get("node")),
            b=event.get("b"),
        )
        for event in events
    )


def loss_rules_from(faults: Mapping[str, Any],
                    default_seed: int) -> tuple[LossRule, ...]:
    """Typed loss rules, with unseeded rules resolved to ``default_seed``.

    Seed resolution happens here — not in the canonical form — so a
    seed sweep over a spec whose rules omit ``seed`` redraws the loss
    pattern per scenario, exactly as fig 9's legacy tuple did.
    """
    rules = canonical_faults(faults).get("loss", ())
    return tuple(
        LossRule(
            src=rule["src"],
            dst=rule["dst"],
            rate=rule["rate"],
            seed=rule.get("seed", default_seed),
            both_directions=rule.get("both_directions", True),
        )
        for rule in rules
    )


def legacy_loss_rule(loss: tuple[str, str, float, int]) -> LossRule:
    """The legacy ``ScenarioSpec.loss`` 4-tuple as an exact-name rule.

    Exact node names match only themselves under ``fnmatch``, and the
    per-link RNG streams are keyed by link id either way, so running the
    tuple through the rule engine reproduces ``Network.set_loss``
    bit-for-bit (fig 9's goldens pin this).
    """
    a, b, rate, seed = loss
    return LossRule(src=a, dst=b, rate=float(rate), seed=int(seed))
