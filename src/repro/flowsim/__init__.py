"""Flow-level simulator (paper §5.5).

"To study these protocols at large scales, we construct a flow-level
simulator for PDQ, D3 and RCP. In particular, we use an iterative approach
to find the equilibrium flow sending rates ... The flow-level simulator
also considers protocol inefficiencies like flow initialization time and
packet header overhead."

The engine is event-driven fluid simulation: rates are recomputed at every
arrival / completion / termination (and at a refresh interval for
time-varying disciplines like aging); between events, rates are constant
and progress is linear.
"""

from repro.flowsim.d3_model import D3Model
from repro.flowsim.engine import FlowLevelSimulation
from repro.flowsim.naive import NaiveFlowLevelSimulation
from repro.flowsim.pdq_model import PdqModel
from repro.flowsim.progress import FlowProgress
from repro.flowsim.rcp_model import RcpModel

__all__ = [
    "FlowLevelSimulation",
    "NaiveFlowLevelSimulation",
    "FlowProgress",
    "PdqModel",
    "RcpModel",
    "D3Model",
]
