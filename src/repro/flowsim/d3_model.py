"""D3 equilibrium rate model: first-come-first-reserve.

Demand phase: deadline flows, *in arrival order*, reserve ``s/d`` (remaining
size over time-to-deadline, capped at their maximal rate) on every link of
their path -- whatever the links still have. Fair-share phase: the leftover
capacity is split max-min across all flows on top of their reservations.

This reproduces the D3 behaviour PDQ's Fig 1 criticizes: an early-arriving
flow with a far deadline holds its reservation while a later-arriving
urgent flow can only get the leftovers. With no deadline flows, the model
degenerates to RCP's max-min fairness, matching the paper's observation
that D3 and RCP coincide in the deadline-unconstrained case.

Quenching: flows whose deadline passed are terminated.
"""

from __future__ import annotations


from repro.flowsim.progress import FlowProgress
from repro.flowsim.rcp_model import max_min_rates


class D3Model:
    """Greedy arrival-order reservation plus max-min leftovers.

    ``capacities`` may be a dict keyed by ``(src, dst)`` name tuples or a
    flat list indexed by dense edge ids, matching the flows' path tokens.
    """

    name = "D3"

    def allocate(self, flows: list[FlowProgress], capacities,
                 now: float) -> dict[int, float]:
        residual = capacities.copy()
        reserved: dict[int, float] = {f.fid: 0.0 for f in flows}

        # phase 1: first-come-first-reserve for deadline flows
        deadline_flows = sorted(
            (f for f in flows if f.abs_deadline is not None),
            key=lambda f: (f.spec.arrival, f.fid),
        )
        for flow in deadline_flows:
            deadline = flow.abs_deadline
            time_left = deadline - now
            if time_left <= 0:
                continue  # quenching will remove it
            demand = min(flow.max_rate, flow.remaining_wire * 8.0 / time_left)
            available = min(
                (residual[edge] for edge in flow.path), default=0.0
            )
            grant = max(0.0, min(demand, available))
            if grant > 0:
                reserved[flow.fid] = grant
                for edge in flow.path:
                    residual[edge] -= grant

        # phase 2: max-min fair share of the leftovers on top of reservations
        leftovers = [
            _Shadow(f, max(0.0, f.max_rate - reserved[f.fid])) for f in flows
        ]
        shares = max_min_rates(leftovers, residual)
        return {
            f.fid: reserved[f.fid] + shares.get(f.fid, 0.0) for f in flows
        }

    def terminations(self, flows: list[FlowProgress],
                     rates: dict[int, float], now: float) -> list[tuple[int, str]]:
        return [
            (f.fid, "quenching:deadline_passed")
            for f in flows
            if f.abs_deadline is not None and now > f.abs_deadline
        ]


class _Shadow:
    """FlowProgress stand-in with a reduced max rate for the leftover
    water-filling phase."""

    __slots__ = ("fid", "path", "max_rate")

    def __init__(self, flow: FlowProgress, headroom: float):
        self.fid = flow.fid
        self.path = flow.path
        self.max_rate = headroom
