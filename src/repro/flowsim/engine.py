"""Event-driven fluid simulation engine (optimized hot path).

Rates are recomputed at every arrival, transfer start, completion and
termination, plus at a periodic refresh (needed when criticality drifts
over time, e.g. flow aging); between recomputations rates are constant and
progress is linear, so completions are located exactly.

Protocol inefficiencies modeled (paper §5.5): per-packet header overhead
(flows carry wire bytes) and flow-initialization latency (data starts
flowing ``init_rtts`` round-trips after arrival).

Hot-path structure (PR 2): paths are tuples of dense edge ids indexing a
flat capacity list (no name-tuple hashing); the waiting set is a heap
keyed on ``transfer_start``; completion ETAs live in a lazy min-heap
(entries invalidated by a per-flow version bump on rate change — an
unchanged rate means an unchanged absolute ETA) and deadline boundaries
in a second lazy heap, so locating the next event no longer scans every
flow. The frozen pre-optimization engine is
:class:`~repro.flowsim.naive.NaiveFlowLevelSimulation`; parity tests pin
bit-identical metrics between the two.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.errors import ExperimentError, FaultError, RoutingError
from repro.flowsim.paths import GraphRouter
from repro.flowsim.progress import FlowProgress
from repro.metrics.collector import MetricsCollector
from repro.topology.base import Topology
from repro.units import USEC, tx_time
from repro.workload.flow import FlowSpec
from repro.workload.stream import FlowStream

#: per-hop one-way latency components used for the RTT estimate, matching
#: the packet-level defaults (processing dominates)
_PER_HOP_DELAY = 25 * USEC + 0.1 * USEC

_INF = float("inf")


def _name_pair(a: str, b: str) -> tuple[str, str]:
    """Order-free undirected edge key (matches the FaultController's)."""
    return (a, b) if a <= b else (b, a)


class FlowLevelSimulation:
    """Runs a workload through a rate model over a topology."""

    def __init__(
        self,
        topology: Topology,
        model,
        mtu: int = 1500,
        header_bytes: int = 56,
        init_rtts: float = 2.0,
        refresh_interval: float = 1e-3,
        metrics: MetricsCollector | None = None,
        faults: Sequence | None = None,
    ):
        if mtu <= header_bytes:
            raise ExperimentError("mtu must exceed header size")
        self.topology = topology
        self.model = model
        self.mtu = mtu
        self.header_bytes = header_bytes
        self.payload = mtu - header_bytes
        self.init_rtts = init_rtts
        self.refresh_interval = refresh_interval
        # explicit None test: an injected-but-empty collector is falsy
        self.metrics = MetricsCollector() if metrics is None else metrics
        self.router = GraphRouter(topology)
        #: flat list indexed by dense directed-edge id (FlowProgress.path
        #: holds the matching ids); rate models copy and index it directly
        self.capacities: list[float] = self.router.capacity_vector()
        self.now = 0.0
        self.recomputations = 0  # allocate() calls
        self.iterations = 0      # main-loop passes (event boundaries)
        self.pauses = 0          # flows preempted (rate driven to zero)
        self.resumes = 0         # paused flows granted rate again
        self.stream_batches = 0  # non-empty streaming admission pulls
        self._stream_admitted = 0  # flows admitted from a FlowStream
        #: per-event-boundary samplers (repro.obs.probes); empty unless a
        #: scenario requested probes, so the default run pays one truth
        #: test per iteration
        self.samplers: list = []
        #: fault injection (repro.faults.spec.FaultEvent schedule): fault
        #: epochs splice into the streaming loop exactly like unadmitted
        #: arrivals — the advance horizon never crosses the next event,
        #: and due events reroute (or reject) flows before rates are
        #: recomputed. Mirrors the packet engine's FaultController.
        self.fault_events: tuple = tuple(
            sorted(faults, key=lambda e: e.time)
        ) if faults else ()
        self._fault_idx = 0
        self.fault_events_applied = 0
        self.fault_reroutes = 0
        self.flows_rejected = 0
        #: name-level down state (mirrors FaultController's sets)
        self._down_pairs: set[tuple[str, str]] = set()
        self._down_switches: set[str] = set()
        self._base_capacities: list[float] | None = (
            list(self.capacities) if self.fault_events else None
        )
        if self.fault_events:
            self._validate_fault_events()

    def _validate_fault_events(self) -> None:
        graph = self.topology.graph
        for event in self.fault_events:
            if event.is_link:
                if not graph.has_edge(event.a, event.b):
                    raise FaultError(
                        f"{event.action} at t={event.time}: no link "
                        f"{event.a!r} -- {event.b!r} in the topology"
                    )
            elif event.a not in graph.nodes:
                raise FaultError(
                    f"{event.action} at t={event.time}: no node "
                    f"{event.a!r} in the topology"
                )

    # -- setup helpers --------------------------------------------------------------

    def _wire_size(self, size_bytes: int) -> float:
        packets = -(-size_bytes // self.payload)
        return size_bytes + packets * self.header_bytes

    def _estimate_rtt(self, path: Sequence[int]) -> float:
        rtt = 0.0
        capacities = self.capacities
        for eid in path:
            rate = capacities[eid]
            rtt += 2.0 * (_PER_HOP_DELAY + tx_time(self.header_bytes, rate))
        return rtt

    def _make_progress(self, spec: FlowSpec) -> FlowProgress:
        path = self.router.flow_path_ids(spec.fid, spec.src, spec.dst)
        capacities = self.capacities
        max_rate = min(capacities[eid] for eid in path)
        rtt = self._estimate_rtt(path)
        return FlowProgress(
            spec=spec,
            path=path,
            max_rate=max_rate,
            rtt=rtt,
            wire_size=self._wire_size(spec.size_bytes),
            transfer_start=spec.arrival + self.init_rtts * rtt,
        )

    # -- main loop -------------------------------------------------------------------

    def run(self, flows: Sequence[FlowSpec] | FlowStream,
            deadline: float = 60.0,
            max_recomputations: int = 2_000_000) -> MetricsCollector:
        begin_run = getattr(self.model, "begin_run", None)
        if begin_run is not None:
            # the engine honors the incremental-sort contract: the active
            # list only gains flows at its tail and sheds departed flows
            begin_run()
        if isinstance(flows, FlowStream):
            # open-system runs admit incrementally; the closed-batch path
            # below stays textually untouched so its float trajectories —
            # pinned bit-identical against the naive engine — cannot move
            return self._run_stream(flows, deadline, max_recomputations)
        if self.fault_events:
            # faulted closed runs ride the streaming loop too: it is the
            # only loop with epoch splicing, and wrapping the sorted list
            # keeps the parity-pinned closed path textually untouched.
            # (Admission happens at arrival time, so flows arriving after
            # ``deadline`` are never registered — keep fault scenarios'
            # arrivals inside the deadline.)
            ordered = sorted(flows, key=lambda s: s.arrival)
            stream = FlowStream(iter(ordered), expected_flows=len(ordered))
            return self._run_stream(stream, deadline, max_recomputations)
        pending = sorted(
            (self._make_progress(self.metrics.register(s).spec) for s in flows),
            key=lambda f: f.spec.arrival,
        )
        for flow in pending:
            self.metrics.on_start(flow.fid, flow.spec.arrival)
        # waiting flows keyed on transfer_start; seq is the arrival-sorted
        # position so promoted batches can be re-ordered to match the
        # reference engine's arrival-order promotion exactly
        waiting: list[tuple[float, int, FlowProgress]] = [
            (flow.transfer_start, seq, flow) for seq, flow in enumerate(pending)
        ]
        heapq.heapify(waiting)
        active: list[FlowProgress] = []
        eta_heap: list[tuple[float, int, int, FlowProgress]] = []
        deadline_heap: list[tuple[float, int, FlowProgress]] = []

        while (waiting or active) and self.now <= deadline:
            self.iterations += 1
            if not active and waiting:
                # jump to the next transfer start
                self.now = max(self.now, waiting[0][0])
            self._promote(waiting, active, deadline_heap)
            if not active:
                continue

            rates = self.model.allocate(active, self.capacities, self.now)
            self.recomputations += 1
            if self.recomputations > max_recomputations:
                raise ExperimentError(
                    "flow-level simulation did not converge "
                    f"({max_recomputations} recomputations)"
                )
            sending = self._apply_rates(active, rates, eta_heap)
            if len(eta_heap) > 64 and len(eta_heap) > 4 * len(active):
                # models that reshuffle most rates per recomputation (RCP
                # max-min) strand stale entries below the heap top; compact
                # so the heap stays O(active). Dropping invalid entries
                # cannot change the surviving minimum.
                eta_heap = [
                    entry for entry in eta_heap
                    if not entry[3].departed
                    and entry[1] == entry[3].eta_version
                ]
                heapq.heapify(eta_heap)
            if self._terminate_flows(active, rates):
                continue  # rates changed; recompute immediately

            horizon = self._next_event_time(waiting, eta_heap, deadline_heap,
                                            deadline)
            dt = horizon - self.now
            if dt < 0:
                raise ExperimentError("fluid engine time went backwards")
            for flow in active:
                # inlined FlowProgress.advance (same arithmetic)
                if flow.rate > 0:
                    flow.remaining_wire = max(
                        0.0, flow.remaining_wire - flow.rate * dt / 8.0
                    )
                else:
                    flow.waited += dt
            self.now = horizon
            self._complete_finished(sending, active)
            if self.samplers:
                for sampler in self.samplers:
                    sampler.on_step(self, active)
        return self.metrics

    # -- streaming (open-system) main loop ---------------------------------------------

    def _run_stream(self, stream: FlowStream, deadline: float,
                    max_recomputations: int) -> MetricsCollector:
        """The main loop for a lazy arrival process (``begin_run`` was
        already called by :meth:`run`).

        Identical event mechanics to the closed loop, plus an admission
        step each pass: flows are pulled from the stream in
        ``refresh_interval``-sized windows, and the advance horizon never
        crosses the next unadmitted arrival, so an admitted flow always
        enters the waiting heap before simulated time reaches it. Memory
        is O(concurrent flows): the engine never sees the whole workload.
        Flows arriving after ``deadline`` are never admitted (the closed
        path registers them as unfinished records instead).
        """
        waiting: list[tuple[float, int, FlowProgress]] = []
        active: list[FlowProgress] = []
        eta_heap: list[tuple[float, int, int, FlowProgress]] = []
        deadline_heap: list[tuple[float, int, FlowProgress]] = []

        while waiting or active or not stream.exhausted:
            if self.now > deadline:
                break
            self.iterations += 1
            self._apply_due_faults(waiting, active)
            if not stream.exhausted:
                if not active and not waiting:
                    # idle gap: jump straight to the next arrival (due
                    # faults are applied after the jump, before the
                    # admitted flows compute their paths)
                    next_arrival = stream.peek_arrival()
                    if next_arrival is None:
                        continue
                    if next_arrival > deadline:
                        break
                    if next_arrival > self.now:
                        self.now = next_arrival
                        self._apply_due_faults(waiting, active)
                self._admit_from_stream(stream, waiting)
            if not active and waiting:
                # jump to the next transfer start, but never past an
                # unadmitted arrival (its transfer start could precede
                # it) or a fault epoch (waiting flows may need rerouting
                # or rejecting before they are promoted)
                jump = waiting[0][0]
                next_arrival = stream.peek_arrival()
                if next_arrival is not None and next_arrival < jump:
                    jump = next_arrival
                if self._fault_idx < len(self.fault_events):
                    fault_time = self.fault_events[self._fault_idx].time
                    if fault_time < jump:
                        jump = fault_time
                if jump > self.now:
                    self.now = jump
                self._apply_due_faults(waiting, active)
                if not stream.exhausted:
                    self._admit_from_stream(stream, waiting)
            self._promote(waiting, active, deadline_heap)
            if not active:
                continue

            rates = self.model.allocate(active, self.capacities, self.now)
            self.recomputations += 1
            # open-ended runs admit without bound, so the convergence
            # budget tracks admissions instead of staying a flat constant
            budget = 64 * self._stream_admitted + 1024
            if budget < max_recomputations:
                budget = max_recomputations
            if self.recomputations > budget:
                raise ExperimentError(
                    "flow-level simulation did not converge "
                    f"({budget} recomputations)"
                )
            sending = self._apply_rates(active, rates, eta_heap)
            if len(eta_heap) > 64 and len(eta_heap) > 4 * len(active):
                eta_heap = [
                    entry for entry in eta_heap
                    if not entry[3].departed
                    and entry[1] == entry[3].eta_version
                ]
                heapq.heapify(eta_heap)
            if self._terminate_flows(active, rates):
                continue  # rates changed; recompute immediately

            horizon = self._next_event_time(waiting, eta_heap, deadline_heap,
                                            deadline)
            if not stream.exhausted:
                next_arrival = stream.peek_arrival()
                if next_arrival is not None and next_arrival < horizon:
                    horizon = next_arrival
            if self._fault_idx < len(self.fault_events):
                # never advance past a fault epoch: rates computed under
                # the pre-fault topology must not integrate across it
                fault_time = self.fault_events[self._fault_idx].time
                if fault_time < horizon:
                    horizon = fault_time
            dt = horizon - self.now
            if dt < 0:
                raise ExperimentError("fluid engine time went backwards")
            for flow in active:
                if flow.rate > 0:
                    flow.remaining_wire = max(
                        0.0, flow.remaining_wire - flow.rate * dt / 8.0
                    )
                else:
                    flow.waited += dt
            self.now = horizon
            self._complete_finished(sending, active)
            if self.samplers:
                for sampler in self.samplers:
                    sampler.on_step(self, active)
        return self.metrics

    # repro: hot
    def _admit_from_stream(self, stream: FlowStream,
                           waiting: list) -> None:
        """Admission step: pull every arrival inside the next refresh
        window into the waiting heap (register + on_start, exactly what
        the closed path does up front). Runs once per main-loop pass.

        Under fault injection an arrival may find its endpoints
        partitioned; it is rejected (terminated on arrival) instead of
        crashing the run, matching the packet engine."""
        batch = stream.take_until(self.now + self.refresh_interval)
        if not batch:
            return
        self.stream_batches += 1
        register = self.metrics.register
        on_start = self.metrics.on_start
        make_progress = self._make_progress
        push = heapq.heappush
        seq = self._stream_admitted
        faulted = bool(self.fault_events)
        for spec in batch:
            record = register(spec)
            on_start(spec.fid, spec.arrival)
            if faulted:
                try:
                    flow = make_progress(record.spec)
                except RoutingError:
                    self.flows_rejected += 1
                    self.metrics.on_terminated(
                        spec.fid, self.now, "fault: unroutable at arrival"
                    )
                    seq += 1
                    continue
            else:
                flow = make_progress(record.spec)
            push(waiting, (flow.transfer_start, seq, flow))
            seq += 1
        self._stream_admitted = seq

    # -- fault epochs (repro.faults) ---------------------------------------------------

    def _apply_due_faults(self, waiting: list, active: list) -> None:
        """Apply every fault event scheduled at or before ``now``.

        Updates the down sets, rebuilds the router's excluded-edge set
        and the capacity vector, then re-pins the path of every admitted
        flow that lost an edge — or terminates it when no route remains
        (the fluid analogue of the packet FaultController's reroute
        sweep; both use the same fid-keyed ECMP hash, so surviving flows
        land on the same repaired paths).
        """
        events = self.fault_events
        idx = self._fault_idx
        if idx >= len(events) or events[idx].time > self.now:
            return
        while idx < len(events) and events[idx].time <= self.now:
            event = events[idx]
            idx += 1
            if event.action == "link_down":
                self._down_pairs.add(_name_pair(event.a, event.b))
            elif event.action == "link_up":
                self._down_pairs.discard(_name_pair(event.a, event.b))
            elif event.action == "switch_down":
                self._down_switches.add(event.a)
            else:  # switch_up
                self._down_switches.discard(event.a)
        self.fault_events_applied += idx - self._fault_idx
        self._fault_idx = idx

        down_ids = set()
        down_pairs = self._down_pairs
        down_switches = self._down_switches
        for (a, b), eid in self.router.edge_index.items():
            if a in down_switches or b in down_switches \
                    or _name_pair(a, b) in down_pairs:
                down_ids.add(eid)
        self.router.set_down_edges(down_ids)
        base = self._base_capacities
        capacities = self.capacities
        for eid in range(len(capacities)):
            capacities[eid] = 0.0 if eid in down_ids else base[eid]
        self._reroute_fluid_flows(waiting, active, down_ids)

    def _reroute_fluid_flows(self, waiting: list, active: list,
                             down_ids: set[int]) -> None:
        rerouted = 0
        rejected = 0
        for flow in active:
            if any(eid in down_ids for eid in flow.path):
                rerouted, rejected = self._repath_flow(
                    flow, rerouted, rejected
                )
        for _, _, flow in waiting:
            if any(eid in down_ids for eid in flow.path):
                rerouted, rejected = self._repath_flow(
                    flow, rerouted, rejected
                )
        if not rerouted and not rejected:
            return
        self.fault_reroutes += rerouted
        self.flows_rejected += rejected
        if rejected:
            active[:] = [f for f in active if not f.departed]
            waiting[:] = [entry for entry in waiting
                          if not entry[2].departed]
            heapq.heapify(waiting)
        # cached comparator keys embed expected_tx, which moved with
        # max_rate for every rerouted flow; models that keep key caches
        # (PDQ) must rebuild them
        invalidate = getattr(self.model, "invalidate_keys", None)
        if invalidate is not None:
            invalidate()

    def _repath_flow(self, flow: FlowProgress, rerouted: int,
                     rejected: int) -> tuple[int, int]:
        spec = flow.spec
        try:
            path = self.router.flow_path_ids(spec.fid, spec.src, spec.dst)
        except RoutingError:
            flow.departed = True
            self.metrics.on_terminated(
                spec.fid, self.now, "fault: no route after failure"
            )
            return rerouted, rejected + 1
        capacities = self.capacities
        flow.path = path
        flow.max_rate = min(capacities[eid] for eid in path)
        flow.rtt = self._estimate_rtt(path)
        return rerouted + 1, rejected

    # -- helpers ---------------------------------------------------------------------------

    def _promote(self, waiting: list[tuple[float, int, FlowProgress]],
                 active: list[FlowProgress],
                 deadline_heap: list[tuple[float, int, FlowProgress]]) -> None:
        cutoff = self.now + 1e-12
        if not waiting or waiting[0][0] > cutoff:
            return
        batch: list[tuple[int, FlowProgress]] = []
        while waiting and waiting[0][0] <= cutoff:
            _, seq, flow = heapq.heappop(waiting)
            batch.append((seq, flow))
        # arrival order within the batch, matching the reference engine
        batch.sort()
        for seq, flow in batch:
            active.append(flow)
            if flow.abs_deadline is not None:
                heapq.heappush(deadline_heap, (flow.abs_deadline, seq, flow))

    def _apply_rates(self, active: list[FlowProgress], rates: dict[int, float],
                     eta_heap: list[tuple[float, int, int, FlowProgress]],
                     ) -> list[FlowProgress]:
        """Set per-flow rates, track pause spans, and return the sending
        flows (rate > 0) in active order; flows whose rate changed get a
        fresh ETA entry (a constant rate keeps its absolute ETA, so stale
        entries stay valid until the next rate change bumps the version)."""
        now = self.now
        rates_get = rates.get
        tracer = self.metrics.tracer
        sending: list[FlowProgress] = []
        for flow in active:
            rate = rates_get(flow.fid, 0.0)
            if rate <= 0 and flow.paused_since is None:
                flow.paused_since = now
                self.pauses += 1
            elif rate > 0 and flow.paused_since is not None:
                flow.waited += now - flow.paused_since
                flow.paused_since = None
                self.resumes += 1
            if rate != flow.rate:
                if tracer is not None:
                    tracer.on_rate(flow.fid, now, rate)
                flow.rate = rate
                flow.eta_version += 1
                if rate > 0:
                    heapq.heappush(eta_heap, (
                        flow.completion_eta(now), flow.eta_version,
                        flow.fid, flow,
                    ))
            if rate > 0:
                sending.append(flow)
        return sending

    def _terminate_flows(self, active: list[FlowProgress],
                         rates: dict[int, float]) -> bool:
        doomed = self.model.terminations(active, rates, self.now)
        if not doomed:
            return False
        doomed_fids = set()
        for fid, reason in doomed:
            doomed_fids.add(fid)
            self.metrics.on_terminated(fid, self.now, reason)
        still = []
        for flow in active:
            if flow.fid in doomed_fids:
                flow.departed = True
            else:
                still.append(flow)
        active[:] = still
        return True

    def _next_event_time(self, waiting: list[tuple[float, int, FlowProgress]],
                         eta_heap: list[tuple[float, int, int, FlowProgress]],
                         deadline_heap: list[tuple[float, int, FlowProgress]],
                         deadline: float) -> float:
        now = self.now
        horizon = now + self.refresh_interval
        if waiting:
            start = waiting[0][0]
            if start < horizon:
                horizon = start
        while eta_heap:
            _, version, _, flow = eta_heap[0]
            if flow.departed or version != flow.eta_version:
                heapq.heappop(eta_heap)  # stale: rate changed or flow gone
                continue
            # recompute at current time: FP-identical to the reference
            # engine's per-iteration scan value
            eta = flow.completion_eta(now)
            if eta < horizon:
                horizon = eta
            break
        while deadline_heap:
            dl, _, flow = deadline_heap[0]
            if flow.departed or dl <= now:
                heapq.heappop(deadline_heap)  # boundary passed for good
                continue
            # ET condition boundaries also warrant a recomputation
            if dl < horizon:
                horizon = dl
            break
        end = deadline + self.refresh_interval
        return horizon if horizon < end else end

    def _complete_finished(self, sending: list[FlowProgress],
                           active: list[FlowProgress]) -> None:
        # only flows that advanced with rate > 0 can cross the threshold
        finished = [f for f in sending if f.remaining_wire <= 1e-6]
        if not finished:
            return
        done_fids = set()
        for flow in finished:
            done_fids.add(flow.fid)
            flow.departed = True
            self.metrics.on_bytes(flow.fid, flow.spec.size_bytes)
            self.metrics.on_complete(flow.fid, self.now)
        active[:] = [f for f in active if f.fid not in done_fids]
