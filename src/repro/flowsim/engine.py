"""Event-driven fluid simulation engine.

Rates are recomputed at every arrival, transfer start, completion and
termination, plus at a periodic refresh (needed when criticality drifts
over time, e.g. flow aging); between recomputations rates are constant and
progress is linear, so completions are located exactly.

Protocol inefficiencies modeled (paper §5.5): per-packet header overhead
(flows carry wire bytes) and flow-initialization latency (data starts
flowing ``init_rtts`` round-trips after arrival).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.flowsim.paths import GraphRouter
from repro.flowsim.progress import FlowProgress
from repro.metrics.collector import MetricsCollector
from repro.topology.base import Topology
from repro.units import USEC, tx_time
from repro.workload.flow import FlowSpec

#: per-hop one-way latency components used for the RTT estimate, matching
#: the packet-level defaults (processing dominates)
_PER_HOP_DELAY = 25 * USEC + 0.1 * USEC


class FlowLevelSimulation:
    """Runs a workload through a rate model over a topology."""

    def __init__(
        self,
        topology: Topology,
        model,
        mtu: int = 1500,
        header_bytes: int = 56,
        init_rtts: float = 2.0,
        refresh_interval: float = 1e-3,
        metrics: Optional[MetricsCollector] = None,
    ):
        if mtu <= header_bytes:
            raise ExperimentError("mtu must exceed header size")
        self.topology = topology
        self.model = model
        self.mtu = mtu
        self.header_bytes = header_bytes
        self.payload = mtu - header_bytes
        self.init_rtts = init_rtts
        self.refresh_interval = refresh_interval
        self.metrics = metrics or MetricsCollector()
        self.router = GraphRouter(topology)
        self.capacities = self.router.capacities()
        self.now = 0.0
        self.recomputations = 0

    # -- setup helpers --------------------------------------------------------------

    def _wire_size(self, size_bytes: int) -> float:
        packets = -(-size_bytes // self.payload)
        return size_bytes + packets * self.header_bytes

    def _estimate_rtt(self, path: Sequence[Tuple[str, str]]) -> float:
        rtt = 0.0
        for a, b in path:
            rate = self.capacities[(a, b)]
            rtt += 2.0 * (_PER_HOP_DELAY + tx_time(self.header_bytes, rate))
        return rtt

    def _make_progress(self, spec: FlowSpec) -> FlowProgress:
        path = self.router.flow_path(spec.fid, spec.src, spec.dst)
        max_rate = min(self.capacities[edge] for edge in path)
        rtt = self._estimate_rtt(path)
        return FlowProgress(
            spec=spec,
            path=path,
            max_rate=max_rate,
            rtt=rtt,
            wire_size=self._wire_size(spec.size_bytes),
            transfer_start=spec.arrival + self.init_rtts * rtt,
        )

    # -- main loop -------------------------------------------------------------------

    def run(self, flows: Sequence[FlowSpec], deadline: float = 60.0,
            max_recomputations: int = 2_000_000) -> MetricsCollector:
        pending = sorted(
            (self._make_progress(self.metrics.register(s).spec) for s in flows),
            key=lambda f: f.spec.arrival,
        )
        for flow in pending:
            self.metrics.on_start(flow.fid, flow.spec.arrival)
        waiting: List[FlowProgress] = list(pending)  # not yet transferring
        active: List[FlowProgress] = []

        while (waiting or active) and self.now <= deadline:
            if not active and waiting:
                # jump to the next transfer start
                self.now = max(self.now, min(f.transfer_start for f in waiting))
            self._promote(waiting, active)
            if not active:
                continue

            rates = self.model.allocate(active, self.capacities, self.now)
            self.recomputations += 1
            if self.recomputations > max_recomputations:
                raise ExperimentError(
                    "flow-level simulation did not converge "
                    f"({max_recomputations} recomputations)"
                )
            self._apply_rates(active, rates)
            if self._terminate_flows(active, rates):
                continue  # rates changed; recompute immediately

            horizon = self._next_event_time(waiting, active, deadline)
            dt = horizon - self.now
            if dt < 0:
                raise ExperimentError("fluid engine time went backwards")
            for flow in active:
                flow.advance(dt)
            self.now = horizon
            self._complete_finished(active)
        return self.metrics

    # -- helpers ---------------------------------------------------------------------------

    def _promote(self, waiting: List[FlowProgress],
                 active: List[FlowProgress]) -> None:
        # single pass: repeated list.remove would be quadratic at scale
        cutoff = self.now + 1e-12
        still_waiting: List[FlowProgress] = []
        for flow in waiting:
            if flow.transfer_start <= cutoff:
                active.append(flow)
            else:
                still_waiting.append(flow)
        if len(still_waiting) != len(waiting):
            waiting[:] = still_waiting

    def _apply_rates(self, active: List[FlowProgress],
                     rates: Dict[int, float]) -> None:
        now = self.now
        for flow in active:
            rate = rates.get(flow.fid, 0.0)
            if rate <= 0 and flow.paused_since is None:
                flow.paused_since = now
            elif rate > 0 and flow.paused_since is not None:
                flow.waited += now - flow.paused_since
                flow.paused_since = None
            flow.rate = rate

    def _terminate_flows(self, active: List[FlowProgress],
                         rates: Dict[int, float]) -> bool:
        doomed = self.model.terminations(active, rates, self.now)
        if not doomed:
            return False
        doomed_fids = set()
        for fid, reason in doomed:
            doomed_fids.add(fid)
            self.metrics.on_terminated(fid, self.now, reason)
        active[:] = [f for f in active if f.fid not in doomed_fids]
        return True

    def _next_event_time(self, waiting: List[FlowProgress],
                         active: List[FlowProgress], deadline: float) -> float:
        horizon = self.now + self.refresh_interval
        if waiting:
            horizon = min(horizon, min(f.transfer_start for f in waiting))
        for flow in active:
            horizon = min(horizon, flow.completion_eta(self.now))
            # ET condition boundaries also warrant a recomputation
            if flow.spec.absolute_deadline is not None:
                if flow.spec.absolute_deadline > self.now:
                    horizon = min(horizon, flow.spec.absolute_deadline)
        return min(horizon, deadline + self.refresh_interval)

    def _complete_finished(self, active: List[FlowProgress]) -> None:
        finished = [f for f in active if f.remaining_wire <= 1e-6]
        if not finished:
            return
        done_fids = set()
        for flow in finished:
            done_fids.add(flow.fid)
            self.metrics.on_bytes(flow.fid, flow.spec.size_bytes)
            self.metrics.on_complete(flow.fid, self.now)
        active[:] = [f for f in active if f.fid not in done_fids]
