"""Reference (pre-optimization) fluid simulation engine and rate models.

These are the frozen PR-1 implementations of
:class:`~repro.flowsim.engine.FlowLevelSimulation` and the three rate
models, kept verbatim as the golden baseline: per-event full ``sorted()``
key recomputation, O(n) scans of the waiting/active lists, and
string-tuple edge-capacity dicts. The optimized engine must produce
**bit-identical** MetricsCollector output (pinned by
``tests/test_flowsim_parity.py``), and ``python -m repro bench`` reports
speedups against this module. Do not optimize it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.comparator import FlowComparator
from repro.core.config import PdqConfig
from repro.errors import ExperimentError
from repro.flowsim.paths import GraphRouter
from repro.flowsim.progress import FlowProgress
from repro.metrics.collector import MetricsCollector
from repro.topology.base import Topology
from repro.units import USEC, tx_time
from repro.utils.rng import spawn_rng
from repro.workload.flow import FlowSpec

Edge = tuple[str, str]

#: per-hop one-way latency components used for the RTT estimate, matching
#: the packet-level defaults (processing dominates)
_PER_HOP_DELAY = 25 * USEC + 0.1 * USEC


class NaiveFlowLevelSimulation:
    """Runs a workload through a rate model over a topology (baseline)."""

    def __init__(
        self,
        topology: Topology,
        model,
        mtu: int = 1500,
        header_bytes: int = 56,
        init_rtts: float = 2.0,
        refresh_interval: float = 1e-3,
        metrics: MetricsCollector | None = None,
    ):
        if mtu <= header_bytes:
            raise ExperimentError("mtu must exceed header size")
        self.topology = topology
        self.model = model
        self.mtu = mtu
        self.header_bytes = header_bytes
        self.payload = mtu - header_bytes
        self.init_rtts = init_rtts
        self.refresh_interval = refresh_interval
        self.metrics = metrics or MetricsCollector()
        self.router = GraphRouter(topology)
        self.capacities = self.router.capacities()
        self.now = 0.0
        self.recomputations = 0
        self.iterations = 0

    # -- setup helpers --------------------------------------------------------------

    def _wire_size(self, size_bytes: int) -> float:
        packets = -(-size_bytes // self.payload)
        return size_bytes + packets * self.header_bytes

    def _estimate_rtt(self, path: Sequence[tuple[str, str]]) -> float:
        rtt = 0.0
        for a, b in path:
            rate = self.capacities[(a, b)]
            rtt += 2.0 * (_PER_HOP_DELAY + tx_time(self.header_bytes, rate))
        return rtt

    def _make_progress(self, spec: FlowSpec) -> FlowProgress:
        path = self.router.flow_path(spec.fid, spec.src, spec.dst)
        max_rate = min(self.capacities[edge] for edge in path)
        rtt = self._estimate_rtt(path)
        return FlowProgress(
            spec=spec,
            path=path,
            max_rate=max_rate,
            rtt=rtt,
            wire_size=self._wire_size(spec.size_bytes),
            transfer_start=spec.arrival + self.init_rtts * rtt,
        )

    # -- main loop -------------------------------------------------------------------

    def run(self, flows: Sequence[FlowSpec], deadline: float = 60.0,
            max_recomputations: int = 2_000_000) -> MetricsCollector:
        pending = sorted(
            (self._make_progress(self.metrics.register(s).spec) for s in flows),
            key=lambda f: f.spec.arrival,
        )
        for flow in pending:
            self.metrics.on_start(flow.fid, flow.spec.arrival)
        waiting: list[FlowProgress] = list(pending)  # not yet transferring
        active: list[FlowProgress] = []

        while (waiting or active) and self.now <= deadline:
            self.iterations += 1
            if not active and waiting:
                # jump to the next transfer start
                self.now = max(self.now, min(f.transfer_start for f in waiting))
            self._promote(waiting, active)
            if not active:
                continue

            rates = self.model.allocate(active, self.capacities, self.now)
            self.recomputations += 1
            if self.recomputations > max_recomputations:
                raise ExperimentError(
                    "flow-level simulation did not converge "
                    f"({max_recomputations} recomputations)"
                )
            self._apply_rates(active, rates)
            if self._terminate_flows(active, rates):
                continue  # rates changed; recompute immediately

            horizon = self._next_event_time(waiting, active, deadline)
            dt = horizon - self.now
            if dt < 0:
                raise ExperimentError("fluid engine time went backwards")
            for flow in active:
                flow.advance(dt)
            self.now = horizon
            self._complete_finished(active)
        return self.metrics

    # -- helpers ---------------------------------------------------------------------------

    def _promote(self, waiting: list[FlowProgress],
                 active: list[FlowProgress]) -> None:
        # single pass: repeated list.remove would be quadratic at scale
        cutoff = self.now + 1e-12
        still_waiting: list[FlowProgress] = []
        for flow in waiting:
            if flow.transfer_start <= cutoff:
                active.append(flow)
            else:
                still_waiting.append(flow)
        if len(still_waiting) != len(waiting):
            waiting[:] = still_waiting

    def _apply_rates(self, active: list[FlowProgress],
                     rates: dict[int, float]) -> None:
        now = self.now
        for flow in active:
            rate = rates.get(flow.fid, 0.0)
            if rate <= 0 and flow.paused_since is None:
                flow.paused_since = now
            elif rate > 0 and flow.paused_since is not None:
                flow.waited += now - flow.paused_since
                flow.paused_since = None
            flow.rate = rate

    def _terminate_flows(self, active: list[FlowProgress],
                         rates: dict[int, float]) -> bool:
        doomed = self.model.terminations(active, rates, self.now)
        if not doomed:
            return False
        doomed_fids = set()
        for fid, reason in doomed:
            doomed_fids.add(fid)
            self.metrics.on_terminated(fid, self.now, reason)
        active[:] = [f for f in active if f.fid not in doomed_fids]
        return True

    def _next_event_time(self, waiting: list[FlowProgress],
                         active: list[FlowProgress], deadline: float) -> float:
        horizon = self.now + self.refresh_interval
        if waiting:
            horizon = min(horizon, min(f.transfer_start for f in waiting))
        for flow in active:
            horizon = min(horizon, flow.completion_eta(self.now))
            # ET condition boundaries also warrant a recomputation
            if flow.spec.absolute_deadline is not None and \
                    flow.spec.absolute_deadline > self.now:
                horizon = min(horizon, flow.spec.absolute_deadline)
        return min(horizon, deadline + self.refresh_interval)

    def _complete_finished(self, active: list[FlowProgress]) -> None:
        finished = [f for f in active if f.remaining_wire <= 1e-6]
        if not finished:
            return
        done_fids = set()
        for flow in finished:
            done_fids.add(flow.fid)
            self.metrics.on_bytes(flow.fid, flow.spec.size_bytes)
            self.metrics.on_complete(flow.fid, self.now)
        active[:] = [f for f in active if f.fid not in done_fids]


# -- frozen pre-optimization rate models ------------------------------------------


class NaivePdqModel:
    """Seed PdqModel: full key recomputation on every allocate call."""

    name = "PDQ"

    def __init__(self, config: PdqConfig | None = None,
                 comparator: FlowComparator | None = None):
        self.config = config or PdqConfig.full()
        self.comparator = comparator or FlowComparator()

    def _criticality(self, flow: FlowProgress, now: float) -> float | None:
        mode = self.config.criticality_mode
        if flow.criticality is not None:
            return flow.criticality
        if mode == "random":
            flow.criticality = float(
                spawn_rng(flow.fid, "criticality").random()
            )
            return flow.criticality
        if mode == "estimate":
            chunk = self.config.estimate_chunk
            return float(int(flow.sent_wire // chunk) * chunk)
        return None

    def _aged_expected_tx(self, flow: FlowProgress, now: float) -> float:
        expected = flow.expected_tx()
        if self.config.aging_rate <= 0:
            return expected
        waited = flow.waited
        if flow.paused_since is not None:
            waited += now - flow.paused_since
        units = waited / self.config.aging_time_unit
        return expected / (2.0 ** (self.config.aging_rate * units))

    def _key(self, flow: FlowProgress, now: float):
        return self.comparator.key(
            flow.spec.fid,
            flow.spec.absolute_deadline,
            self._aged_expected_tx(flow, now),
            self._criticality(flow, now),
        )

    def allocate(self, flows: list[FlowProgress],
                 capacities: dict[Edge, float],
                 now: float) -> dict[int, float]:
        residual = dict(capacities)
        rates: dict[int, float] = {}
        ordered = sorted(flows, key=lambda f: self._key(f, now))
        for flow in ordered:
            available = min(
                (residual[edge] for edge in flow.path), default=0.0
            )
            rate = min(flow.max_rate, available)
            floor = max(
                self.config.min_rate,
                self.config.crumb_fraction * flow.max_rate,
            )
            if rate < floor:
                rates[flow.spec.fid] = 0.0
                continue
            rates[flow.spec.fid] = rate
            for edge in flow.path:
                residual[edge] -= rate
        return rates

    def terminations(self, flows: list[FlowProgress],
                     rates: dict[int, float], now: float) -> list[tuple[int, str]]:
        if not self.config.early_termination:
            return []
        doomed = []
        for flow in flows:
            deadline = flow.spec.absolute_deadline
            if deadline is None:
                continue
            if now > deadline:
                doomed.append((flow.spec.fid, "early_termination:deadline_passed"))
            elif now + flow.expected_tx() > deadline:
                doomed.append((flow.spec.fid, "early_termination:cannot_finish"))
            elif rates.get(flow.spec.fid, 0.0) <= 0 and now + flow.rtt > deadline:
                doomed.append(
                    (flow.spec.fid, "early_termination:paused_near_deadline")
                )
        return doomed


def naive_max_min_rates(flows: list[FlowProgress],
                        capacities: dict[Edge, float]) -> dict[int, float]:
    """Seed max-min water-filling over string-tuple capacity dicts."""
    rates: dict[int, float] = {f.spec.fid: 0.0 for f in flows}
    residual = dict(capacities)
    unfrozen: set[int] = {f.spec.fid for f in flows}
    by_fid = {f.spec.fid: f for f in flows}
    link_flows: dict[Edge, set[int]] = {}
    for flow in flows:
        for edge in flow.path:
            link_flows.setdefault(edge, set()).add(flow.spec.fid)

    for _ in range(len(flows) + len(link_flows) + 1):
        if not unfrozen:
            break
        bottleneck_share = float("inf")
        for edge, members in link_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = residual[edge] / len(active)
            bottleneck_share = min(bottleneck_share, share)
        if bottleneck_share == float("inf"):
            break
        capped = [
            fid for fid in unfrozen
            if by_fid[fid].max_rate - rates[fid] <= bottleneck_share + 1e-9
        ]
        if capped:
            for fid in capped:
                increment = by_fid[fid].max_rate - rates[fid]
                rates[fid] = by_fid[fid].max_rate
                for edge in by_fid[fid].path:
                    residual[edge] -= increment
                unfrozen.discard(fid)
            continue
        for fid in list(unfrozen):
            rates[fid] += bottleneck_share
        for edge, members in link_flows.items():
            active = members & unfrozen
            residual[edge] -= bottleneck_share * len(active)
        for edge, members in link_flows.items():
            if residual[edge] <= 1e-6:
                for fid in members & unfrozen:
                    unfrozen.discard(fid)
    return rates


class NaiveRcpModel:
    """Seed RcpModel: max-min fair rates, dict-keyed capacities."""

    name = "RCP"

    def allocate(self, flows: list[FlowProgress],
                 capacities: dict[Edge, float],
                 now: float) -> dict[int, float]:
        return naive_max_min_rates(flows, capacities)

    def terminations(self, flows, rates, now) -> list[tuple[int, str]]:
        return []


class NaiveD3Model:
    """Seed D3Model: arrival-order reservations plus max-min leftovers."""

    name = "D3"

    def allocate(self, flows: list[FlowProgress],
                 capacities: dict[Edge, float],
                 now: float) -> dict[int, float]:
        residual = dict(capacities)
        reserved: dict[int, float] = {f.spec.fid: 0.0 for f in flows}

        deadline_flows = sorted(
            (f for f in flows if f.spec.has_deadline),
            key=lambda f: (f.spec.arrival, f.spec.fid),
        )
        for flow in deadline_flows:
            deadline = flow.spec.absolute_deadline
            time_left = deadline - now
            if time_left <= 0:
                continue  # quenching will remove it
            demand = min(flow.max_rate, flow.remaining_wire * 8.0 / time_left)
            available = min(
                (residual[edge] for edge in flow.path), default=0.0
            )
            grant = max(0.0, min(demand, available))
            if grant > 0:
                reserved[flow.spec.fid] = grant
                for edge in flow.path:
                    residual[edge] -= grant

        leftovers = [
            _NaiveShadow(f, max(0.0, f.max_rate - reserved[f.spec.fid]))
            for f in flows
        ]
        shares = naive_max_min_rates(leftovers, residual)
        return {
            f.spec.fid: reserved[f.spec.fid] + shares.get(f.spec.fid, 0.0)
            for f in flows
        }

    def terminations(self, flows: list[FlowProgress],
                     rates: dict[int, float], now: float) -> list[tuple[int, str]]:
        return [
            (f.spec.fid, "quenching:deadline_passed")
            for f in flows
            if f.spec.absolute_deadline is not None
            and now > f.spec.absolute_deadline
        ]


class _NaiveShadow:
    """FlowProgress stand-in with a reduced max rate for the leftover
    water-filling phase."""

    __slots__ = ("spec", "path", "max_rate")

    def __init__(self, flow: FlowProgress, headroom: float):
        self.spec = flow.spec
        self.path = flow.path
        self.max_rate = headroom


#: optimized-model class -> its frozen baseline counterpart
def naive_model_for(model):
    """Build the frozen counterpart of an optimized rate model instance."""
    from repro.flowsim.d3_model import D3Model
    from repro.flowsim.pdq_model import PdqModel
    from repro.flowsim.rcp_model import RcpModel

    if isinstance(model, PdqModel):
        return NaivePdqModel(model.config, model.comparator)
    if isinstance(model, RcpModel):
        return NaiveRcpModel()
    if isinstance(model, D3Model):
        return NaiveD3Model()
    raise ExperimentError(
        f"no naive baseline for model {type(model).__name__}"
    )
