"""Pinned ECMP paths over the bare topology graph.

Mirrors :mod:`repro.net.routing` exactly -- same node-id assignment (sorted
node names), same link ordering, same hash -- so a flow takes the *same*
path in the flow-level and packet-level simulators. Fig 8's
packet-vs-flow-level comparison depends on that correspondence.
"""

from __future__ import annotations

from collections import deque

from repro.errors import RoutingError
from repro.net.routing import ecmp_hash
from repro.topology.base import Topology

#: a directed edge between named nodes
Edge = tuple[str, str]

#: pinned-path cache bound: each flow asks for its path once, so the
#: cache only earns hits on re-launched fids; past this many entries
#: (an open-system stream of fresh fids) it is cleared rather than
#: allowed to grow O(flows) — kept small so the cache, not the live
#: flow set, never dominates a streaming run's peak memory
PATH_CACHE_LIMIT = 4096


class GraphRouter:
    """ECMP path pinning on a topology graph (no Link objects needed)."""

    def __init__(self, topology: Topology):
        self.topology = topology
        graph = topology.graph
        self._node_id: dict[str, int] = {
            name: i for i, name in enumerate(sorted(graph.nodes()))
        }
        #: dense directed-edge ids (see Topology.directed_edge_index for the
        #: assignment contract); these double as the packet-level link ids
        self.edge_index: dict[Edge, int] = topology.directed_edge_index()
        # out-adjacency with deterministic link ids matching Network's
        self._out: dict[str, list[tuple[int, str]]] = {
            name: [] for name in graph.nodes()
        }
        for (a, b), eid in self.edge_index.items():
            self._out[a].append((eid, b))
        for neighbors in self._out.values():
            neighbors.sort()
        self._dist_cache: dict[str, dict[str, int]] = {}
        self._path_cache: dict[tuple[int, str, str], tuple[Edge, ...]] = {}
        self._path_ids_cache: dict[tuple[int, str, str], tuple[int, ...]] = {}
        #: directed edge ids excluded from routing (fault injection);
        #: always populated in symmetric pairs — both directions of a
        #: failed cable — so the reversed-adjacency BFS stays correct
        self._down_edges: frozenset[int] = frozenset()

    # -- public ---------------------------------------------------------------

    def set_down_edges(self, edge_ids) -> None:
        """Replace the failed-edge set and invalidate every cache.

        Mirrors :meth:`repro.net.routing.Router.invalidate_routes` plus
        the packet links' ``up`` flags in one call: the fluid engine has
        no Link objects, so the router itself carries the down set.
        """
        down = frozenset(edge_ids)
        if down == self._down_edges:
            return
        self._down_edges = down
        self._dist_cache.clear()
        self._path_cache.clear()
        self._path_ids_cache.clear()

    def flow_path(self, fid: int, src: str, dst: str) -> tuple[Edge, ...]:
        key = (fid, src, dst)
        path = self._path_cache.get(key)
        if path is None:
            path = self._compute(fid, src, dst)
            if len(self._path_cache) >= PATH_CACHE_LIMIT:
                self._path_cache.clear()
            self._path_cache[key] = path
        return path

    def flow_path_ids(self, fid: int, src: str, dst: str) -> tuple[int, ...]:
        """Same pinned path as :meth:`flow_path`, as dense edge ids.

        The optimized flow-level engine stores these on
        :class:`~repro.flowsim.progress.FlowProgress` so rate models index
        flat residual-capacity lists instead of hashing name tuples.
        """
        key = (fid, src, dst)
        ids = self._path_ids_cache.get(key)
        if ids is None:
            index = self.edge_index
            ids = tuple(index[edge] for edge in self.flow_path(fid, src, dst))
            if len(self._path_ids_cache) >= PATH_CACHE_LIMIT:
                self._path_ids_cache.clear()
            self._path_ids_cache[key] = ids
        return ids

    def hop_count(self, src: str, dst: str) -> int:
        dist = self._distances(dst)
        if src not in dist:
            raise RoutingError(f"no route {src} -> {dst}")
        return dist[src]

    def capacities(self) -> dict[Edge, float]:
        """Directed capacity map for every link in the topology."""
        caps: dict[Edge, float] = {}
        for a, b, data in self.topology.graph.edges(data=True):
            caps[(a, b)] = data["rate_bps"]
            caps[(b, a)] = data["rate_bps"]
        return caps

    def capacity_vector(self) -> list[float]:
        """Flat capacity list indexed by dense directed-edge id."""
        edges = self.topology.graph.edges
        caps = [0.0] * len(self.edge_index)
        for (a, b), eid in self.edge_index.items():
            caps[eid] = edges[a, b]["rate_bps"]
        return caps

    # -- internals ----------------------------------------------------------------

    def _distances(self, dst: str) -> dict[str, int]:
        dist = self._dist_cache.get(dst)
        if dist is not None:
            return dist
        down = self._down_edges
        dist = {dst: 0}
        frontier = deque([dst])
        while frontier:
            node = frontier.popleft()
            for eid, neighbor in self._out[node]:
                if eid in down:
                    # down sets are symmetric, so skipping the forward
                    # id here equals skipping the reversed traversal
                    continue
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    frontier.append(neighbor)
        self._dist_cache[dst] = dist
        return dist

    def _compute(self, fid: int, src: str, dst: str) -> tuple[Edge, ...]:
        if src == dst:
            raise RoutingError("flow src equals dst")
        dist = self._distances(dst)
        if src not in dist:
            raise RoutingError(f"no route {src} -> {dst}")
        down = self._down_edges
        path: list[Edge] = []
        node = src
        while node != dst:
            here = dist[node]
            candidates = [
                (lid, nb) for lid, nb in self._out[node]
                if lid not in down and dist.get(nb, here) == here - 1
            ]
            if not candidates:
                raise RoutingError(f"routing dead-end at {node} toward {dst}")
            pick = candidates[
                ecmp_hash(fid, self._node_id[node]) % len(candidates)
            ]
            path.append((node, pick[1]))
            node = pick[1]
        return tuple(path)
