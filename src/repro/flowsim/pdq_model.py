"""PDQ equilibrium rate model (the §3 centralized algorithm as fluid).

For a stable set of flows, distributed PDQ converges to the allocation the
centralized scheduler computes (paper §4): process flows in criticality
order, give each the most bandwidth its path still has. The flow-level
simulator therefore uses the centralized algorithm directly, with the same
crumb rule as the packet-level switch (a flow offered only a sliver of its
maximal rate is paused instead).

``capacities`` may be a dict keyed by ``(src, dst)`` name tuples or a flat
list indexed by dense edge ids — flow paths just have to hold the matching
edge tokens (see :mod:`repro.flowsim.progress`).
"""

from __future__ import annotations


from repro.core.comparator import FlowComparator
from repro.core.config import PdqConfig
from repro.flowsim.progress import FlowProgress
from repro.utils.rng import spawn_rng


class PdqModel:
    """Water-filling in criticality order; supports ET, aging and the
    alternative criticality schemes (§5.6, §7)."""

    name = "PDQ"

    def __init__(self, config: PdqConfig | None = None,
                 comparator: FlowComparator | None = None):
        self.config = config or PdqConfig.full()
        self.comparator = comparator or FlowComparator()
        # comparator-key cache: flow -> (remaining_wire at computation,
        # key). Only valid while the flow's other inputs are static (see
        # _keys_are_static); transmission progress invalidates via
        # remaining_wire. Entries live as long as the model does (bounded
        # by the flows of one run; models are built per scenario).
        self._key_cache: dict[FlowProgress, tuple[float, tuple]] = {}
        # comparator-cache telemetry: keys served from cache vs recomputed
        # (covers both the incremental-sort reuse and the static-key cache)
        self.cache_hits = 0
        self.cache_misses = 0
        # incremental-sort state, only used under the begin_run() contract
        self._incremental = False
        self._prev_keyed: list | None = None

    def begin_run(self) -> None:
        """Opt into incremental sorting (called by the engine).

        Engine contract: between ``allocate`` calls the flows list only
        changes by *appending* newly promoted flows at the end and by
        removing flows whose ``departed`` flag is set (relative order
        otherwise preserved). Under that contract the model keeps the
        previous sorted order and re-sorts only flows whose key changed.
        Direct ``allocate`` calls without ``begin_run`` always rebuild."""
        self._incremental = True
        self._prev_keyed = None

    def invalidate_keys(self) -> None:
        """Drop every cached comparator key and the incremental-sort
        state. The engine calls this at fault-epoch reroutes: a flow's
        ``max_rate`` (and so ``expected_tx``) can change without its
        ``remaining_wire`` moving, which is the one invalidation signal
        the caches watch."""
        self._key_cache.clear()
        self._prev_keyed = None

    # -- criticality -------------------------------------------------------------

    def _criticality(self, flow: FlowProgress, now: float) -> float | None:
        """Resolve the comparator's criticality input for ``flow``.

        Caching contract (relied on by the comparator-key cache):

        * a spec-provided ``criticality`` always wins and never changes;
        * ``random`` mode draws once per flow (seeded by fid) and caches
          the draw in ``flow.criticality`` — stable for the flow's life;
        * ``estimate`` mode is intentionally **dynamic**: it derives from
          bytes sent so far (quantized to ``estimate_chunk``) and is never
          cached on the flow, so every call reflects current progress;
        * ``deadline`` mode has no criticality override (returns None).
        """
        if flow.criticality is not None:
            return flow.criticality
        mode = self.config.criticality_mode
        if mode == "random":
            flow.criticality = float(
                spawn_rng(flow.fid, "criticality").random()
            )
            return flow.criticality
        if mode == "estimate":
            chunk = self.config.estimate_chunk
            return float(int(flow.sent_wire // chunk) * chunk)
        return None

    def _aged_expected_tx(self, flow: FlowProgress, now: float) -> float:
        expected = flow.expected_tx()
        if self.config.aging_rate <= 0:
            return expected
        waited = flow.waited
        if flow.paused_since is not None:
            waited += now - flow.paused_since
        units = waited / self.config.aging_time_unit
        return expected / (2.0 ** (self.config.aging_rate * units))

    def _key(self, flow: FlowProgress, now: float):
        return self.comparator.key(
            flow.fid,
            flow.abs_deadline,
            self._aged_expected_tx(flow, now),
            self._criticality(flow, now),
        )

    def _keys_are_static(self) -> bool:
        """True when a flow's comparator key can only change through its
        own transmission progress (``remaining_wire``), so cached keys
        stay valid between recomputations. Aging keys decay with wall
        time and estimate-mode criticality moves with bytes sent below
        chunk granularity — both must be recomputed every time."""
        return (self.config.aging_rate <= 0
                and self.config.criticality_mode != "estimate")

    # -- allocation ------------------------------------------------------------------

    def allocate(self, flows: list[FlowProgress], capacities,
                 now: float) -> dict[int, float]:
        config = self.config
        comparator_key = self.comparator.key
        static = self._keys_are_static()
        prev = self._prev_keyed if (static and self._incremental) else None
        # entries are (key, flow, remaining_wire_at_key); keys embed the
        # fid, so they are unique and tuple comparison never reaches the
        # (incomparable) FlowProgress in second position
        if prev is not None:
            # previous sorted order, minus departures; only flows that
            # progressed (or newly arrived at the list's tail, per the
            # begin_run contract) need fresh keys and a near-sorted sort
            keyed = []
            tail = []
            for entry in prev:
                flow = entry[1]
                if flow.departed:
                    continue
                if flow.remaining_wire == entry[2]:
                    keyed.append(entry)
                else:
                    tail.append((
                        comparator_key(
                            flow.fid, flow.abs_deadline, flow.expected_tx(),
                            self._criticality(flow, now),
                        ),
                        flow, flow.remaining_wire,
                    ))
            n_new = len(flows) - len(keyed) - len(tail)
            if n_new:
                for flow in flows[len(flows) - n_new:]:
                    tail.append((
                        comparator_key(
                            flow.fid, flow.abs_deadline, flow.expected_tx(),
                            self._criticality(flow, now),
                        ),
                        flow, flow.remaining_wire,
                    ))
            self.cache_hits += len(keyed)
            self.cache_misses += len(tail)
            if tail:
                keyed.extend(tail)
                keyed.sort()
            self._prev_keyed = keyed
        elif static:
            # recompute only keys whose inputs progressed; everything else
            # is served from the cache (deadline/max_rate/criticality are
            # static once the flow exists)
            cache = self._key_cache
            keyed = []
            hits = 0
            for flow in flows:
                remaining = flow.remaining_wire
                cached = cache.get(flow)
                if cached is not None and cached[0] == remaining:
                    keyed.append((cached[1], flow, remaining))
                    hits += 1
                else:
                    key = comparator_key(
                        flow.fid, flow.abs_deadline, flow.expected_tx(),
                        self._criticality(flow, now),
                    )
                    cache[flow] = (remaining, key)
                    keyed.append((key, flow, remaining))
            self.cache_hits += hits
            self.cache_misses += len(flows) - hits
            keyed.sort()
            if self._incremental:
                self._prev_keyed = keyed
        else:
            keyed = [(self._key(flow, now), flow, flow.remaining_wire)
                     for flow in flows]
            keyed.sort()

        residual = capacities.copy()
        rates: dict[int, float] = {}
        min_rate = config.min_rate
        crumb_fraction = config.crumb_fraction
        for entry in keyed:
            flow = entry[1]
            path = flow.path
            max_rate = flow.max_rate
            available = residual[path[0]] if path else 0.0
            for edge in path:
                cap = residual[edge]
                if cap < available:
                    available = cap
            rate = max_rate if max_rate < available else available
            floor = crumb_fraction * max_rate
            if floor < min_rate:
                floor = min_rate
            if rate < floor:
                rates[flow.fid] = 0.0
                continue
            rates[flow.fid] = rate
            for edge in path:
                residual[edge] -= rate
        return rates

    # -- early termination (§3.1) -----------------------------------------------------

    def terminations(self, flows: list[FlowProgress],
                     rates: dict[int, float], now: float) -> list[tuple[int, str]]:
        if not self.config.early_termination:
            return []
        doomed = []
        for flow in flows:
            deadline = flow.abs_deadline
            if deadline is None:
                continue
            if now > deadline:
                doomed.append((flow.fid, "early_termination:deadline_passed"))
            elif now + flow.expected_tx() > deadline:
                doomed.append((flow.fid, "early_termination:cannot_finish"))
            elif rates.get(flow.fid, 0.0) <= 0 and now + flow.rtt > deadline:
                doomed.append((flow.fid, "early_termination:paused_near_deadline"))
        return doomed
