"""PDQ equilibrium rate model (the §3 centralized algorithm as fluid).

For a stable set of flows, distributed PDQ converges to the allocation the
centralized scheduler computes (paper §4): process flows in criticality
order, give each the most bandwidth its path still has. The flow-level
simulator therefore uses the centralized algorithm directly, with the same
crumb rule as the packet-level switch (a flow offered only a sliver of its
maximal rate is paused instead).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.comparator import FlowComparator
from repro.core.config import PdqConfig
from repro.flowsim.progress import FlowProgress
from repro.utils.rng import spawn_rng


class PdqModel:
    """Water-filling in criticality order; supports ET, aging and the
    alternative criticality schemes (§5.6, §7)."""

    name = "PDQ"

    def __init__(self, config: Optional[PdqConfig] = None,
                 comparator: Optional[FlowComparator] = None):
        self.config = config or PdqConfig.full()
        self.comparator = comparator or FlowComparator()

    # -- criticality -------------------------------------------------------------

    def _criticality(self, flow: FlowProgress, now: float) -> Optional[float]:
        mode = self.config.criticality_mode
        if flow.criticality is not None:
            return flow.criticality
        if mode == "random":
            flow.criticality = float(
                spawn_rng(flow.fid, "criticality").random()
            )
            return flow.criticality
        if mode == "estimate":
            chunk = self.config.estimate_chunk
            return float(int(flow.sent_wire // chunk) * chunk)
        return None

    def _aged_expected_tx(self, flow: FlowProgress, now: float) -> float:
        expected = flow.expected_tx()
        if self.config.aging_rate <= 0:
            return expected
        waited = flow.waited
        if flow.paused_since is not None:
            waited += now - flow.paused_since
        units = waited / self.config.aging_time_unit
        return expected / (2.0 ** (self.config.aging_rate * units))

    def _key(self, flow: FlowProgress, now: float):
        return self.comparator.key(
            flow.fid,
            flow.spec.absolute_deadline,
            self._aged_expected_tx(flow, now),
            self._criticality(flow, now),
        )

    # -- allocation ------------------------------------------------------------------

    def allocate(self, flows: List[FlowProgress],
                 capacities: Dict[Tuple[str, str], float],
                 now: float) -> Dict[int, float]:
        residual = dict(capacities)
        rates: Dict[int, float] = {}
        ordered = sorted(flows, key=lambda f: self._key(f, now))
        for flow in ordered:
            available = min(
                (residual[edge] for edge in flow.path), default=0.0
            )
            rate = min(flow.max_rate, available)
            floor = max(
                self.config.min_rate,
                self.config.crumb_fraction * flow.max_rate,
            )
            if rate < floor:
                rates[flow.fid] = 0.0
                continue
            rates[flow.fid] = rate
            for edge in flow.path:
                residual[edge] -= rate
        return rates

    # -- early termination (§3.1) -----------------------------------------------------

    def terminations(self, flows: List[FlowProgress],
                     rates: Dict[int, float], now: float) -> List[Tuple[int, str]]:
        if not self.config.early_termination:
            return []
        doomed = []
        for flow in flows:
            deadline = flow.spec.absolute_deadline
            if deadline is None:
                continue
            if now > deadline:
                doomed.append((flow.fid, "early_termination:deadline_passed"))
            elif now + flow.expected_tx() > deadline:
                doomed.append((flow.fid, "early_termination:cannot_finish"))
            elif rates.get(flow.fid, 0.0) <= 0 and now + flow.rtt > deadline:
                doomed.append((flow.fid, "early_termination:paused_near_deadline"))
        return doomed
