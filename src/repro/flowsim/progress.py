"""Per-flow progress state inside the fluid engine."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.workload.flow import FlowSpec


class FlowProgress:
    """One in-flight flow in the flow-level simulator.

    ``remaining_wire`` counts wire bytes (payload plus per-packet header
    overhead), matching the packet-level simulator's notion of work.
    """

    __slots__ = (
        "spec", "path", "max_rate", "rtt", "wire_size", "remaining_wire",
        "transfer_start", "rate", "waited", "paused_since", "criticality",
    )

    def __init__(self, spec: FlowSpec, path: Sequence[Tuple[str, str]],
                 max_rate: float, rtt: float, wire_size: float,
                 transfer_start: float):
        self.spec = spec
        self.path = tuple(path)
        self.max_rate = max_rate
        self.rtt = rtt
        self.wire_size = wire_size
        self.remaining_wire = wire_size
        self.transfer_start = transfer_start
        self.rate = 0.0
        self.waited = 0.0          # accumulated paused time (aging, §7)
        self.paused_since: Optional[float] = None
        self.criticality: Optional[float] = spec.criticality

    @property
    def fid(self) -> int:
        return self.spec.fid

    @property
    def sent_wire(self) -> float:
        return self.wire_size - self.remaining_wire

    def expected_tx(self) -> float:
        """T: remaining transmission time at the flow's maximal rate."""
        return self.remaining_wire * 8.0 / self.max_rate

    def completion_eta(self, now: float) -> float:
        if self.rate <= 0:
            return float("inf")
        return now + self.remaining_wire * 8.0 / self.rate

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative dt {dt}")
        if self.rate > 0:
            self.remaining_wire = max(
                0.0, self.remaining_wire - self.rate * dt / 8.0
            )
        else:
            self.waited += dt
