"""Per-flow progress state inside the fluid engine."""

from __future__ import annotations

from collections.abc import Sequence

from repro.workload.flow import FlowSpec

#: an edge token: a dense directed-edge id (optimized engine) or a
#: ``(src, dst)`` name tuple (reference engine, hand-built tests). Rate
#: models only require that ``capacities[token]`` yields a capacity, so
#: both representations work against list- and dict-shaped capacity maps.
EdgeToken = int | tuple


class FlowProgress:
    """One in-flight flow in the flow-level simulator.

    ``remaining_wire`` counts wire bytes (payload plus per-packet header
    overhead), matching the packet-level simulator's notion of work.

    ``path`` is a tuple of edge tokens (see :data:`EdgeToken`).
    ``abs_deadline`` caches ``spec.absolute_deadline`` so hot loops skip
    the property recomputation. ``eta_version`` and ``departed`` are
    engine bookkeeping for the lazy completion-ETA heap: the version is
    bumped whenever the flow's rate changes (invalidating queued ETA
    entries) and ``departed`` marks completion/termination.
    """

    __slots__ = (
        "spec", "fid", "path", "max_rate", "rtt", "wire_size",
        "remaining_wire", "transfer_start", "rate", "waited", "paused_since",
        "criticality", "abs_deadline", "eta_version", "departed",
    )

    def __init__(self, spec: FlowSpec, path: Sequence[EdgeToken],
                 max_rate: float, rtt: float, wire_size: float,
                 transfer_start: float):
        self.spec = spec
        self.fid = spec.fid  # plain attribute: hot loops read it constantly
        self.path = tuple(path)
        self.max_rate = max_rate
        self.rtt = rtt
        self.wire_size = wire_size
        self.remaining_wire = wire_size
        self.transfer_start = transfer_start
        self.rate = 0.0
        self.waited = 0.0          # accumulated paused time (aging, §7)
        self.paused_since: float | None = None
        self.criticality: float | None = spec.criticality
        self.abs_deadline: float | None = spec.absolute_deadline
        self.eta_version = 0
        self.departed = False

    @property
    def sent_wire(self) -> float:
        return self.wire_size - self.remaining_wire

    def expected_tx(self) -> float:
        """T: remaining transmission time at the flow's maximal rate."""
        return self.remaining_wire * 8.0 / self.max_rate

    def completion_eta(self, now: float) -> float:
        if self.rate <= 0:
            return float("inf")
        return now + self.remaining_wire * 8.0 / self.rate

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative dt {dt}")
        if self.rate > 0:
            self.remaining_wire = max(
                0.0, self.remaining_wire - self.rate * dt / 8.0
            )
        else:
            self.waited += dt
