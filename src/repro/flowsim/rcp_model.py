"""RCP equilibrium rate model: max-min fair sharing.

RCP's fixed point is max-min fairness over the network (every flow gets the
fair share of its bottleneck link), computed here by standard progressive
water-filling with per-flow rate caps.

``capacities`` may be a dict keyed by ``(src, dst)`` name tuples or a flat
list indexed by dense edge ids; flow paths hold the matching edge tokens.
"""

from __future__ import annotations


from repro.flowsim.progress import EdgeToken, FlowProgress


def max_min_rates(flows: list[FlowProgress],
                  capacities) -> dict[int, float]:
    """Progressive-filling max-min allocation honoring per-flow max rates."""
    rates: dict[int, float] = {f.fid: 0.0 for f in flows}
    residual = capacities.copy()
    unfrozen: set[int] = {f.fid for f in flows}
    by_fid = {f.fid: f for f in flows}
    # flows per link (only links actually used)
    link_flows: dict[EdgeToken, set[int]] = {}
    for flow in flows:
        for edge in flow.path:
            link_flows.setdefault(edge, set()).add(flow.fid)

    for _ in range(len(flows) + len(link_flows) + 1):
        if not unfrozen:
            break
        # the tightest link determines the next increment
        bottleneck_share = float("inf")
        for edge, members in link_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = residual[edge] / len(active)
            bottleneck_share = min(bottleneck_share, share)
        if bottleneck_share == float("inf"):
            break
        # flows capped below the share freeze at their cap first
        capped = [
            fid for fid in unfrozen
            if by_fid[fid].max_rate - rates[fid] <= bottleneck_share + 1e-9
        ]
        if capped:
            for fid in capped:
                increment = by_fid[fid].max_rate - rates[fid]
                rates[fid] = by_fid[fid].max_rate
                for edge in by_fid[fid].path:
                    residual[edge] -= increment
                unfrozen.discard(fid)
            continue
        # otherwise saturate the bottleneck link(s)
        for fid in list(unfrozen):
            rates[fid] += bottleneck_share
        for edge, members in link_flows.items():
            active = members & unfrozen
            residual[edge] -= bottleneck_share * len(active)
        for edge, members in link_flows.items():
            if residual[edge] <= 1e-6:
                for fid in members & unfrozen:
                    unfrozen.discard(fid)
    return rates


class RcpModel:
    """Max-min fair rates; no deadline awareness, no termination."""

    name = "RCP"

    def allocate(self, flows: list[FlowProgress], capacities,
                 now: float) -> dict[int, float]:
        return max_min_rates(flows, capacities)

    def terminations(self, flows, rates, now) -> list[tuple[int, str]]:
        return []
