"""Per-flow records, the metrics collector, and summary statistics.

Both simulators (packet- and flow-level) report through the same
:class:`~repro.metrics.collector.MetricsCollector`, which makes paper
metrics -- application throughput (% of deadline flows finishing on time)
and flow completion time -- directly comparable across levels.
"""

from repro.metrics.collector import MetricsCollector
from repro.metrics.records import FlowRecord
from repro.metrics.streaming import (
    StreamingMetricsCollector,
    streaming_collector,
)
from repro.metrics.summary import SummaryStats

__all__ = [
    "MetricsCollector",
    "FlowRecord",
    "SummaryStats",
    "StreamingMetricsCollector",
    "streaming_collector",
]
