"""Collects per-flow records during a simulation run."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import ExperimentError
from repro.metrics.records import FlowRecord
from repro.workload.flow import FlowSpec


class MetricsCollector:
    """Registry of flow outcomes; endpoints report into it.

    The collector also tracks how many registered flows are still
    *unresolved* (neither completed nor terminated) and notifies
    completion observers the moment the count hits zero — the packet
    engine's :meth:`~repro.net.network.Network.run_until_quiet` hooks
    ``sim.stop`` in there so a run ends on the event that resolved the
    last flow instead of polling in chunks.
    """

    def __init__(self) -> None:
        self.records: dict[int, FlowRecord] = {}
        self._unresolved = 0
        self._observers: list[Callable[[], None]] = []
        #: run counters harvested from the engines (repro.obs.stats)
        self.stats: dict[str, int] = {}
        #: declarative probe series keyed by probe name (repro.obs.probes)
        self.probes: dict[str, dict] = {}
        #: flow-lifecycle events when tracing was requested (repro.obs.trace)
        self.trace: list[dict] = []
        #: live FlowTracer during a traced run; engines check for None on
        #: every lifecycle transition, so un-traced runs pay one test
        self.tracer = None

    # -- completion observers ----------------------------------------------------

    def add_completion_observer(
        self, callback: Callable[[], None]
    ) -> Callable[[], None]:
        """Call ``callback()`` whenever the unresolved-flow count reaches
        zero; returns a zero-argument unsubscribe function."""
        self._observers.append(callback)

        def unsubscribe() -> None:
            if callback in self._observers:
                self._observers.remove(callback)

        return unsubscribe

    def unfinished_count(self) -> int:
        """Number of registered flows neither completed nor terminated.

        O(1): maintained incrementally by the event hooks."""
        return self._unresolved

    def _resolve_one(self) -> None:
        self._unresolved -= 1
        if self._unresolved == 0:
            for callback in list(self._observers):
                callback()

    # -- event hooks (called by simulators/endpoints) ---------------------------

    def register(self, spec: FlowSpec) -> FlowRecord:
        if spec.fid in self.records:
            raise ExperimentError(f"flow {spec.fid} registered twice")
        record = FlowRecord(spec=spec)
        self.records[spec.fid] = record
        self._unresolved += 1
        if self.tracer is not None:
            self.tracer.on_arrival(spec.fid, spec.arrival)
        return record

    def on_start(self, fid: int, time: float) -> None:
        self.records[fid].start_time = time

    def on_bytes(self, fid: int, n: int) -> None:
        self.records[fid].bytes_delivered += n

    def on_complete(self, fid: int, time: float) -> None:
        record = self.records[fid]
        if record.completion_time is None:
            record.completion_time = time
            if self.tracer is not None:
                self.tracer.on_complete(fid, time)
            if not record.terminated:
                self._resolve_one()

    def on_terminated(self, fid: int, time: float, reason: str) -> None:
        record = self.records[fid]
        if not record.completed:
            newly_resolved = not record.terminated
            record.terminated = True
            record.termination_time = time
            record.termination_reason = reason
            if self.tracer is not None and newly_resolved:
                self.tracer.on_terminated(fid, time, reason)
            if newly_resolved:
                self._resolve_one()

    def on_retransmit(self, fid: int) -> None:
        self.records[fid].retransmissions += 1

    def on_probe(self, fid: int) -> None:
        self.records[fid].probes_sent += 1

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`.

        Round-tripping preserves every per-flow record exactly, so any
        paper metric can be recomputed from a restored collector.
        Telemetry keys (``stats``, ``probes``, ``trace``) are emitted
        only when non-empty, so pre-telemetry payload shapes — and the
        engine-parity comparisons pinned on them — are unchanged."""
        out: dict = {
            "records": [
                self.records[fid].to_dict() for fid in sorted(self.records)
            ],
        }
        if self.stats:
            out["stats"] = {k: self.stats[k] for k in sorted(self.stats)}
        if self.probes:
            out["probes"] = self.probes
        if self.trace:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsCollector":
        if "streaming" in data and cls is MetricsCollector:
            # payloads written by the memory-bounded streaming mode carry
            # their accumulators in a "streaming" block; restore through
            # the subclass so paper-metric queries read the accumulators
            from repro.metrics.streaming import StreamingMetricsCollector

            return StreamingMetricsCollector.from_dict(data)
        collector = cls()
        for item in data["records"]:
            record = FlowRecord.from_dict(item)
            collector.records[record.spec.fid] = record
        collector._unresolved = sum(
            1 for r in collector.records.values()
            if not r.completed and not r.terminated
        )
        collector.stats = dict(data.get("stats", {}))
        collector.probes = dict(data.get("probes", {}))
        collector.trace = list(data.get("trace", []))
        return collector

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def record(self, fid: int) -> FlowRecord:
        return self.records[fid]

    def all_records(self) -> list[FlowRecord]:
        return list(self.records.values())

    def completed_records(self) -> list[FlowRecord]:
        return [r for r in self.records.values() if r.completed]

    def completed_count(self) -> int:
        """Number of completed flows; the streaming collector answers
        from its accumulator, where ``completed_records()`` would only
        see the reservoir sample."""
        return len(self.completed_records())

    def deadline_records(self) -> list[FlowRecord]:
        return [r for r in self.records.values() if r.spec.has_deadline]

    # -- paper metrics ---------------------------------------------------------------

    def application_throughput(self) -> float:
        """Fraction of deadline-constrained flows that met their deadline
        (paper §5.1). Terminated and unfinished flows count as misses."""
        deadline_flows = self.deadline_records()
        if not deadline_flows:
            raise ExperimentError("no deadline-constrained flows to score")
        met = sum(1 for r in deadline_flows if r.met_deadline)
        return met / len(deadline_flows)

    def mean_fct(self, only: Iterable[int] | None = None) -> float:
        """Mean flow completion time over completed flows (optionally
        restricted to the given fids)."""
        wanted = set(only) if only is not None else None
        fcts = [
            r.fct
            for r in self.records.values()
            if r.completed and (wanted is None or r.spec.fid in wanted)
        ]
        if not fcts:
            raise ExperimentError("no completed flows to average")
        return sum(fcts) / len(fcts)

    def max_fct(self) -> float:
        fcts = [r.fct for r in self.records.values() if r.completed]
        if not fcts:
            raise ExperimentError("no completed flows")
        return max(fcts)

    def fct_percentile(self, q: float) -> float:
        """Exact FCT percentile over completed flows (``q`` in [0, 100]);
        the streaming collector answers the same query from its sketch."""
        from repro.utils.stats import percentile

        fcts = [r.fct for r in self.records.values() if r.completed]
        if not fcts:
            raise ExperimentError("no completed flows")
        return percentile(fcts, q)

    def fct_by_fid(self) -> dict[int, float]:
        return {
            fid: r.fct for fid, r in self.records.items() if r.completed
        }

    def unfinished(self) -> list[FlowRecord]:
        return [
            r for r in self.records.values()
            if not r.completed and not r.terminated
        ]
