"""Per-flow outcome record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workload.flow import FlowSpec


@dataclass
class FlowRecord:
    """Everything we measure about one flow.

    ``completion_time`` is the instant the receiver holds the last payload
    byte (the paper's FCT convention); ``terminated`` marks flows killed by
    Early Termination / quenching before finishing.
    """

    spec: FlowSpec
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    terminated: bool = False
    termination_time: Optional[float] = None
    termination_reason: str = ""
    bytes_delivered: int = 0
    retransmissions: int = 0
    probes_sent: int = 0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time measured from flow arrival."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.spec.arrival

    @property
    def met_deadline(self) -> bool:
        """Deadline satisfied? (False for no-deadline flows asked anyway.)"""
        deadline = self.spec.absolute_deadline
        if deadline is None:
            return False
        return (
            self.completion_time is not None
            and self.completion_time <= deadline + 1e-12
        )
