"""Per-flow outcome record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.flow import FlowSpec


@dataclass
class FlowRecord:
    """Everything we measure about one flow.

    ``completion_time`` is the instant the receiver holds the last payload
    byte (the paper's FCT convention); ``terminated`` marks flows killed by
    Early Termination / quenching before finishing.
    """

    spec: FlowSpec
    start_time: float | None = None
    completion_time: float | None = None
    terminated: bool = False
    termination_time: float | None = None
    termination_reason: str = ""
    bytes_delivered: int = 0
    retransmissions: int = 0
    probes_sent: int = 0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> float | None:
        """Flow completion time measured from flow arrival."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.spec.arrival

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`."""
        return {
            "spec": self.spec.to_dict(),
            "start_time": self.start_time,
            "completion_time": self.completion_time,
            "terminated": self.terminated,
            "termination_time": self.termination_time,
            "termination_reason": self.termination_reason,
            "bytes_delivered": self.bytes_delivered,
            "retransmissions": self.retransmissions,
            "probes_sent": self.probes_sent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowRecord":
        return cls(
            spec=FlowSpec.from_dict(data["spec"]),
            start_time=data.get("start_time"),
            completion_time=data.get("completion_time"),
            terminated=data.get("terminated", False),
            termination_time=data.get("termination_time"),
            termination_reason=data.get("termination_reason", ""),
            bytes_delivered=data.get("bytes_delivered", 0),
            retransmissions=data.get("retransmissions", 0),
            probes_sent=data.get("probes_sent", 0),
        )

    @property
    def met_deadline(self) -> bool:
        """Deadline satisfied? (False for no-deadline flows asked anyway.)"""
        deadline = self.spec.absolute_deadline
        if deadline is None:
            return False
        return (
            self.completion_time is not None
            and self.completion_time <= deadline + 1e-12
        )
