"""Memory-bounded metrics for open-system (streaming) runs.

The base :class:`~repro.metrics.collector.MetricsCollector` keeps one
:class:`~repro.metrics.records.FlowRecord` per registered flow — the
right trade for closed-batch figures, and a hard ceiling for the
million-flow arrival processes of :mod:`repro.workload.open_system`.
:class:`StreamingMetricsCollector` keeps records only while a flow is
*live* (registered but unresolved); the moment a flow completes or is
terminated, its record is folded into constant-space accumulators —
counts, FCT sum/max, mergeable :class:`~repro.utils.sketch.
QuantileSketch` ladders for FCT and slowdown — plus an Algorithm-R
reservoir of full records whose RNG is pinned by the spec seed, and then
evicted. Peak memory tracks the number of *concurrent* flows, not the
number of admitted ones.

Serialization rides the existing collector schema: ``to_dict()`` emits
the surviving records (reservoir sample plus any still-unresolved tail)
under the usual ``"records"`` key and adds one ``"streaming"`` block, so
:class:`~repro.campaign.store.ResultStore`, the reducers, and ``repro
report`` consume streaming payloads unchanged.
:meth:`MetricsCollector.from_dict` dispatches on that block, so restored
collectors answer the paper-metric queries from the accumulators.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector
from repro.metrics.records import FlowRecord
from repro.metrics.summary import SummaryStats
from repro.units import GBPS
from repro.utils.rng import spawn_rng
from repro.utils.sketch import QuantileSketch
from repro.workload.flow import FlowSpec

#: serialization version of the "streaming" block
STREAMING_SCHEMA = 1


def streaming_collector(options, seed: int = 0) -> "StreamingMetricsCollector":
    """Build a streaming collector from a spec's ``streaming_metrics``
    option value: ``True`` for defaults, or a dict with ``reservoir``,
    ``reference_rate_bps`` and ``sketch_k`` overrides."""
    if options is True:
        options = {}
    elif not isinstance(options, dict):
        raise ExperimentError(
            "streaming_metrics must be true or an options dict, "
            f"got {options!r}"
        )
    return StreamingMetricsCollector(
        reservoir_size=options.get("reservoir", 1000),
        seed=seed,
        reference_rate_bps=options.get("reference_rate_bps", 1 * GBPS),
        sketch_k=options.get("sketch_k", 200),
    )


class StreamingMetricsCollector(MetricsCollector):
    """Collector whose memory is O(concurrent flows), not O(flows).

    Slowdown is each completed flow's FCT divided by its ideal transfer
    time at ``reference_rate_bps`` (the paper's access-link rate by
    default), a scale-free tail statistic for load sweeps.

    Late hooks are tolerated: packet transports can report stray bytes,
    retransmissions or a redundant termination for a flow that already
    resolved and was evicted; those land in ``late_events`` instead of
    raising. Duplicate-fid detection only covers *live* flows — streams
    hand out monotonically increasing fids, so that is not a loss.
    """

    def __init__(self, reservoir_size: int = 1000, seed: int = 0,
                 reference_rate_bps: float = 1 * GBPS,
                 sketch_k: int = 200) -> None:
        super().__init__()
        if reservoir_size < 0:
            raise ExperimentError(
                f"reservoir_size must be >= 0, got {reservoir_size}"
            )
        self.reservoir_size = reservoir_size
        self.seed = seed
        self.reference_rate_bps = reference_rate_bps
        self._rng = spawn_rng(seed, "metrics:reservoir")
        self.fct_sketch = QuantileSketch(k=sketch_k)
        self.slowdown_sketch = QuantileSketch(k=sketch_k)
        #: resolved-flow accumulators (live flows are in ``records``)
        self.n_registered = 0
        self.n_completed = 0
        self.n_terminated = 0
        self.n_deadline = 0
        self.n_deadline_met = 0
        self.fct_sum = 0.0
        self.fct_max = 0.0
        self.bytes_total = 0
        self.retransmissions_total = 0
        self.probes_total = 0
        #: hook calls that arrived after their flow was folded + evicted
        self.late_events = 0
        #: Algorithm-R uniform sample of resolved FlowRecords
        self.reservoir: list[FlowRecord] = []
        self._resolved_seen = 0

    # -- event hooks (guarded against evicted fids) -----------------------------

    def register(self, spec: FlowSpec) -> FlowRecord:
        record = super().register(spec)
        self.n_registered += 1
        if spec.has_deadline:
            self.n_deadline += 1
        return record

    def on_start(self, fid: int, time: float) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        record.start_time = time

    def on_bytes(self, fid: int, n: int) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        record.bytes_delivered += n

    def on_complete(self, fid: int, time: float) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        if record.completion_time is None:
            record.completion_time = time
            if self.tracer is not None:
                self.tracer.on_complete(fid, time)
            if not record.terminated:
                self._fold(record)
                self._resolve_one()

    def on_terminated(self, fid: int, time: float, reason: str) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        if not record.completed:
            newly_resolved = not record.terminated
            record.terminated = True
            record.termination_time = time
            record.termination_reason = reason
            if self.tracer is not None and newly_resolved:
                self.tracer.on_terminated(fid, time, reason)
            if newly_resolved:
                self._fold(record)
                self._resolve_one()

    def on_retransmit(self, fid: int) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        record.retransmissions += 1

    def on_probe(self, fid: int) -> None:
        record = self.records.get(fid)
        if record is None:
            self.late_events += 1
            return
        record.probes_sent += 1

    # -- folding -----------------------------------------------------------------

    def _fold(self, record: FlowRecord) -> None:
        """Accumulate a freshly resolved flow and evict its record."""
        if record.completed:
            self.n_completed += 1
            fct = record.fct
            self.fct_sum += fct
            if fct > self.fct_max:
                self.fct_max = fct
            self.fct_sketch.add(fct)
            ideal = record.spec.size_bytes * 8.0 / self.reference_rate_bps
            if ideal > 0:
                self.slowdown_sketch.add(fct / ideal)
            if record.met_deadline:
                self.n_deadline_met += 1
        else:
            self.n_terminated += 1
        self.bytes_total += record.bytes_delivered
        self.retransmissions_total += record.retransmissions
        self.probes_total += record.probes_sent
        self._sample(record)
        del self.records[record.spec.fid]

    def _sample(self, record: FlowRecord) -> None:
        """Algorithm R: every resolved record has equal probability
        ``reservoir_size / resolved_seen`` of being in the sample."""
        if self.reservoir_size == 0:
            self._resolved_seen += 1
            return
        i = self._resolved_seen
        self._resolved_seen = i + 1
        if i < self.reservoir_size:
            self.reservoir.append(record)
            return
        j = int(self._rng.integers(0, i + 1))
        if j < self.reservoir_size:
            self.reservoir[j] = record

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Base schema plus one ``"streaming"`` block. ``"records"``
        holds the reservoir sample and any still-unresolved tail, sorted
        by fid like the base collector's output."""
        survivors = {r.spec.fid: r for r in self.reservoir}
        survivors.update(self.records)
        out: dict = {
            "records": [
                survivors[fid].to_dict() for fid in sorted(survivors)
            ],
            "streaming": {
                "schema": STREAMING_SCHEMA,
                "seed": self.seed,
                "reservoir_size": self.reservoir_size,
                "reference_rate_bps": self.reference_rate_bps,
                "n_registered": self.n_registered,
                "n_completed": self.n_completed,
                "n_terminated": self.n_terminated,
                "n_deadline": self.n_deadline,
                "n_deadline_met": self.n_deadline_met,
                "n_unresolved": self._unresolved,
                "n_sampled": len(self.reservoir),
                "resolved_seen": self._resolved_seen,
                "fct_sum": self.fct_sum,
                "fct_max": self.fct_max,
                "bytes_total": self.bytes_total,
                "retransmissions_total": self.retransmissions_total,
                "probes_total": self.probes_total,
                "late_events": self.late_events,
                "fct_sketch": self.fct_sketch.to_dict(),
                "slowdown_sketch": self.slowdown_sketch.to_dict(),
            },
        }
        if self.stats:
            out["stats"] = {k: self.stats[k] for k in sorted(self.stats)}
        if self.probes:
            out["probes"] = self.probes
        if self.trace:
            out["trace"] = self.trace
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingMetricsCollector":
        block = data["streaming"]
        collector = cls(
            reservoir_size=block["reservoir_size"],
            seed=block["seed"],
            reference_rate_bps=block["reference_rate_bps"],
        )
        # the restored RNG has consumed no draws; a restored collector is
        # a read-only artifact, not a resumable sampler
        for item in data["records"]:
            record = FlowRecord.from_dict(item)
            if record.completed or record.terminated:
                collector.reservoir.append(record)
            else:
                collector.records[record.spec.fid] = record
        collector._unresolved = block["n_unresolved"]
        collector.n_registered = block["n_registered"]
        collector.n_completed = block["n_completed"]
        collector.n_terminated = block["n_terminated"]
        collector.n_deadline = block["n_deadline"]
        collector.n_deadline_met = block["n_deadline_met"]
        collector._resolved_seen = block["resolved_seen"]
        collector.fct_sum = block["fct_sum"]
        collector.fct_max = block["fct_max"]
        collector.bytes_total = block["bytes_total"]
        collector.retransmissions_total = block["retransmissions_total"]
        collector.probes_total = block["probes_total"]
        collector.late_events = block.get("late_events", 0)
        collector.fct_sketch = QuantileSketch.from_dict(block["fct_sketch"])
        collector.slowdown_sketch = QuantileSketch.from_dict(
            block["slowdown_sketch"]
        )
        collector.stats = dict(data.get("stats", {}))
        collector.probes = dict(data.get("probes", {}))
        collector.trace = list(data.get("trace", []))
        return collector

    # -- queries (accumulator-backed) ---------------------------------------------

    def __len__(self) -> int:
        return self.n_registered

    def completed_count(self) -> int:
        return self.n_completed

    def summarize(self) -> SummaryStats:
        """Accumulator-backed :class:`SummaryStats` (what
        ``SummaryStats.from_collector`` returns for this collector)."""
        completed = self.n_completed
        return SummaryStats(
            n_flows=self.n_registered,
            n_completed=completed,
            n_terminated=self.n_terminated,
            mean_fct=self.fct_sum / completed if completed else None,
            p95_fct=self.fct_sketch.quantile(0.95) if completed else None,
            max_fct=self.fct_max if completed else None,
            application_throughput=(
                self.n_deadline_met / self.n_deadline
                if self.n_deadline else None
            ),
            total_retransmissions=self.retransmissions_total,
        )

    def application_throughput(self) -> float:
        if not self.n_deadline:
            raise ExperimentError("no deadline-constrained flows to score")
        return self.n_deadline_met / self.n_deadline

    def mean_fct(self, only=None) -> float:
        if only is not None:
            raise ExperimentError(
                "streaming collectors keep no per-fid FCTs; "
                "mean_fct(only=...) needs a closed-batch collector"
            )
        if not self.n_completed:
            raise ExperimentError("no completed flows to average")
        return self.fct_sum / self.n_completed

    def max_fct(self) -> float:
        if not self.n_completed:
            raise ExperimentError("no completed flows")
        return self.fct_max

    def fct_percentile(self, q: float) -> float:
        """Sketch-backed FCT percentile (``q`` in [0, 100])."""
        return self.fct_sketch.quantile(q / 100.0)

    def slowdown_percentile(self, q: float) -> float:
        """Sketch-backed slowdown percentile (``q`` in [0, 100])."""
        return self.slowdown_sketch.quantile(q / 100.0)
