"""Aggregate summaries for experiment reports."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.metrics.collector import MetricsCollector
from repro.utils.stats import mean, percentile


@dataclass(frozen=True)
class SummaryStats:
    """One-line summary of a run, as printed by the benchmark harness."""

    n_flows: int
    n_completed: int
    n_terminated: int
    mean_fct: float | None
    p95_fct: float | None
    max_fct: float | None
    application_throughput: float | None
    total_retransmissions: int

    @classmethod
    def from_collector(cls, collector: MetricsCollector) -> "SummaryStats":
        summarize = getattr(collector, "summarize", None)
        if summarize is not None:
            # streaming collectors evicted their records; their summary
            # comes from the run-long accumulators instead
            return summarize()
        records = collector.all_records()
        fcts: list[float] = [r.fct for r in records if r.completed]
        has_deadlines = any(r.spec.has_deadline for r in records)
        return cls(
            n_flows=len(records),
            n_completed=sum(1 for r in records if r.completed),
            n_terminated=sum(1 for r in records if r.terminated),
            mean_fct=mean(fcts) if fcts else None,
            p95_fct=percentile(fcts, 95) if fcts else None,
            max_fct=max(fcts) if fcts else None,
            application_throughput=(
                collector.application_throughput() if has_deadlines else None
            ),
            total_retransmissions=sum(r.retransmissions for r in records),
        )

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SummaryStats":
        return cls(
            n_flows=data["n_flows"],
            n_completed=data["n_completed"],
            n_terminated=data["n_terminated"],
            mean_fct=data.get("mean_fct"),
            p95_fct=data.get("p95_fct"),
            max_fct=data.get("max_fct"),
            application_throughput=data.get("application_throughput"),
            total_retransmissions=data.get("total_retransmissions", 0),
        )

    def describe(self) -> str:
        parts = [
            f"flows={self.n_flows}",
            f"completed={self.n_completed}",
            f"terminated={self.n_terminated}",
        ]
        if self.mean_fct is not None:
            parts.append(f"mean_fct={self.mean_fct * 1e3:.3f}ms")
        if self.max_fct is not None:
            parts.append(f"max_fct={self.max_fct * 1e3:.3f}ms")
        if self.application_throughput is not None:
            parts.append(f"app_tput={self.application_throughput * 100:.1f}%")
        return " ".join(parts)
