"""Packet-level network substrate.

Models the paper's evaluation platform (§5.1): store-and-forward links with
transmission / propagation / per-hop processing delay, FIFO tail-drop queues
with byte-bounded buffers, hosts and switches, flow-level ECMP routing with
pinned symmetric paths, random-loss injection and time-series monitors.
"""

from repro.net.headers import D3Header, PdqHeader, RcpHeader
from repro.net.link import Link
from repro.net.monitors import LinkMonitor
from repro.net.network import Network
from repro.net.node import Host, Node, Switch
from repro.net.packet import Packet, PacketKind
from repro.net.queues import DropTailQueue
from repro.net.routing import Router

__all__ = [
    "D3Header",
    "DropTailQueue",
    "Host",
    "Link",
    "LinkMonitor",
    "Network",
    "Node",
    "Packet",
    "PacketKind",
    "PdqHeader",
    "RcpHeader",
    "Router",
    "Switch",
]
