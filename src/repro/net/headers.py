"""Scheduling headers carried inside packets.

The PDQ header mirrors the paper's 16-byte scheduling header (§7,
footnote 11): rate, pauseby, deadline and expected transmission time on the
forward path, with the RTT and inter-probing fields sharing wire space on
the reverse path. We model the fields explicitly and charge the wire size
separately via each protocol's ``header_bytes``.
"""

from __future__ import annotations

import math

#: sentinel for "no switch" in the pauseby field (paper's \"ø\")
NO_SWITCH: int | None = None


class PdqHeader:
    """PDQ scheduling header (paper §3.1).

    Attributes map 1:1 onto the paper's fields:

    * ``rate``        -- R_H, bits/s. Senders set it to their maximal rate;
      switches clamp it down or zero it.
    * ``pauseby``     -- P_H, id of the switch pausing the flow, or None.
    * ``deadline``    -- D_H, absolute deadline in seconds, or None.
    * ``expected_tx`` -- T_H, expected remaining transmission time (s).
    * ``rtt``         -- RTT_H, the sender's measured RTT (s).
    * ``inter_probe`` -- I_H, inter-probing interval in units of RTTs.
    * ``criticality`` -- extra field used by the Random / Estimation
      comparators of §5.6 (not on the wire in the paper; carried here so
      switches can apply operator-defined comparators uniformly).
    """

    __slots__ = (
        "rate",
        "pauseby",
        "deadline",
        "expected_tx",
        "rtt",
        "inter_probe",
        "criticality",
    )

    def __init__(
        self,
        rate: float,
        pauseby: int | None = NO_SWITCH,
        deadline: float | None = None,
        expected_tx: float = 0.0,
        rtt: float = 0.0,
        inter_probe: float = 1.0,
        criticality: float | None = None,
    ):
        self.rate = rate
        self.pauseby = pauseby
        self.deadline = deadline
        self.expected_tx = expected_tx
        self.rtt = rtt
        self.inter_probe = inter_probe
        self.criticality = criticality

    def copy(self) -> "PdqHeader":
        return PdqHeader(
            rate=self.rate,
            pauseby=self.pauseby,
            deadline=self.deadline,
            expected_tx=self.expected_tx,
            rtt=self.rtt,
            inter_probe=self.inter_probe,
            criticality=self.criticality,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PdqHeader R={self.rate:.3e} P={self.pauseby} "
            f"T={self.expected_tx:.6f} I={self.inter_probe:.2f}>"
        )


class RcpHeader:
    """RCP header: the bottleneck fair-share rate stamped along the path."""

    __slots__ = ("rate", "rtt")

    def __init__(self, rate: float, rtt: float = 0.0):
        self.rate = rate
        self.rtt = rtt

    def copy(self) -> "RcpHeader":
        return RcpHeader(self.rate, self.rtt)


class D3Header:
    """D3 header: desired rate request plus previous allocation.

    ``allocated`` is filled by switches on the forward path (min along the
    path); ``prev_alloc`` lets each switch return the sender's previous
    reservation before allocating afresh.
    """

    __slots__ = ("desired", "prev_alloc", "allocated", "rtt", "deadline")

    def __init__(
        self,
        desired: float,
        prev_alloc: float = 0.0,
        allocated: float = math.inf,
        rtt: float = 0.0,
        deadline: float | None = None,
    ):
        self.desired = desired
        self.prev_alloc = prev_alloc
        self.allocated = allocated
        self.rtt = rtt
        self.deadline = deadline

    def copy(self) -> "D3Header":
        return D3Header(self.desired, self.prev_alloc, self.allocated,
                        self.rtt, self.deadline)
