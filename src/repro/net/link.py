"""Unidirectional store-and-forward link with a FIFO tail-drop queue.

Delay model per the paper's Figure 2: transmission delay = size/rate,
fixed propagation delay, and a per-hop processing delay charged at the
receiving node. Random wire loss (Fig 9) is applied after transmission,
independently in each direction.

The link is a terminal sink for packets that never reach the far node:
tail-drops and wire losses release the packet (and its scheduling
header) back into the shared :class:`~repro.net.pool.PacketPool` so the
hot path recycles objects instead of allocating.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.events.simulator import Simulator
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.node import Node
    from repro.net.pool import PacketPool


class Link:
    """One direction of a cable. Created in pairs; ``reverse`` points at the
    opposite direction."""

    def __init__(
        self,
        sim: Simulator,
        src: "Node",
        dst: "Node",
        rate_bps: float,
        prop_delay: float,
        buffer_bytes: int,
        link_id: int,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.prop_delay = prop_delay
        self.queue = DropTailQueue(buffer_bytes)
        self.link_id = link_id
        self.reverse: "Link" | None = None

        # terminal sink: tail-drops and wire losses release into the pool
        self.pool: "PacketPool" | None = None

        # random wire loss (Fig 9); set via Network.set_loss
        self.loss_rate: float = 0.0
        self._loss_rng: np.random.Generator | None = None
        self.wire_losses = 0

        # fault state (repro.faults): a down link is a terminal sink —
        # it refuses new packets and drops its in-flight transmission,
        # releasing both into the pool
        self.up = True
        self.fault_drops = 0

        # statistics
        self.bytes_sent = 0
        self.packets_sent = 0
        self._busy_accum = 0.0  # completed transmissions only

        self._transmitting = False
        self._tx_started = 0.0  # start of the in-flight transmission

        # single-event transmission pipeline: each packet's serialization
        # finish chains into its propagation arrival through these
        # preallocated bound methods on the simulator's no-handle fast
        # path -- zero closures and zero cancellable handles per packet.
        # prop_delay and dst.processing_delay are frozen here: mutating
        # them after construction is unsupported (deliveries would keep
        # the cached sum)
        self._finish_cb = self._finish
        self._deliver_cb = dst.receive
        self._arrival_delay = prop_delay + dst.processing_delay

    # -- configuration ---------------------------------------------------------

    def set_loss(self, rate: float, rng: np.random.Generator) -> None:
        """Drop each transmitted packet with probability ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.loss_rate = rate
        self._loss_rng = rng

    def fail(self) -> None:
        """Take the link down (fault injection).

        New packets are refused at :meth:`enqueue` and queued packets
        are drained here — both released into the pool, exactly like
        tail-drops. An in-flight transmission cannot be cancelled (the
        single-event pipeline keeps no handles); :meth:`_finish` drops
        it when the serialization completes.
        """
        self.up = False
        pool = self.pool
        packet = self.queue.pop()
        while packet is not None:
            self.fault_drops += 1
            if pool is not None:
                pool.release(packet)
            packet = self.queue.pop()

    def restore(self) -> None:
        """Bring the link back up; it resumes accepting packets."""
        self.up = True

    # -- data path ---------------------------------------------------------------

    # repro: hot
    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet for transmission; False means it was dropped
        (tail-drop, or the link is down)."""
        if not self.up:
            self.fault_drops += 1
            if self.pool is not None:
                self.pool.release(packet)
            return False
        if self._transmitting:
            if not self.queue.offer(packet):
                if self.pool is not None:
                    self.pool.release(packet)
                return False
            return True
        # idle link: the packet would be offered and popped right back, so
        # run the queue's accounting-only path and start transmitting
        # directly (byte counters, drops and peak_bytes update exactly as
        # the offer+pop pair did)
        if not self.queue.touch(packet):
            if self.pool is not None:
                self.pool.release(packet)
            return False
        self._transmitting = True
        sim = self.sim
        now = sim.now
        self._tx_started = now
        heappush(sim._heap, (now + packet.size * 8 / self.rate_bps,
                             sim._seq, self._finish_cb, (packet,)))
        sim._seq += 1
        sim._live += 1
        return True

    # repro: hot
    def _start_next(self) -> None:
        packet = self.queue.pop()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        # inlined sim.call_after (the two hottest schedule sites in the
        # whole engine): same heap tuple, same seq ordering, one less
        # Python frame per transmission. The inlined tx_time keeps the
        # exact expression (size * 8 / rate) so timestamps stay
        # bit-identical to the helper's
        sim = self.sim
        now = sim.now
        self._tx_started = now
        heappush(sim._heap, (now + packet.size * 8 / self.rate_bps,
                             sim._seq, self._finish_cb, (packet,)))
        sim._seq += 1
        sim._live += 1

    # repro: hot
    def _finish(self, packet: Packet) -> None:
        # busy time is charged as it elapses (pro-rated via the property
        # while in flight, folded into the accumulator here), so a
        # utilization window ending mid-transmission never overcounts
        sim = self.sim
        self._busy_accum += sim.now - self._tx_started
        self._transmitting = False
        if not self.up:
            # the link failed mid-transmission: the packet never reaches
            # the far end. The queue was drained by fail() and enqueue
            # refuses while down, so there is nothing to start next.
            self.fault_drops += 1
            if self.pool is not None:
                self.pool.release(packet)
            return
        self.bytes_sent += packet.size
        self.packets_sent += 1
        lost = (
            self.loss_rate > 0.0
            and self._loss_rng is not None
            and self._loss_rng.random() < self.loss_rate
        )
        if lost:
            self.wire_losses += 1
            if self.pool is not None:
                self.pool.release(packet)
        else:
            heappush(sim._heap, (sim.now + self._arrival_delay, sim._seq,
                                 self._deliver_cb, (packet, self)))
            sim._seq += 1
            sim._live += 1
        self._start_next()

    # -- introspection ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    @property
    def busy_time(self) -> float:
        """Cumulative transmitting time up to the current instant.

        The in-flight transmission contributes only its elapsed portion,
        so windowed utilization over ``busy_time`` deltas stays <= 1 even
        when the window ends mid-transmission."""
        busy = self._busy_accum
        if self._transmitting:
            busy += self.sim.now - self._tx_started
        return busy

    def utilization(self, since: float, now: float, busy_at_since: float) -> float:
        """Fraction of [since, now] the link spent transmitting, given the
        ``busy_time`` snapshot taken at ``since``."""
        if now <= since:
            return 0.0
        return (self.busy_time - busy_at_since) / (now - since)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.rate_bps/1e9:.1f}Gbps q={self.queue.bytes}B>"
