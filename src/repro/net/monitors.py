"""Time-series monitors for links (utilization and queue occupancy).

Used by the Fig 6 / Fig 7 dynamics experiments, which plot bottleneck
utilization and queue length over time.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.events.simulator import Simulator
from repro.events.timers import PeriodicTimer
from repro.net.link import Link


class LinkMonitor:
    """Samples a link every ``interval`` seconds.

    Produces two series: ``utilization`` (fraction of the interval the link
    was transmitting) and ``queue_packets`` / ``queue_bytes`` (instantaneous
    occupancy at the sample instant).
    """

    def __init__(self, sim: Simulator, link: Link, interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.samples: List[Tuple[float, float, int, int]] = []
        self._last_busy = link.busy_time
        self._last_time = sim.now
        self._timer = PeriodicTimer(sim, interval, self._sample)

    def start(self) -> None:
        self._last_busy = self.link.busy_time
        self._last_time = self.sim.now
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return
        busy = self.link.busy_time - self._last_busy
        utilization = min(1.0, busy / elapsed)
        self.samples.append(
            (now, utilization, len(self.link.queue), self.link.queue.bytes)
        )
        self._last_busy = self.link.busy_time
        self._last_time = now

    # -- series accessors -----------------------------------------------------

    @property
    def utilization(self) -> List[Tuple[float, float]]:
        return [(t, u) for t, u, _, _ in self.samples]

    @property
    def queue_packets(self) -> List[Tuple[float, int]]:
        return [(t, q) for t, _, q, _ in self.samples]

    @property
    def queue_bytes(self) -> List[Tuple[float, int]]:
        return [(t, b) for t, _, _, b in self.samples]

    def mean_utilization(self, start: float = 0.0, end: float = float("inf")) -> float:
        window = [u for t, u, _, _ in self.samples if start <= t <= end]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def max_queue_packets(self, start: float = 0.0, end: float = float("inf")) -> int:
        window = [q for t, _, q, _ in self.samples if start <= t <= end]
        return max(window) if window else 0
