"""Time-series monitors for the packet engine.

:class:`LinkMonitor` (utilization and queue occupancy) backs the Fig 6 /
Fig 7 dynamics experiments; :class:`FlowRateMonitor` samples per-flow
goodput. Both are also the packet-engine half of the declarative probe
layer (:mod:`repro.obs.probes`), which makes the same series available
to any scenario through the ``probes`` spec option.
"""

from __future__ import annotations

import math

from repro.events.simulator import Simulator
from repro.events.timers import PeriodicTimer
from repro.net.link import Link


class LinkMonitor:
    """Samples a link every ``interval`` seconds.

    Produces two series: ``utilization`` (fraction of the interval the link
    was transmitting) and ``queue_packets`` / ``queue_bytes`` (instantaneous
    occupancy at the sample instant).
    """

    def __init__(self, sim: Simulator, link: Link, interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.link = link
        self.interval = interval
        self.samples: list[tuple[float, float, int, int]] = []
        self._last_busy = link.busy_time
        self._last_time = sim.now
        self._timer = PeriodicTimer(sim, interval, self._sample)

    def start(self) -> None:
        self._last_busy = self.link.busy_time
        self._last_time = self.sim.now
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            return
        busy = self.link.busy_time - self._last_busy
        utilization = min(1.0, busy / elapsed)
        self.samples.append(
            (now, utilization, len(self.link.queue), self.link.queue.bytes)
        )
        self._last_busy = self.link.busy_time
        self._last_time = now

    # -- series accessors -----------------------------------------------------

    @property
    def utilization(self) -> list[tuple[float, float]]:
        return [(t, u) for t, u, _, _ in self.samples]

    @property
    def queue_packets(self) -> list[tuple[float, int]]:
        return [(t, q) for t, _, q, _ in self.samples]

    @property
    def queue_bytes(self) -> list[tuple[float, int]]:
        return [(t, b) for t, _, _, b in self.samples]

    def mean_utilization(self, start: float = 0.0, end: float = math.inf) -> float:
        window = [u for t, u, _, _ in self.samples if start <= t <= end]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def max_queue_packets(self, start: float = 0.0, end: float = math.inf) -> int:
        window = [q for t, _, q, _ in self.samples if start <= t <= end]
        return max(window) if window else 0


class FlowRateMonitor:
    """Samples per-flow goodput every ``interval`` seconds.

    Rates are delivered-byte deltas over the interval (bits/s), read
    from the run's :class:`~repro.metrics.collector.MetricsCollector`
    records — the receiver-side view, which is what "rate" means once
    queues and losses are in play. Flows with no progress in an interval
    are omitted from that sample, so long runs stay compact.
    """

    def __init__(self, sim: Simulator, collector, interval: float):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.collector = collector
        self.interval = interval
        #: (time, {fid (as str, JSON-stable): rate_bps})
        self.samples: list[tuple[float, dict[str, float]]] = []
        self._delivered: dict[int, int] = {}
        self._timer = PeriodicTimer(sim, interval, self._sample)

    def start(self) -> None:
        self._delivered = {
            fid: record.bytes_delivered
            for fid, record in self.collector.records.items()
        }
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        rates: dict[str, float] = {}
        seen = self._delivered
        for fid, record in self.collector.records.items():
            delta = record.bytes_delivered - seen.get(fid, 0)
            if delta > 0:
                rates[str(fid)] = delta * 8.0 / self.interval
            seen[fid] = record.bytes_delivered
        self.samples.append((self.sim.now, rates))
