"""Network assembly: topology + protocol stack -> runnable simulation.

Builds hosts/switches/links from a :class:`~repro.topology.base.Topology`,
wires per-switch protocol state, pins flow paths, and launches flows from
:class:`~repro.workload.flow.FlowSpec` lists into the event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import RoutingError, TopologyError
from repro.events.simulator import Simulator
from repro.metrics.collector import MetricsCollector
from repro.net.link import Link
from repro.net.monitors import LinkMonitor
from repro.net.node import Host, Node, Switch
from repro.net.pool import PacketPool
from repro.net.routing import Router
from repro.topology.base import Topology
from repro.units import MBYTE, MSEC, USEC, tx_time
from repro.utils.rng import spawn_rng
from repro.workload.flow import FlowSpec
from repro.workload.stream import FlowStream


@dataclass(frozen=True)
class NetworkConfig:
    """Paper §5.1 defaults: 4 MB switch buffers, 0.1 us propagation and
    25 us per-hop processing delay, FIFO tail-drop queues."""

    buffer_bytes: int = 4 * MBYTE
    prop_delay: float = 0.1 * USEC
    processing_delay: float = 25 * USEC
    rto_min: float = 2e-3  # small RTOmin per §5.1 (alleviates incast)
    receiver_rate_limits: dict[str, float] | None = None


class Network:
    """One simulated network running one protocol stack."""

    def __init__(
        self,
        topology: Topology,
        stack,
        sim: Simulator | None = None,
        config: NetworkConfig | None = None,
        metrics: MetricsCollector | None = None,
    ):
        self.topology = topology
        self.stack = stack
        self.sim = sim or Simulator()
        self.config = config or NetworkConfig()
        # explicit None test: an injected-but-empty collector is falsy
        self.metrics = MetricsCollector() if metrics is None else metrics
        #: shared packet/header recycler; transports acquire, terminal
        #: sinks (consuming host, tail-drop, wire loss) release
        self.pool = PacketPool(preallocate=32)

        #: preemption counters (senders report pause/resume transitions)
        self.flow_pauses = 0
        self.flow_resumes = 0

        #: fault injection (repro.faults): set by FaultController when a
        #: scenario declares scheduled failures; None in normal runs
        self.fault_controller = None
        #: flows refused at start because a fault partitioned their
        #: endpoints (counted here; mid-run rejections count on the
        #: controller)
        self.flows_unroutable = 0

        #: open-system streaming state: admission window width, streams
        #: still yielding flows, and a count of non-empty admission pulls
        self.stream_window = 1 * MSEC
        self.stream_batches = 0
        self._pending_streams = 0
        self._quiet_active = False

        self.nodes: list[Node] = []
        self._by_name: dict[str, Node] = {}
        self.links: list[Link] = []
        self._link_by_pair: dict[tuple[int, int], Link] = {}
        self._build_nodes_and_links()
        self.router = Router(self.nodes, self.links)
        self._attach_switch_protocols()

    # -- construction -------------------------------------------------------------

    def _build_nodes_and_links(self) -> None:
        graph = self.topology.graph
        for node_id, name in enumerate(sorted(graph.nodes())):
            kind = graph.nodes[name]["kind"]
            cls = Host if kind == "host" else Switch
            node = cls(self.sim, node_id, name, self.config.processing_delay)
            node.pool = self.pool
            self.nodes.append(node)
            self._by_name[name] = node
        link_id = 0
        for a, b, data in sorted(graph.edges(data=True)):
            rate = data["rate_bps"]
            na, nb = self._by_name[a], self._by_name[b]
            fwd = Link(self.sim, na, nb, rate, self.config.prop_delay,
                       self.config.buffer_bytes, link_id)
            rev = Link(self.sim, nb, na, rate, self.config.prop_delay,
                       self.config.buffer_bytes, link_id + 1)
            link_id += 2
            fwd.pool = rev.pool = self.pool
            fwd.reverse, rev.reverse = rev, fwd
            self.links.extend((fwd, rev))
            self._link_by_pair[(na.id, nb.id)] = fwd
            self._link_by_pair[(nb.id, na.id)] = rev

    def _attach_switch_protocols(self) -> None:
        # every node runs the protocol's forwarding-plane logic: switches
        # always, hosts because server-centric topologies (BCube) relay
        # through them and their NICs need flow control too
        for node in self.nodes:
            node.protocol = self.stack.make_switch_protocol(self, node)

    # -- lookups --------------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def host(self, name: str) -> Host:
        node = self.node(name)
        if not isinstance(node, Host):
            raise TopologyError(f"{name!r} is not a host")
        return node

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self._link_by_pair[(self.node(a).id, self.node(b).id)]
        except KeyError:
            raise TopologyError(f"no link {a} -> {b}") from None

    def links_for_path(self, names: Sequence[str]) -> tuple[Link, ...]:
        """Turn a node-name walk into the Link sequence along it (used for
        source-routed paths, e.g. BCube address-based routing)."""
        if len(names) < 2:
            raise TopologyError("path needs at least two nodes")
        return tuple(
            self.link_between(a, b) for a, b in zip(names, names[1:], strict=False)
        )

    def receiver_rate_limit(self, host_name: str) -> float:
        limits = self.config.receiver_rate_limits
        if limits and host_name in limits:
            return limits[host_name]
        return float("inf")

    # -- configuration helpers ----------------------------------------------------------

    def set_loss(self, a: str, b: str, loss_rate: float, seed: int = 0,
                 both_directions: bool = True) -> None:
        """Random wire loss on the a->b link (and b->a, per Fig 9)."""
        fwd = self.link_between(a, b)
        fwd.set_loss(loss_rate, spawn_rng(seed, f"loss:{fwd.link_id}"))
        if both_directions:
            rev = fwd.reverse
            rev.set_loss(loss_rate, spawn_rng(seed, f"loss:{rev.link_id}"))

    def monitor(self, a: str, b: str, interval: float) -> LinkMonitor:
        monitor = LinkMonitor(self.sim, self.link_between(a, b), interval)
        monitor.start()
        return monitor

    def estimate_rtt(self, fwd_path: tuple[Link, ...],
                     control_bytes: int | None = None) -> float:
        """Unloaded round-trip estimate along a pinned path (control-sized
        packets both ways), used to seed sender RTT estimators."""
        size = control_bytes or self.stack.header_bytes
        total = 0.0
        for link in fwd_path:
            total += (tx_time(size, link.rate_bps) + link.prop_delay
                      + link.dst.processing_delay)
            rev = link.reverse
            total += (tx_time(size, rev.rate_bps) + rev.prop_delay
                      + rev.dst.processing_delay)
        return total

    # -- flow launching ---------------------------------------------------------------------

    def launch(self, flows: Iterable[FlowSpec] | FlowStream) -> None:
        """Register flows and schedule their starts.

        A :class:`FlowStream` is admitted incrementally (see
        :meth:`_admit_stream`); a plain iterable is registered up front.
        Arrivals are batched: one dispatcher event per distinct arrival
        time, not one event per flow. Flows sharing a timestamp start in
        launch order, exactly as per-flow events would have fired."""
        if isinstance(flows, FlowStream):
            self._pending_streams += 1
            self._admit_stream(flows)
            return
        batches: dict[float, list] = {}
        for spec in flows:
            record = self.metrics.register(spec)
            batch = batches.get(spec.arrival)
            if batch is None:
                batch = batches[spec.arrival] = []
            batch.append((spec, record))
        for arrival in sorted(batches):
            self.sim.call_at(arrival, self._start_flow_batch, batches[arrival])

    def _start_flow_batch(self, batch) -> None:
        for spec, record in batch:
            self._start_flow(spec, record)

    # repro: hot
    def _admit_stream(self, stream: FlowStream) -> None:
        """Admission step for an open-system stream (vLLM-scheduler
        style): register and schedule every flow arriving inside the next
        ``stream_window``, then re-arm at the window end — or directly at
        the next arrival when the stream goes quiet, so idle stretches
        cost zero events. Memory stays O(flows in the window), not
        O(flows in the run)."""
        window_end = self.sim.now + self.stream_window
        batch = stream.take_until(window_end)
        register = self.metrics.register
        call_at = self.sim.call_at
        start_flow = self._start_flow
        for spec in batch:
            record = register(spec)
            call_at(spec.arrival, start_flow, spec, record)
        if batch:
            self.stream_batches += 1
        if not stream.exhausted:
            next_arrival = stream.peek_arrival()
            rearm = window_end
            if next_arrival is not None and next_arrival > window_end:
                rearm = next_arrival
            call_at(rearm, self._admit_stream, stream)
            return
        self._pending_streams -= 1
        if (self._pending_streams == 0 and self._quiet_active
                and self.metrics.unfinished_count() == 0):
            # the stream drained on an admission tick with nothing in
            # flight: no completion hook will ever fire, so stop here
            self.sim.stop()

    def _start_flow(self, spec: FlowSpec, record) -> None:
        src = self.host(spec.src)
        dst = self.host(spec.dst)
        if self.fault_controller is not None:
            # under fault injection a flow may arrive while the network
            # is partitioned: reject it (terminate on arrival) instead
            # of crashing the run — the scheduling-with-rejections
            # regime the fault subsystem models
            try:
                fwd = self.router.flow_path(spec.fid, src.id, dst.id)
            except RoutingError:
                self.flows_unroutable += 1
                self.metrics.on_terminated(
                    spec.fid, self.sim.now, "fault: unroutable at arrival"
                )
                return
        else:
            fwd = self.router.flow_path(spec.fid, src.id, dst.id)
        rev = self.router.reverse_path(fwd)
        sender, receiver = self.stack.make_endpoints(self, spec, record, fwd, rev)
        sender.start()

    # -- execution --------------------------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until_quiet(self, deadline: float, max_events: int = 50_000_000) -> None:
        """Run until all flows resolved (completed or terminated) or the
        simulated ``deadline`` passes.

        Completion-driven: a completion observer on the collector calls
        ``sim.stop()`` inside the event that resolves the last flow, so
        the loop processes zero further events — no chunked polling, no
        idle spins on short workloads. ``sim.now`` is left at the
        resolving event's timestamp.

        While an open-system stream is still yielding flows the observer
        holds its fire: a quiet gap between arrivals resolves every
        *admitted* flow without ending the run."""
        if not self.metrics.unfinished_count() and not self._pending_streams:
            return
        unsubscribe = self.metrics.add_completion_observer(
            self._stop_if_drained
        )
        self._quiet_active = True
        try:
            self.sim.run(until=deadline, max_events=max_events)
        finally:
            self._quiet_active = False
            unsubscribe()

    def _stop_if_drained(self) -> None:
        if not self._pending_streams:
            self.sim.stop()

    # -- diagnostics ---------------------------------------------------------------------------

    def total_drops(self) -> int:
        return sum(link.queue.drops for link in self.links)

    def total_wire_losses(self) -> int:
        return sum(link.wire_losses for link in self.links)
