"""Hosts and switches.

A packet carries its pinned path (list of links). Each node forwards by
taking ``packet.path[packet.hop]``; the destination host consumes it and
dispatches to the right transport endpoint. Every node runs the attached
protocol (PDQ / RCP / D3 flow control) against the egress link before the
packet joins that link's queue -- switches always forward; hosts forward
too in server-centric topologies like BCube, where servers relay traffic
and their NICs are contended links that need flow control just like switch
ports (the PDQ shim layer sits on every node).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ProtocolError
from repro.events.simulator import Simulator
from repro.net.link import Link
from repro.net.packet import FORWARD_KINDS, Packet


class NodeProtocol(Protocol):
    """Node-side protocol logic (e.g. the PDQ flow/rate controllers)."""

    def process(self, packet: Packet, out_link: Link) -> None:
        """Inspect/mutate the packet's scheduling header before it is
        queued on ``out_link``."""
        ...  # pragma: no cover - protocol definition


class Endpoint(Protocol):
    """Host-side transport endpoint (sender or receiver half of a flow)."""

    def on_packet(self, packet: Packet) -> None:
        ...  # pragma: no cover - protocol definition


class Node:
    """Common node state: identity, processing delay, optional protocol."""

    def __init__(self, sim: Simulator, node_id: int, name: str,
                 processing_delay: float):
        self.sim = sim
        self.id = node_id
        self.name = name
        self.processing_delay = processing_delay
        self.protocol: NodeProtocol | None = None
        #: packet pool, wired by Network; hosts release consumed packets
        self.pool = None
        self.forwarded = 0

    def receive(self, packet: Packet, in_link: Link | None) -> None:
        raise NotImplementedError

    def _forward(self, packet: Packet) -> bool:
        """Advance the packet one hop along its pinned path."""
        if packet.hop >= len(packet.path):
            raise ProtocolError(
                f"packet {packet!r} ran out of path at {self.name}"
            )
        out_link = packet.path[packet.hop]
        packet.hop += 1
        if out_link.src is not self:
            raise ProtocolError(
                f"path inconsistency: link {out_link.name} does not leave "
                f"{self.name}"
            )
        if self.protocol is not None:
            self.protocol.process(packet, out_link)
        self.forwarded += 1
        return out_link.enqueue(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Switch(Node):
    """Forwards packets along their pinned path."""

    # repro: hot
    def receive(self, packet: Packet, in_link: Link | None) -> None:
        # _forward inlined: switches relay every packet they see, so this
        # is the hottest receive path in the engine (one frame per hop)
        path = packet.path
        hop = packet.hop
        if hop >= len(path):
            raise ProtocolError(
                f"packet {packet!r} ran out of path at {self.name}"
            )
        out_link = path[hop]
        packet.hop = hop + 1
        if out_link.src is not self:
            raise ProtocolError(
                f"path inconsistency: link {out_link.name} does not leave "
                f"{self.name}"
            )
        if self.protocol is not None:
            self.protocol.process(packet, out_link)
        self.forwarded += 1
        out_link.enqueue(packet)


class Host(Node):
    """End host: owns transport endpoints; relays through-traffic."""

    def __init__(self, sim: Simulator, node_id: int, name: str,
                 processing_delay: float):
        super().__init__(sim, node_id, name, processing_delay)
        self.senders: dict[int, Endpoint] = {}
        self.receivers: dict[int, Endpoint] = {}
        self.stray_packets = 0

    # -- outbound ---------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Inject a locally-originated packet onto its pinned path."""
        if not packet.path:
            raise ProtocolError(f"packet {packet!r} has no path")
        packet.sent_time = self.sim.now
        return self._forward(packet)

    # -- inbound -----------------------------------------------------------------

    # repro: hot
    def receive(self, packet: Packet, in_link: Link | None) -> None:
        if packet.dst != self.id:
            # through-traffic: this host is a relay on the packet's path
            # (server-centric topologies such as BCube)
            self._forward(packet)
            return
        endpoint = (self.receivers.get(packet.fid)
                    if packet.kind in FORWARD_KINDS
                    else self.senders.get(packet.fid))
        if endpoint is None:
            # late packet for an already-closed flow; harmless
            self.stray_packets += 1
        else:
            endpoint.on_packet(packet)
        # the destination is the packet's terminal sink: recycle it (any
        # header transferred onto an ACK was detached in _reply first)
        pool = self.pool
        if pool is not None:
            pool.release(packet)

    # -- endpoint registry ---------------------------------------------------------

    def register_sender(self, fid: int, endpoint: Endpoint) -> None:
        if fid in self.senders:
            raise ProtocolError(f"duplicate sender for flow {fid} on {self.name}")
        self.senders[fid] = endpoint

    def register_receiver(self, fid: int, endpoint: Endpoint) -> None:
        if fid in self.receivers:
            raise ProtocolError(f"duplicate receiver for flow {fid} on {self.name}")
        self.receivers[fid] = endpoint

    def unregister_sender(self, fid: int) -> None:
        self.senders.pop(fid, None)

    def unregister_receiver(self, fid: int) -> None:
        self.receivers.pop(fid, None)
