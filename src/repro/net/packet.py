"""Packets exchanged by the simulated transports."""

from __future__ import annotations

import enum


class PacketKind(enum.IntEnum):
    """Packet roles. SYN/DATA/PROBE/TERM travel sender->receiver; the ACK
    variants travel receiver->sender."""

    SYN = 0
    SYN_ACK = 1
    DATA = 2
    ACK = 3
    PROBE = 4
    TERM = 5
    TERM_ACK = 6


#: kinds that travel on the forward (sender -> receiver) path
FORWARD_KINDS = frozenset(
    {PacketKind.SYN, PacketKind.DATA, PacketKind.PROBE, PacketKind.TERM}
)
#: kinds that travel on the reverse (receiver -> sender) path
REVERSE_KINDS = frozenset(
    {PacketKind.SYN_ACK, PacketKind.ACK, PacketKind.TERM_ACK}
)


class Packet:
    """A simulated packet.

    ``size`` is the wire size in bytes (headers included); ``payload`` is the
    number of application bytes carried (0 for control packets). ``seq`` is
    the byte offset of the first payload byte for DATA, or the byte range
    being acknowledged for ACK (``seq``/``ack_seq`` follow the transport's
    convention). ``path`` is the pinned sequence of links this packet
    follows; ``hop`` indexes the next link to take.
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "kind",
        "seq",
        "payload",
        "size",
        "sched",
        "ack_seq",
        "ack_range",
        "echo_time",
        "path",
        "hop",
        "sent_time",
    )

    def __init__(
        self,
        fid: int,
        src: int,
        dst: int,
        kind: PacketKind,
        size: int,
        seq: int = 0,
        payload: int = 0,
        sched: object | None = None,
        ack_seq: int = 0,
        ack_range: tuple[int, int] | None = None,
        echo_time: float = -1.0,
        path: tuple = (),
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        if payload < 0 or payload > size:
            raise ValueError(f"payload {payload} outside [0, {size}]")
        self.fid = fid
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.payload = payload
        self.size = size
        self.sched = sched
        self.ack_seq = ack_seq
        self.ack_range = ack_range
        self.echo_time = echo_time
        self.path = path
        self.hop = 0
        self.sent_time = -1.0

    @property
    def is_forward(self) -> bool:
        return self.kind in FORWARD_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet {self.kind.name} fid={self.fid} seq={self.seq} "
            f"payload={self.payload} size={self.size} hop={self.hop}>"
        )
