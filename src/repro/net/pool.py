"""Packet and scheduling-header pooling for the packet hot path.

Every data packet used to cost two allocations (a :class:`Packet` and a
scheduling header) plus one more for its ACK; at hundreds of thousands of
events per second that is pure allocator churn. The pool keeps free lists
of slotted objects and recycles them along the packet lifecycle:

* **acquire** -- the transports (``transport/base.py``, ``transport/tcp.py``
  and the protocol ``make_sched_header`` hooks) take packets and headers
  from the pool when they send.
* **release** -- exactly one terminal sink gives each packet back: the
  destination host when it consumes (or strays) the packet, the link when
  it tail-drops on ``enqueue``, or the link when random wire loss eats it
  after transmission. Releasing a packet also releases the header still
  attached to it, so a header that was transferred onto an ACK
  (:meth:`AckingReceiver.make_ack_header` moves the *same* object) must be
  detached from the original packet first -- ``_reply`` nulls the donor's
  ``sched`` field for exactly this reason.

Free lists follow the vLLM block-manager idiom: LIFO stacks of
preallocated objects, ``__new__``-constructed on miss so the hot path
never pays ``__init__`` validation. ``debug=True`` turns on the lifecycle
checker: double/foreign releases raise, releases must leave no stale
``sched``/``ack_range``/``path`` behind, and :meth:`assert_no_leaks`
flags packets that never came back.
"""

from __future__ import annotations

import sys

from repro.errors import ProtocolError
from repro.net.headers import D3Header, PdqHeader, RcpHeader
from repro.net.packet import Packet, PacketKind


class PacketPool:
    """Free-list recycler for :class:`Packet` and scheduling headers."""

    def __init__(self, preallocate: int = 0, debug: bool = False):
        self._free: list[Packet] = []
        self._free_pdq: list[PdqHeader] = []
        self._free_rcp: list[RcpHeader] = []
        self._free_d3: list[D3Header] = []
        self.hits = 0
        self.misses = 0
        self.created = 0
        self.debug = debug
        #: id(packet) -> (packet, "file:line" acquire site); debug only
        self._outstanding: dict[int, tuple[Packet, str]] = {}
        for _ in range(preallocate):
            packet = Packet.__new__(Packet)
            packet.sched = None
            packet.ack_range = None
            packet.path = ()
            self._free.append(packet)
            self.created += 1

    # -- packets ---------------------------------------------------------------

    def acquire(
        self,
        fid: int,
        src: int,
        dst: int,
        kind: PacketKind,
        size: int,
        seq: int = 0,
        payload: int = 0,
        sched: object | None = None,
        ack_seq: int = 0,
        ack_range: tuple[int, int] | None = None,
        echo_time: float = -1.0,
        path: tuple = (),
    ) -> Packet:
        """Checked-out packet with every field assigned; no allocation on
        a free-list hit, and no ``Packet.__init__`` validation either way
        (callers are the transports, which always pass consistent sizes)."""
        free = self._free
        if free:
            packet = free.pop()
            self.hits += 1
            if self.debug:
                self._check_clean(packet)
        else:
            packet = Packet.__new__(Packet)
            self.misses += 1
            self.created += 1
        packet.fid = fid
        packet.src = src
        packet.dst = dst
        packet.kind = kind
        packet.seq = seq
        packet.payload = payload
        packet.size = size
        packet.sched = sched
        packet.ack_seq = ack_seq
        packet.ack_range = ack_range
        packet.echo_time = echo_time
        packet.path = path
        packet.hop = 0
        packet.sent_time = -1.0
        if self.debug:
            # record the caller so a leak report can name who acquired
            # the packet (the release sink is whoever *didn't* run)
            frame = sys._getframe(1)
            site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
            self._outstanding[id(packet)] = (packet, site)
        return packet

    def release(self, packet: Packet) -> None:
        """Return a packet (and any attached header) to the free lists.

        Terminal sinks only: the consuming host, a tail-drop, or a wire
        loss. Reference fields are cleared so a recycled packet can never
        leak a previous flow's header, ack range or pinned path."""
        if self.debug and self._outstanding.pop(id(packet), None) is None:
            raise ProtocolError(
                f"pool release of a packet it does not own: {packet!r} "
                "(double release, or a packet constructed outside the "
                "pool)"
            )
        sched = packet.sched
        if sched is not None:
            self.release_header(sched)
            packet.sched = None
        packet.ack_range = None
        packet.path = ()
        self._free.append(packet)

    # -- headers ---------------------------------------------------------------

    def acquire_pdq(self, rate, pauseby, deadline, expected_tx, rtt,
                    inter_probe, criticality) -> PdqHeader:
        free = self._free_pdq
        header = free.pop() if free else PdqHeader.__new__(PdqHeader)
        header.rate = rate
        header.pauseby = pauseby
        header.deadline = deadline
        header.expected_tx = expected_tx
        header.rtt = rtt
        header.inter_probe = inter_probe
        header.criticality = criticality
        return header

    def acquire_rcp(self, rate, rtt) -> RcpHeader:
        free = self._free_rcp
        header = free.pop() if free else RcpHeader.__new__(RcpHeader)
        header.rate = rate
        header.rtt = rtt
        return header

    def acquire_d3(self, desired, prev_alloc, rtt, deadline) -> D3Header:
        free = self._free_d3
        header = free.pop() if free else D3Header.__new__(D3Header)
        header.desired = desired
        header.prev_alloc = prev_alloc
        header.allocated = float("inf")
        header.rtt = rtt
        header.deadline = deadline
        return header

    def release_header(self, header) -> None:
        cls = type(header)
        if cls is PdqHeader:
            self._free_pdq.append(header)
        elif cls is RcpHeader:
            self._free_rcp.append(header)
        elif cls is D3Header:
            self._free_d3.append(header)
        # foreign header classes (tests, experiments) just fall to the GC

    # -- introspection -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Distinct packets this pool has ever handed out (its footprint)."""
        return self.created

    def free_count(self) -> int:
        return len(self._free)

    def outstanding(self) -> list[Packet]:
        """Debug mode only: packets acquired but never released."""
        return [packet for packet, _site in self._outstanding.values()]

    def outstanding_sites(self) -> list[tuple[Packet, str]]:
        """Debug mode only: (packet, acquire site) for every leak."""
        return list(self._outstanding.values())

    def assert_no_leaks(self) -> None:
        """Debug mode: raise if any acquired packet was never released,
        naming each leaked packet's acquire call site."""
        if self._outstanding:
            leaked = ", ".join(
                f"{packet!r} acquired at {site}"
                for packet, site in self._outstanding.values()
            )
            raise ProtocolError(
                f"{type(self).__name__} leak: {len(self._outstanding)} "
                f"packet(s) never released: {leaked}"
            )

    def _check_clean(self, packet: Packet) -> None:
        stale = []
        if packet.sched is not None:
            stale.append(f"sched={packet.sched!r}")
        if packet.ack_range is not None:
            stale.append(f"ack_range={packet.ack_range!r}")
        if packet.path != ():
            stale.append("path")
        if stale:
            raise ProtocolError(
                "recycled packet carries stale fields: " + ", ".join(stale)
            )
