"""FIFO tail-drop queue with a byte-bounded buffer.

PDQ's whole point is to need nothing fancier than this at switches
(paper §1: "lightweight, using only FIFO tail-drop queues").

The buffer is a power-of-two ring of packet slots (head index + count)
rather than a linked deque: offer and pop are two index stores and one
byte-counter update each, with no per-packet node allocation, and the
slot array is shared across the queue's lifetime. Byte accounting is
O(1) on both ends.
"""

from __future__ import annotations


from repro.net.packet import Packet

#: initial ring size; doubles as needed (capacity is byte-bounded, so the
#: packet count is workload-dependent)
_MIN_SLOTS = 8


class DropTailQueue:
    """Byte-limited FIFO. ``offer`` refuses (tail-drops) packets that would
    overflow the buffer."""

    __slots__ = (
        "capacity_bytes", "_buf", "_mask", "_head", "_count", "_bytes",
        "drops", "dropped_bytes", "peak_bytes",
    )

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._buf: list[Packet | None] = [None] * _MIN_SLOTS
        self._mask = _MIN_SLOTS - 1
        self._head = 0
        self._count = 0
        self._bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return self._count

    @property
    def bytes(self) -> int:
        """Bytes currently waiting (excludes any packet in transmission)."""
        return self._bytes

    # repro: hot
    def offer(self, packet: Packet) -> bool:
        """Append if it fits; returns False (and counts a drop) otherwise."""
        nbytes = self._bytes + packet.size
        if nbytes > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        count = self._count
        buf = self._buf
        if count == len(buf):
            buf = self._grow()
        buf[(self._head + count) & self._mask] = packet
        self._count = count + 1
        self._bytes = nbytes
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
        return True

    # repro: hot
    def touch(self, packet: Packet) -> bool:
        """Accounting-only ``offer`` + immediate ``pop`` for a packet that
        goes straight into transmission on an idle link: identical drop
        decision and ``peak_bytes`` update, but the ring is never written
        (net byte change is zero)."""
        nbytes = self._bytes + packet.size
        if nbytes > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
        return True

    # repro: hot
    def pop(self) -> Packet | None:
        """Remove and return the head packet, or None when empty."""
        count = self._count
        if count == 0:
            return None
        head = self._head
        buf = self._buf
        packet = buf[head]
        buf[head] = None
        self._head = (head + 1) & self._mask
        self._count = count - 1
        self._bytes -= packet.size
        return packet

    def _grow(self) -> list[Packet | None]:
        """Double the ring, unrolling it so head lands at slot 0."""
        old = self._buf
        n = len(old)
        head = self._head
        mask = self._mask
        new: list[Packet | None] = [None] * (n * 2)
        for i in range(self._count):
            new[i] = old[(head + i) & mask]
        self._buf = new
        self._mask = n * 2 - 1
        self._head = 0
        return new
