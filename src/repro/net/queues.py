"""FIFO tail-drop queue with a byte-bounded buffer.

PDQ's whole point is to need nothing fancier than this at switches
(paper §1: "lightweight, using only FIFO tail-drop queues").
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Packet


class DropTailQueue:
    """Byte-limited FIFO. ``offer`` refuses (tail-drops) packets that would
    overflow the buffer."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self.drops = 0
        self.dropped_bytes = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes(self) -> int:
        """Bytes currently waiting (excludes any packet in transmission)."""
        return self._bytes

    def offer(self, packet: Packet) -> bool:
        """Append if it fits; returns False (and counts a drop) otherwise."""
        if self._bytes + packet.size > self.capacity_bytes:
            self.drops += 1
            self.dropped_bytes += packet.size
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return True

    def pop(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet
