"""Flow-level ECMP routing with pinned, symmetric paths.

The paper assumes flow-level equal-cost multi-path forwarding (§3.3.1, §6).
We reproduce that: for each flow the router picks one of the shortest paths
by a deterministic hash of (flow id, node id) at every fan-out, pins it for
the flow's lifetime, and routes ACKs on the exact reverse links so switch
state sits on the round-trip path (required by PDQ's two-phase acceptance).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.errors import RoutingError
from repro.net.link import Link
from repro.net.node import Node

#: pinned-path cache bound (mirrors repro.flowsim.paths.PATH_CACHE_LIMIT):
#: open-system streams route an unbounded sequence of fresh fids, so the
#: cache clears instead of growing O(flows)
PATH_CACHE_LIMIT = 4096


def ecmp_hash(fid: int, node_id: int) -> int:
    """Deterministic 63-bit mix used for ECMP choice (stable across runs)."""
    h = (fid * 0x9E3779B97F4A7C15) ^ ((node_id + 1) * 0xBF58476D1CE4E5B9)
    h &= 0xFFFFFFFFFFFFFFFF
    h ^= h >> 31
    return h & 0x7FFFFFFFFFFFFFFF


class Router:
    """Computes and caches pinned flow paths over the built Link objects."""

    def __init__(self, nodes: Sequence[Node], links: Sequence[Link]):
        self._nodes: dict[int, Node] = {node.id: node for node in nodes}
        self._out_links: dict[int, list[Link]] = {node.id: [] for node in nodes}
        for link in links:
            self._out_links[link.src.id].append(link)
        for out in self._out_links.values():
            out.sort(key=lambda lk: lk.link_id)
        # hop distance to each destination, computed lazily per destination
        self._dist_cache: dict[int, dict[int, int]] = {}
        self._path_cache: dict[tuple[int, int, int], tuple[Link, ...]] = {}

    # -- public API ---------------------------------------------------------------

    def invalidate_routes(self) -> None:
        """Forget cached distances and pinned paths.

        Called by the fault controller when links go down or come back:
        the next ``flow_path`` recomputes over the surviving links, so a
        rerouted flow gets a fresh pin instead of a stale cached one.
        """
        self._dist_cache.clear()
        self._path_cache.clear()

    def flow_path(self, fid: int, src_id: int, dst_id: int) -> tuple[Link, ...]:
        """Pinned forward path for flow ``fid`` from src to dst."""
        key = (fid, src_id, dst_id)
        path = self._path_cache.get(key)
        if path is None:
            path = self._compute_path(fid, src_id, dst_id)
            if len(self._path_cache) >= PATH_CACHE_LIMIT:
                self._path_cache.clear()
            self._path_cache[key] = path
        return path

    def reverse_path(self, forward: Sequence[Link]) -> tuple[Link, ...]:
        """The exact reverse of a pinned forward path."""
        reverse = []
        for link in reversed(forward):
            if link.reverse is None:
                raise RoutingError(f"link {link.name} has no reverse twin")
            reverse.append(link.reverse)
        return tuple(reverse)

    def equal_cost_paths(self, src_id: int, dst_id: int) -> int:
        """Number of distinct next-hop choices at the source (diagnostics)."""
        dist = self._distances(dst_id)
        return len(self._candidates(src_id, dist))

    def hop_count(self, src_id: int, dst_id: int) -> int:
        dist = self._distances(dst_id)
        if src_id not in dist:
            raise RoutingError(f"no route {src_id} -> {dst_id}")
        return dist[src_id]

    # -- internals -----------------------------------------------------------------

    def _distances(self, dst_id: int) -> dict[int, int]:
        dist = self._dist_cache.get(dst_id)
        if dist is not None:
            return dist
        if dst_id not in self._nodes:
            raise RoutingError(f"unknown destination node {dst_id}")
        # BFS over reversed adjacency: dist[n] = hops from n to dst
        incoming: dict[int, list[int]] = {nid: [] for nid in self._nodes}
        for nid, links in self._out_links.items():
            for link in links:
                if link.up:  # failed links carry no routes
                    incoming[link.dst.id].append(nid)
        dist = {dst_id: 0}
        frontier = deque([dst_id])
        while frontier:
            node = frontier.popleft()
            for prev in incoming[node]:
                if prev not in dist:
                    dist[prev] = dist[node] + 1
                    frontier.append(prev)
        self._dist_cache[dst_id] = dist
        return dist

    def _candidates(self, node_id: int, dist: dict[int, int]) -> list[Link]:
        here = dist.get(node_id)
        if here is None:
            return []
        return [
            link
            for link in self._out_links[node_id]
            if link.up and dist.get(link.dst.id, here) == here - 1
        ]

    def _compute_path(self, fid: int, src_id: int, dst_id: int) -> tuple[Link, ...]:
        if src_id == dst_id:
            raise RoutingError("flow src equals dst")
        dist = self._distances(dst_id)
        if src_id not in dist:
            raise RoutingError(f"no route {src_id} -> {dst_id}")
        path: list[Link] = []
        node_id = src_id
        while node_id != dst_id:
            candidates = self._candidates(node_id, dist)
            if not candidates:
                raise RoutingError(
                    f"routing dead-end at node {node_id} toward {dst_id}"
                )
            choice = candidates[ecmp_hash(fid, node_id) % len(candidates)]
            path.append(choice)
            node_id = choice.dst.id
        return tuple(path)
