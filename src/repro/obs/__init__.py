"""Telemetry for simulation runs and campaigns (the observability layer).

Four surfaces, all riding on the existing result plumbing:

* :mod:`repro.obs.stats` — cheap monotonic run counters harvested from
  both engines into ``MetricsCollector.stats`` (always on; plain int
  reads at end of run, zero per-event cost).
* :mod:`repro.obs.probes` — declarative time-series probes (link
  utilization / queue occupancy, per-flow rates) requested through the
  ``probes`` scenario option and materialized on either engine.
* :mod:`repro.obs.trace` — opt-in flow-lifecycle traces (arrival, rate
  change, pause, resume, completion, termination) behind the ``trace``
  scenario option, exportable as JSONL.
* :mod:`repro.obs.report` — ``python -m repro report``: summarize a
  result store (cache hit rate, slowest cells, counter aggregates,
  validation tolerance margins).

:mod:`repro.obs.log` wires stdlib logging behind the CLI ``-v``/``-q``
flags; everything logs under the ``repro.*`` logger hierarchy.
"""

from repro.obs.probes import (
    attach_fluid_probes,
    attach_packet_probes,
    collect_probes,
    validate_probes_option,
)
from repro.obs.stats import RunStats, harvest_fluid_run, harvest_packet_run
from repro.obs.trace import FlowTracer, write_trace_jsonl

__all__ = [
    "FlowTracer",
    "RunStats",
    "attach_fluid_probes",
    "attach_packet_probes",
    "collect_probes",
    "harvest_fluid_run",
    "harvest_packet_run",
    "validate_probes_option",
    "write_trace_jsonl",
]
