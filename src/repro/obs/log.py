"""Stdlib logging for the repro package, wired to the CLI flags.

Everything logs under the ``repro.*`` hierarchy; the CLI translates
``-v``/``-q`` into a level on the ``repro`` root logger:

====================  =========
flags                 level
====================  =========
``-q``                ERROR
(default)             WARNING
``-v``                INFO
``-vv``               DEBUG
====================  =========

Library code just does ``logger = get_logger(__name__)`` and logs; with
no CLI configuration the records fall through to stdlib defaults
(WARNING to stderr), so embedding the package needs no setup either.
"""

from __future__ import annotations

import logging
import sys

ROOT = "repro"

_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}


class _StderrHandler(logging.StreamHandler):
    """A stream handler that resolves ``sys.stderr`` at emit time, so
    long-lived processes that swap stderr (test harnesses, daemons
    redirecting output) never log into a stale stream."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent)."""
    if not name.startswith(ROOT):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)


def setup_cli_logging(verbosity: int = 0) -> logging.Logger:
    """Configure the ``repro`` root logger for a CLI invocation.

    ``verbosity`` is ``(#-v flags) - (#-q flags)``; anything above 1 is
    DEBUG, anything below -1 still shows errors. Handlers go to stderr
    so piped stdout (tables, JSON) stays clean. Idempotent: re-invoking
    replaces the level, not the handler.
    """
    logger = logging.getLogger(ROOT)
    level = _LEVELS.get(max(-1, min(1, verbosity)), logging.DEBUG)
    if verbosity > 1:
        level = logging.DEBUG
    logger.setLevel(level)
    if not logger.handlers:
        handler = _StderrHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
    return logger
