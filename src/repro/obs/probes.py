"""Declarative probes: spec-addressable time-series sampling.

A scenario opts into probes through its ``options``::

    "options": {
        "probes": {
            "bottleneck": {"kind": "link", "link": ["sw0", "recv"],
                           "interval": 0.001},
            "rates": {"kind": "flow_rates", "interval": 0.002}
        }
    }

Probe kinds:

``link``
    Utilization and queue occupancy of the named directed link, sampled
    every ``interval`` seconds — the fig6/fig7 ``LinkMonitor`` series,
    available to any scenario. On the fluid engine utilization is the
    allocated-rate sum crossing the edge over its capacity and queues
    are identically zero (the fluid model has no queues).

``flow_rates``
    Per-flow throughput. Packet engine: delivered-byte deltas per
    interval (goodput). Fluid engine: the allocated rates — which is
    what "rate" means in that model.

Each probe materializes as ``{"kind", "params", "columns", "samples"}``
under ``collector.probes[name]`` — already JSON-plain, so it round-trips
through the result store byte-identically. Probes cost nothing unless
requested: the engines only consult them when the option is present.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Any

from repro.errors import ExperimentError

PROBE_KINDS = ("link", "flow_rates")

LINK_COLUMNS = ["t", "utilization", "queue_packets", "queue_bytes"]
FLOW_RATE_COLUMNS = ["t", "rates_bps"]


def validate_probes_option(probes: Any) -> dict[str, dict]:
    """Check the ``probes`` option shape; returns it as a plain dict."""
    if not isinstance(probes, Mapping):
        raise ExperimentError(
            "the 'probes' option must map probe names to probe specs, "
            f"got {type(probes).__name__}"
        )
    out: dict[str, dict] = {}
    for name, params in probes.items():
        if not isinstance(params, Mapping):
            raise ExperimentError(
                f"probe {name!r}: spec must be a mapping, "
                f"got {type(params).__name__}"
            )
        kind = params.get("kind")
        if kind not in PROBE_KINDS:
            raise ExperimentError(
                f"probe {name!r}: unknown kind {kind!r} "
                f"(known: {', '.join(PROBE_KINDS)})"
            )
        interval = params.get("interval")
        if not isinstance(interval, (int, float)) or interval <= 0:
            raise ExperimentError(
                f"probe {name!r}: 'interval' must be a positive number"
            )
        if kind == "link":
            link = params.get("link")
            if (not isinstance(link, (list, tuple)) or len(link) != 2
                    or not all(isinstance(n, str) for n in link)):
                raise ExperimentError(
                    f"probe {name!r}: 'link' must be a [src, dst] "
                    "node-name pair"
                )
        out[name] = dict(params)
    return out


def _result(kind: str, params: Mapping[str, Any], columns: list[str],
            samples: list[list]) -> dict:
    return {
        "kind": kind,
        "params": {k: v for k, v in sorted(params.items()) if k != "kind"},
        "columns": list(columns),
        "samples": samples,
    }


# -- packet-engine probes -----------------------------------------------------------


class PacketLinkProbe:
    """Wraps a :class:`~repro.net.monitors.LinkMonitor` on the named link."""

    def __init__(self, net, name: str, params: Mapping[str, Any]):
        self.name = name
        self.params = params
        a, b = params["link"]
        self.monitor = net.monitor(a, b, params["interval"])

    def result(self) -> dict:
        return _result("link", self.params, LINK_COLUMNS,
                       [list(row) for row in self.monitor.samples])


class PacketFlowRateProbe:
    """Wraps a :class:`~repro.net.monitors.FlowRateMonitor` (goodput)."""

    def __init__(self, net, name: str, params: Mapping[str, Any]):
        from repro.net.monitors import FlowRateMonitor

        self.name = name
        self.params = params
        self.monitor = FlowRateMonitor(
            net.sim, net.metrics, params["interval"]
        )
        self.monitor.start()

    def result(self) -> dict:
        return _result("flow_rates", self.params, FLOW_RATE_COLUMNS,
                       [[t, rates] for t, rates in self.monitor.samples])


def attach_packet_probes(net, probes: Any) -> list:
    """Instantiate every declared probe on a built (unrun) Network."""
    attached = []
    for name, params in sorted(validate_probes_option(probes).items()):
        if params["kind"] == "link":
            attached.append(PacketLinkProbe(net, name, params))
        else:
            attached.append(PacketFlowRateProbe(net, name, params))
    return attached


# -- fluid-engine probes ------------------------------------------------------------


class _FluidProbe:
    """Samples at the first event boundary >= interval past the last
    sample (the fluid engine has no timers; event boundaries are the
    only instants at which rates are defined)."""

    def __init__(self, name: str, params: Mapping[str, Any]):
        self.name = name
        self.params = params
        self.interval = params["interval"]
        self._next = self.interval
        self.samples: list[list] = []

    def on_step(self, sim, active) -> None:
        now = sim.now
        if now < self._next or not math.isfinite(now):
            return
        self.samples.append(self._sample(now, active))
        self._next = now + self.interval

    def _sample(self, now: float, active) -> list:
        raise NotImplementedError


class FluidLinkProbe(_FluidProbe):
    """Allocated-rate utilization of one directed edge; queues are zero
    by construction in the fluid model."""

    def __init__(self, sim, name: str, params: Mapping[str, Any]):
        super().__init__(name, params)
        a, b = params["link"]
        try:
            self.eid = sim.router.edge_index[(a, b)]
        except KeyError:
            raise ExperimentError(
                f"probe {name!r}: no link {a} -> {b} in the topology"
            ) from None
        self.capacity = sim.capacities[self.eid]

    def _sample(self, now: float, active) -> list:
        eid = self.eid
        load = sum(f.rate for f in active if f.rate > 0 and eid in f.path)
        utilization = min(1.0, load / self.capacity) if self.capacity else 0.0
        return [now, utilization, 0, 0]

    def result(self) -> dict:
        return _result("link", self.params, LINK_COLUMNS, self.samples)


class FluidFlowRateProbe(_FluidProbe):
    """Allocated per-flow rates (string fids for JSON stability)."""

    def _sample(self, now: float, active) -> list:
        return [now, {str(f.fid): f.rate for f in active if f.rate > 0}]

    def result(self) -> dict:
        return _result("flow_rates", self.params, FLOW_RATE_COLUMNS,
                       self.samples)


def attach_fluid_probes(sim, probes: Any) -> list:
    """Instantiate declared probes on a FlowLevelSimulation and register
    them as per-event-boundary samplers."""
    attached = []
    for name, params in sorted(validate_probes_option(probes).items()):
        probe = (FluidLinkProbe(sim, name, params)
                 if params["kind"] == "link"
                 else FluidFlowRateProbe(name, params))
        attached.append(probe)
        sim.samplers.append(probe)
    return attached


def collect_probes(collector, attached: list) -> None:
    """Fold finished probes into ``collector.probes``."""
    for probe in attached:
        collector.probes[probe.name] = probe.result()
