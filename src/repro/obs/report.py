"""``python -m repro report`` — summarize a result store.

Reads only artifacts that already exist (the store's scenario entries,
its campaign log, and optionally a ``VALIDATE_cross_engine.json``) and
produces one JSON-able summary:

* campaign telemetry — runs, cache hit rate, retries, failures, worker
  fan-out (from ``campaign_log.jsonl``);
* the slowest scenario cells by recorded wall time;
* aggregate run counters summed across every stored scenario (from the
  ``stats`` each collector now carries);
* the validation tolerance-margin table: for every check of every pair,
  how much of its tolerance budget the measured gap consumed
  (``margin = measured / limit``; anything >= 1.0 is a violation).

Summaries never fail on timing — a slow cell is a row, not an error.
"""

from __future__ import annotations

import json
from pathlib import Path

REPORT_SCHEMA = 1

#: how many rows the "slowest cells" and "tightest margins" tables keep
TOP_N = 10


def _campaign_summary(log_rows: list[dict]) -> dict:
    executed = sum(1 for r in log_rows if not r.get("cached"))
    cached = sum(1 for r in log_rows if r.get("cached"))
    failed = sum(1 for r in log_rows if not r.get("ok"))
    retries = sum(max(0, r.get("attempts", 1) - 1) for r in log_rows)
    workers: dict[str, int] = {}
    for row in log_rows:
        worker = row.get("worker")
        if worker is not None:
            key = str(worker)
            workers[key] = workers.get(key, 0) + 1
    total = executed + cached
    return {
        "runs": len(log_rows),
        "executed": executed,
        "cached": cached,
        "failed": failed,
        "retries": retries,
        "cache_hit_rate": (cached / total) if total else None,
        "workers": workers,
        "wall_time_s": sum(r.get("elapsed", 0.0) for r in log_rows),
    }


def _slowest(entries) -> list[dict]:
    ranked = sorted(entries, key=lambda e: e.elapsed, reverse=True)
    return [
        {
            "key": entry.key,
            "scenario": entry.describe(),
            "elapsed_s": entry.elapsed,
        }
        for entry in ranked[:TOP_N]
    ]


def _counter_totals(entries) -> dict[str, int]:
    totals: dict[str, int] = {}
    for entry in entries:
        for name, value in entry.stats.items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def _validation_margins(payload: dict) -> dict:
    margins: list[dict] = []
    for pair in payload.get("pairs", []):
        for check in pair.get("checks", []):
            measured, limit = check.get("measured"), check.get("limit")
            if measured is None or limit is None:
                continue
            margins.append({
                "pair": pair["name"],
                "check": check["name"],
                "measured": measured,
                "limit": limit,
                "margin": (measured / limit) if limit else
                          (0.0 if measured == 0 else float("inf")),
                "ok": check.get("ok", True),
            })
    margins.sort(key=lambda m: m["margin"], reverse=True)
    return {
        "ok": payload.get("ok"),
        "n_pairs": payload.get("n_pairs"),
        "n_failed": payload.get("n_failed"),
        "tightest": margins[:TOP_N],
    }


def build_report(store, validate_path: str | Path | None = None,
                 ) -> dict:
    """Summarize a :class:`~repro.campaign.store.ResultStore`.

    ``validate_path`` (when given and existing) points at a harness
    report whose tolerance margins are folded in.
    """
    entries = store.entries()
    log_rows = store.read_log()
    report = {
        "schema": REPORT_SCHEMA,
        "suite": "report",
        "store": str(store.root),
        "n_entries": len(entries),
        "campaign": _campaign_summary(log_rows),
        "slowest": _slowest(entries),
        "counters": _counter_totals(entries),
        "validation": None,
    }
    if validate_path is not None:
        path = Path(validate_path)
        if path.exists():
            with path.open(encoding="utf-8") as fh:
                payload = json.load(fh)
            report["validation"] = {
                "path": str(path), **_validation_margins(payload)
            }
    return report


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path
