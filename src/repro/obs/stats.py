"""Run counters: cheap monotonic telemetry both engines feed.

The engines keep plain integer attributes on their own objects (the
event simulator, links, nodes, the fluid engine, the PDQ rate model) —
incrementing an int is the only per-event cost, and nothing here runs
inside a hot loop. At the end of a scenario the campaign adapters call
:func:`harvest_packet_run` / :func:`harvest_fluid_run` to fold those
attributes into one flat ``{counter_name: int}`` dict stored on
``MetricsCollector.stats``, which serializes through
``to_dict``/``from_dict`` and therefore persists in the
:class:`~repro.campaign.store.ResultStore` like any other metric.

Counter names are dotted (``sim.events``, ``net.packets_dropped``,
``fluid.allocate_calls``) and sorted on serialization, so stored
payloads are byte-stable and ``repro report`` can aggregate across
scenarios without a schema.
"""

from __future__ import annotations

from collections.abc import Mapping


class RunStats:
    """A registry of named monotonic counters for one run."""

    __slots__ = ("counters",)

    def __init__(self, counters: Mapping[str, int] | None = None):
        self.counters: dict[str, int] = dict(counters or {})

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set(self, name: str, value: int) -> None:
        self.counters[name] = int(value)

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def merge(self, other: "RunStats") -> "RunStats":
        """Fold another registry in (summing shared names); returns self."""
        for name, value in other.counters.items():
            self.inc(name, value)
        return self

    def __bool__(self) -> bool:
        return bool(self.counters)

    def __len__(self) -> int:
        return len(self.counters)

    def to_dict(self) -> dict[str, int]:
        return {name: self.counters[name] for name in sorted(self.counters)}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "RunStats":
        return cls(data)


# -- harvesting --------------------------------------------------------------------


def harvest_packet_run(net) -> RunStats:
    """Fold a finished packet-level run's engine counters into RunStats.

    ``net`` is a :class:`~repro.net.network.Network` whose simulation has
    run; every value is a plain attribute read, so harvesting costs
    nothing measurable relative to the run itself.
    """
    sim = net.sim
    stats = RunStats()
    c = stats.counters
    c["sim.events"] = sim.processed_events
    c["sim.compactions"] = sim.compactions
    c["sim.timer_pushbacks"] = sim.timer_pushbacks
    c["sim.pending_at_exit"] = sim.pending()
    c["net.packets_sent"] = sum(link.packets_sent for link in net.links)
    c["net.bytes_sent"] = sum(link.bytes_sent for link in net.links)
    c["net.packets_forwarded"] = sum(node.forwarded for node in net.nodes)
    c["net.packets_dropped"] = net.total_drops()
    c["net.wire_losses"] = net.total_wire_losses()
    c["net.stray_packets"] = sum(
        node.stray_packets for node in net.nodes
        if hasattr(node, "stray_packets")
    )
    c["flows.pauses"] = net.flow_pauses
    c["flows.resumes"] = net.flow_resumes
    c["net.stream_batches"] = getattr(net, "stream_batches", 0)
    pool = getattr(net, "pool", None)
    if pool is not None:
        c["net.pool_hits"] = pool.hits
        c["net.pool_misses"] = pool.misses
        c["net.pool_size"] = pool.size
    controller = getattr(net, "fault_controller", None)
    if controller is not None:
        # only under fault injection, so fault-free stored payloads are
        # byte-identical to what they were before the subsystem existed
        c["faults.events_applied"] = controller.events_applied
        c["faults.reroutes"] = controller.reroutes
        c["faults.flows_rejected"] = (controller.flows_rejected
                                      + net.flows_unroutable)
        c["faults.packets_dropped"] = controller.packets_dropped()
    return stats


def harvest_fluid_run(sim) -> RunStats:
    """Fold a finished fluid run's engine counters into RunStats.

    ``sim`` is a :class:`~repro.flowsim.engine.FlowLevelSimulation`; the
    comparator-key cache counters exist only on models that keep one
    (PDQ), so they are read tolerantly.
    """
    stats = RunStats()
    c = stats.counters
    c["fluid.iterations"] = sim.iterations
    c["fluid.allocate_calls"] = sim.recomputations
    c["flows.pauses"] = sim.pauses
    c["flows.resumes"] = sim.resumes
    c["fluid.stream_batches"] = getattr(sim, "stream_batches", 0)
    model = sim.model
    hits = getattr(model, "cache_hits", None)
    if hits is not None:
        c["fluid.comparator_cache_hits"] = hits
        c["fluid.comparator_cache_misses"] = model.cache_misses
    if getattr(sim, "fault_events", ()):
        # same conditional-emission rule as the packet harvest: the
        # counters appear only when the scenario declared faults
        c["faults.events_applied"] = sim.fault_events_applied
        c["faults.reroutes"] = sim.fault_reroutes
        c["faults.flows_rejected"] = sim.flows_rejected
    return stats
