"""Flow-lifecycle traces: the paper's preemption dynamics as event logs.

PDQ's core behavior is *temporal* — a critical arrival pauses running
flows mid-flight, they resume when it departs (paper §2, Fig 1). The
:class:`FlowTracer` records that story for any scenario: attach one to a
``MetricsCollector`` (``collector.tracer = FlowTracer()``) before the
run and every lifecycle transition lands in ``tracer.events`` as a
JSON-safe dict::

    {"t": 0.0012, "flow": 3, "event": "pause", "rate": 0.0}

Event kinds: ``arrival``, ``rate`` (a rate change while sending),
``pause`` (rate drops to zero — preemption), ``resume`` (paused flow
granted rate again), ``complete``, ``terminated`` (with ``reason``).

The tracer classifies pause/resume itself from the rate transitions the
engines report, so both the packet stack (``RateBasedSender.set_rate``)
and the fluid engine (``_apply_rates``) produce identical event shapes.
Tracing is opt-in per scenario (the ``trace`` option); a collector
without a tracer pays one ``is None`` check per lifecycle transition and
nothing per packet.
"""

from __future__ import annotations

import json
from pathlib import Path


class FlowTracer:
    """Collects flow-lifecycle events in simulated-time order."""

    __slots__ = ("events", "_rates")

    def __init__(self) -> None:
        self.events: list[dict] = []
        #: last reported rate per flow (absent = never granted a rate)
        self._rates: dict[int, float] = {}

    # -- hooks (called by collector / engines) ---------------------------------

    def on_arrival(self, fid: int, t: float) -> None:
        self.events.append({"t": t, "flow": fid, "event": "arrival"})

    def on_rate(self, fid: int, t: float, rate: float) -> None:
        """Classify a rate change into rate/pause/resume and record it.

        No-op transitions (same rate, or zero-to-zero before the flow
        ever sent) are dropped so traces stay readable.
        """
        last = self._rates.get(fid)
        if rate <= 0:
            if last is None or last <= 0:
                return  # still never sending; not a preemption
            kind = "pause"
        elif last is not None and last <= 0:
            kind = "resume"
        elif last == rate:
            return
        else:
            kind = "rate"
        self._rates[fid] = rate
        self.events.append(
            {"t": t, "flow": fid, "event": kind, "rate": rate}
        )

    def on_complete(self, fid: int, t: float) -> None:
        self.events.append({"t": t, "flow": fid, "event": "complete"})

    def on_terminated(self, fid: int, t: float, reason: str) -> None:
        self.events.append(
            {"t": t, "flow": fid, "event": "terminated", "reason": reason}
        )

    def __len__(self) -> int:
        return len(self.events)


def write_trace_jsonl(path: str | Path, events: list[dict],
                      header: dict | None = None) -> Path:
    """Write one trace as JSON Lines (optionally preceded by a header
    line carrying provenance, e.g. the scenario key)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if header is not None:
            fh.write(json.dumps({"header": header}) + "\n")
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL trace back (header lines are skipped)."""
    out: list[dict] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if "header" in payload and "event" not in payload:
                continue
            out.append(payload)
    return out
