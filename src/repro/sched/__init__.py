"""Reference schedulers and analytic bounds.

* :mod:`repro.sched.centralized` -- the §3 centralized algorithm PDQ
  approximates.
* :mod:`repro.sched.optimal` -- the omniscient bounds used in Fig 3:
  EDF + Moore-Hodgson tardy-minimization for deadline flows (Pinedo
  Alg 3.3.1), SJF/SRPT fluid completion times for mean FCT.
* :mod:`repro.sched.fluid` -- the Fig 1 motivating-example models: fluid
  fair sharing, serial SJF/EDF, and D3's arrival-order reservation.
"""

from repro.sched.centralized import centralized_rates
from repro.sched.fluid import (
    d3_fluid_schedule,
    fair_sharing_completions,
    serial_completions,
)
from repro.sched.optimal import (
    max_ontime_subset,
    optimal_application_throughput,
    sjf_completion_times,
    srpt_mean_fct,
)

__all__ = [
    "centralized_rates",
    "fair_sharing_completions",
    "serial_completions",
    "d3_fluid_schedule",
    "max_ontime_subset",
    "optimal_application_throughput",
    "sjf_completion_times",
    "srpt_mean_fct",
]
