"""The centralized scheduler PDQ approximates (paper §3).

    1. B_e = available bandwidth of link e, initialized to e's line rate.
    2. For each flow i, in increasing order of expected transmission time:
       (a) P_i = flow i's path
       (b) send flow i with rate min(Rmax_i, min_{e in P_i} B_e)
       (c) B_e -= rate for each e on the path

The flow-level simulator's PdqModel is this algorithm plus deadlines and
aging; this module exposes the bare textbook version for tests and for the
formal-property checks (distributed PDQ's equilibrium must match it).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

Edge = tuple[str, str]


def centralized_rates(
    flows: Sequence[tuple[int, float, Sequence[Edge], float]],
    capacities: Mapping[Edge, float],
) -> dict[int, float]:
    """Rates for (fid, expected_tx_time, path, max_rate) tuples.

    Flows are served in increasing expected transmission time (ties by
    fid); each takes as much as its path still has, capped at its maximal
    rate.
    """
    residual = dict(capacities)
    rates: dict[int, float] = {}
    ordered = sorted(flows, key=lambda f: (f[1], f[0]))
    for fid, _, path, max_rate in ordered:
        available = min((residual[e] for e in path), default=0.0)
        rate = max(0.0, min(max_rate, available))
        rates[fid] = rate
        for edge in path:
            residual[edge] -= rate
    return rates
