"""Fluid models of the Fig 1 motivating example.

Three concurrent flows on a unit-capacity bottleneck, infinitesimal fluid
transmission: fair sharing finishes them at [3, 5, 6] (mean 4.67); serial
SJF at [1, 3, 6] (mean 3.33); EDF meets every deadline; D3's
first-come-first-reserve meets all three deadlines for exactly one of the
3! arrival orders.
"""

from __future__ import annotations

from collections.abc import Sequence


def fair_sharing_completions(sizes: Sequence[float],
                             capacity: float = 1.0) -> list[float]:
    """Processor-sharing completion times for simultaneous arrivals.

    At any instant every unfinished flow receives capacity/n. Returned in
    input order.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    order = sorted(range(len(sizes)), key=lambda i: (sizes[i], i))
    completions = [0.0] * len(sizes)
    now = 0.0
    done_size = 0.0
    remaining = len(sizes)
    for i in order:
        # time for flow i to finish while sharing with `remaining` flows
        now += (sizes[i] - done_size) * remaining / capacity
        completions[i] = now
        done_size = sizes[i]
        remaining -= 1
    return completions


def serial_completions(sizes: Sequence[float], order: Sequence[int],
                       capacity: float = 1.0) -> list[float]:
    """Run-to-completion one at a time in the given order (SJF/EDF serial
    schedules of Fig 1c). Returned in input order."""
    completions = [0.0] * len(sizes)
    now = 0.0
    for i in order:
        now += sizes[i] / capacity
        completions[i] = now
    return completions


def d3_fluid_schedule(
    flows: Sequence[tuple[float, float]],
    arrival_order: Sequence[int],
    capacity: float = 1.0,
    dt: float = 1e-3,
) -> dict[int, float | None]:
    """Fluid D3 on one bottleneck: greedy arrival-order rate reservation.

    ``flows`` are (size, deadline) pairs, all present from t=0; the
    *request processing* order is ``arrival_order`` (D3 serves requests
    first-come-first-reserve). Each flow continually requests
    remaining/(deadline - now) and receives min(request, what's left);
    leftovers go to earlier-arriving flows up to the capacity.

    Returns completion time per flow index (None if unfinished by 10x the
    max deadline -- flows whose deadline passed keep transmitting, as D3
    without termination, matching Fig 1d).
    """
    remaining = [float(size) for size, _ in flows]
    deadlines = [float(d) for _, d in flows]
    completions: dict[int, float | None] = {i: None for i in range(len(flows))}
    horizon = 10.0 * max(deadlines)
    now = 0.0
    while now < horizon and any(r > 1e-12 for r in remaining):
        # phase 1: reserve s/d in arrival order
        rates = [0.0] * len(flows)
        left = capacity
        for i in arrival_order:
            if remaining[i] <= 1e-12:
                continue
            time_left = deadlines[i] - now
            want = remaining[i] / time_left if time_left > 0 else capacity
            grant = min(want, left)
            rates[i] = grant
            left -= grant
        # phase 2: spare capacity to unfinished flows in arrival order
        if left > 1e-12:
            for i in arrival_order:
                if remaining[i] > 1e-12 and left > 1e-12:
                    rates[i] += left
                    left = 0.0
        for i in range(len(flows)):
            if remaining[i] <= 1e-12:
                continue
            remaining[i] -= rates[i] * dt
            if remaining[i] <= 1e-12:
                completions[i] = now + dt
        now += dt
    return completions


def deadline_misses(completions: dict[int, float | None],
                    deadlines: Sequence[float]) -> int:
    """How many flows missed their deadline (unfinished counts as a miss)."""
    misses = 0
    for i, deadline in enumerate(deadlines):
        done = completions.get(i)
        if done is None or done > deadline + 1e-9:
            misses += 1
    return misses
