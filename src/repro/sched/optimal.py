"""Omniscient optimal bounds for the Fig 3 experiments.

Deadline case: the paper's "optimal" first sorts by EDF, then discards the
minimum number of flows that cannot meet their deadlines (Pinedo, Alg
3.3.1 -- the Moore-Hodgson algorithm). On a single bottleneck with
simultaneous arrivals this maximizes the number of on-time flows.

No-deadline case: SJF order on a single bottleneck minimizes mean
completion time for simultaneous arrivals (SRPT generalizes to staggered
arrivals); completion times are prefix sums of transmission times.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence


def max_ontime_subset(jobs: Sequence[tuple[float, float]]) -> list[int]:
    """Moore-Hodgson: indexes of a maximum on-time subset.

    ``jobs`` are (processing_time, deadline) pairs, all released at time 0
    on one unit-speed machine. Returns indices of kept (on-time) jobs; the
    rest are the discarded tardy jobs.
    """
    order = sorted(range(len(jobs)), key=lambda i: (jobs[i][1], jobs[i][0]))
    kept: list[tuple[float, int]] = []  # max-heap by processing time (neg)
    elapsed = 0.0
    for i in order:
        processing, deadline = jobs[i]
        if processing < 0:
            raise ValueError(f"negative processing time for job {i}")
        heapq.heappush(kept, (-processing, i))
        elapsed += processing
        if elapsed > deadline + 1e-12:
            # drop the longest job scheduled so far
            longest, _ = heapq.heappop(kept)
            elapsed += longest  # longest is negative
    return sorted(i for _, i in kept)


def optimal_application_throughput(
    sizes: Sequence[float], deadlines: Sequence[float], rate_bps: float
) -> float:
    """Fraction of flows an omniscient scheduler completes on time when
    they share one bottleneck of ``rate_bps`` and arrive together."""
    if len(sizes) != len(deadlines):
        raise ValueError("sizes and deadlines must align")
    if not sizes:
        raise ValueError("no flows")
    jobs = [(s * 8.0 / rate_bps, d) for s, d in zip(sizes, deadlines, strict=True)]
    return len(max_ontime_subset(jobs)) / len(sizes)


def sjf_completion_times(sizes: Sequence[float], rate_bps: float) -> list[float]:
    """Completion times under shortest-job-first on one bottleneck,
    simultaneous arrivals; returned in the input order of ``sizes``."""
    order = sorted(range(len(sizes)), key=lambda i: (sizes[i], i))
    completions = [0.0] * len(sizes)
    elapsed = 0.0
    for i in order:
        elapsed += sizes[i] * 8.0 / rate_bps
        completions[i] = elapsed
    return completions


def srpt_mean_fct(
    flows: Sequence[tuple[float, float]], rate_bps: float
) -> float:
    """Mean completion time under preemptive SRPT on one bottleneck.

    ``flows`` are (arrival_time, size_bytes) pairs. SRPT is optimal for
    mean flow completion time on a single link, making this the Fig 3d/3e
    normalization baseline.
    """
    if not flows:
        raise ValueError("no flows")
    pending = sorted(flows)  # by arrival
    remaining: list[tuple[float, float]] = []  # heap of (remaining_time, arrival)
    now = 0.0
    total = 0.0
    i = 0
    n = len(pending)
    while i < n or remaining:
        if not remaining:
            now = max(now, pending[i][0])
        while i < n and pending[i][0] <= now + 1e-15:
            arrival, size = pending[i]
            heapq.heappush(remaining, (size * 8.0 / rate_bps, arrival))
            i += 1
        if not remaining:
            continue
        work, arrival = heapq.heappop(remaining)
        next_arrival = pending[i][0] if i < n else float("inf")
        if now + work <= next_arrival + 1e-15:
            now += work
            total += now - arrival
        else:
            heapq.heappush(remaining, (work - (next_arrival - now), arrival))
            now = next_arrival
    return total / n
