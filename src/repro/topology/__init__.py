"""Data-center topologies used in the paper's evaluation.

* :class:`SingleBottleneck` -- Fig 2b, N senders through one switch.
* :class:`SingleRootedTree` -- Fig 2a, the default 17-node two-level tree.
* :class:`FatTree` -- §5.5, 2-stage Clos [Al-Fares et al.].
* :class:`BCube` -- §5.5/§6, server-centric modular network.
* :class:`Jellyfish` -- §5.5, random regular graph of switches.
"""

from repro.topology.base import Topology
from repro.topology.bcube import BCube
from repro.topology.fattree import FatTree
from repro.topology.jellyfish import Jellyfish
from repro.topology.single_bottleneck import SingleBottleneck
from repro.topology.single_rooted import SingleRootedTree

__all__ = [
    "Topology",
    "SingleBottleneck",
    "SingleRootedTree",
    "FatTree",
    "BCube",
    "Jellyfish",
]
