"""Topology base class.

A topology is an undirected networkx graph whose nodes carry a ``kind``
attribute (``"host"`` or ``"switch"``) and whose edges carry ``rate_bps``.
The packet-level :class:`~repro.net.network.Network` instantiates one
:class:`~repro.net.link.Link` per direction per edge; the flow-level
simulator consumes the same graph directly.
"""

from __future__ import annotations


import networkx as nx

from repro.errors import TopologyError
from repro.units import GBPS


class Topology:
    """Base topology; subclasses populate :attr:`graph` in ``_build``."""

    def __init__(self, default_rate_bps: float = 1 * GBPS):
        self.default_rate_bps = default_rate_bps
        self.graph = nx.Graph()
        self._edge_index: dict[tuple[str, str], int] | None = None

    # -- construction helpers (used by subclasses) ------------------------------

    def add_host(self, name: str) -> str:
        self.graph.add_node(name, kind="host")
        return name

    def add_switch(self, name: str) -> str:
        self.graph.add_node(name, kind="switch")
        return name

    def add_link(self, a: str, b: str, rate_bps: float | None = None) -> None:
        if a not in self.graph or b not in self.graph:
            raise TopologyError(f"link endpoints must exist: {a}, {b}")
        self.graph.add_edge(a, b, rate_bps=rate_bps or self.default_rate_bps)
        self._edge_index = None  # ids are assigned over the final edge set

    # -- accessors ----------------------------------------------------------------

    @property
    def hosts(self) -> list[str]:
        return sorted(
            n for n, d in self.graph.nodes(data=True) if d["kind"] == "host"
        )

    @property
    def switches(self) -> list[str]:
        return sorted(
            n for n, d in self.graph.nodes(data=True) if d["kind"] == "switch"
        )

    def edge_rate(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["rate_bps"]

    def directed_edge_index(self) -> dict[tuple[str, str], int]:
        """Dense integer id for every *directed* edge.

        Contract (relied on by :class:`~repro.flowsim.paths.GraphRouter`
        and the flow-level engine's flat capacity vectors):

        * ids are dense in ``[0, 2 * |E|)``;
        * undirected edges are visited in ``sorted(graph.edges())`` order;
          the edge's stored orientation ``(a, b)`` gets the even id ``2k``
          and the reverse ``(b, a)`` gets ``2k + 1`` — exactly the link-id
          assignment the packet-level :class:`~repro.net.network.Network`
          uses, so edge ids and Link ids coincide;
        * the mapping is deterministic for a given topology and cached;
          :meth:`add_link` invalidates the cache, so ids are only stable
          once the topology stops being mutated.
        """
        if self._edge_index is None:
            index: dict[tuple[str, str], int] = {}
            eid = 0
            for a, b in sorted(self.graph.edges()):
                index[(a, b)] = eid
                index[(b, a)] = eid + 1
                eid += 2
            self._edge_index = index
        return self._edge_index

    def degree_of(self, name: str) -> int:
        return self.graph.degree[name]

    def validate(self) -> None:
        """Sanity checks shared by all topologies."""
        if not self.hosts:
            raise TopologyError("topology has no hosts")
        if not nx.is_connected(self.graph):
            raise TopologyError("topology is not connected")
        for _, _, data in self.graph.edges(data=True):
            if data["rate_bps"] <= 0:
                raise TopologyError("non-positive link rate")

    def stats(self) -> dict[str, int]:
        return {
            "hosts": len(self.hosts),
            "switches": len(self.switches),
            "links": self.graph.number_of_edges(),
        }

    def host_pairs(self) -> list[tuple[str, str]]:
        """All ordered host pairs (diagnostic helper)."""
        hosts = self.hosts
        return [(a, b) for a in hosts for b in hosts if a != b]
