"""BCube(n, k) (Guo et al., SIGCOMM 2009), used in §5.5 and §6.

Servers have k+1 network interfaces. A server's address is the base-``n``
digit string (a_k, ..., a_0); at level ``l`` it connects to the level-l
switch whose identity is the address with digit ``l`` removed. BCube(2, 3)
-- the M-PDQ evaluation topology -- has 16 servers with 4 NICs each and
4 levels of 8 two-port switches.

The multiple NICs give k+1 parallel (link-disjoint at the server) paths,
which is what M-PDQ's subflow striping exploits.
"""

from __future__ import annotations


from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class BCube(Topology):
    """BCube_k built from n-port switches: n^(k+1) servers."""

    def __init__(self, n: int = 2, k: int = 3, rate_bps: float = 1 * GBPS):
        if n < 2:
            raise TopologyError(f"switch port count n must be >= 2, got {n}")
        if k < 0:
            raise TopologyError(f"level k must be >= 0, got {k}")
        super().__init__(default_rate_bps=rate_bps)
        self.n = n
        self.k = k
        self._build()
        self.validate()

    # -- addressing ---------------------------------------------------------------

    def address(self, server_index: int) -> tuple[int, ...]:
        """Base-n digits (a_k, ..., a_0) of a server index."""
        digits = []
        x = server_index
        for _ in range(self.k + 1):
            digits.append(x % self.n)
            x //= self.n
        return tuple(reversed(digits))

    def _switch_name(self, level: int, addr: tuple[int, ...]) -> str:
        """Level-l switch connecting servers whose addresses differ only in
        digit l; ``addr`` is the server address with digit l dropped."""
        return f"sw{level}_" + "".join(str(d) for d in addr)

    # -- construction ----------------------------------------------------------------

    def _build(self) -> None:
        n_servers = self.n ** (self.k + 1)
        for s in range(n_servers):
            self.add_host(f"h{s}")
        for level in range(self.k + 1):
            # digit positions in (a_k..a_0): digit 'level' is dropped
            for s in range(n_servers):
                addr = self.address(s)
                reduced = addr[: self.k - level] + addr[self.k - level + 1:]
                name = self._switch_name(level, reduced)
                if name not in self.graph:
                    self.add_switch(name)
                self.add_link(f"h{s}", name)

    # -- accessors -------------------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return self.n ** (self.k + 1)

    @property
    def n_switches_per_level(self) -> int:
        return self.n ** self.k

    @property
    def nics_per_server(self) -> int:
        return self.k + 1

    def parallel_paths(self, src_index: int, dst_index: int) -> list[int]:
        """Levels at which src and dst addresses differ (each differing digit
        yields an independent one-switch path when only one digit differs)."""
        a, b = self.address(src_index), self.address(dst_index)
        return [self.k - i for i, (x, y) in enumerate(zip(a, b, strict=True)) if x != y]

    def disjoint_paths(self, src: str, dst: str) -> list[list[str]]:
        """BCube address-based routing (Guo et al.; used by M-PDQ, §6).

        One path per differing digit: path ``r`` corrects the differing
        digit levels starting from rotation ``r``, hopping through the
        level-l switch at each correction. The resulting paths are
        node-disjoint apart from the endpoints (the classic BCube
        parallel-path construction).

        Returns node-name sequences including intermediate switches and
        relay servers, src first, dst last.
        """
        src_index, dst_index = int(src[1:]), int(dst[1:])
        src_addr = list(self.address(src_index))
        dst_addr = list(self.address(dst_index))
        levels = [
            self.k - i
            for i in range(self.k + 1)
            if src_addr[i] != dst_addr[i]
        ]
        if not levels:
            raise TopologyError(f"{src} and {dst} are the same server")
        paths: list[list[str]] = []
        for rotation in range(len(levels)):
            order = levels[rotation:] + levels[:rotation]
            here = list(src_addr)
            path = [src]
            for level in order:
                digit_pos = self.k - level
                nxt = list(here)
                nxt[digit_pos] = dst_addr[digit_pos]
                reduced = tuple(nxt[:digit_pos] + nxt[digit_pos + 1:])
                path.append(self._switch_name(level, reduced))
                here = nxt
                index = 0
                for d in here:
                    index = index * self.n + d
                path.append(f"h{index}")
            paths.append(path)
        return paths
