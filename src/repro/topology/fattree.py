"""k-ary fat-tree (Al-Fares et al., SIGCOMM 2008), used in §5.5.

For even ``k``: k pods, each with k/2 edge and k/2 aggregation switches;
(k/2)^2 core switches; k/2 hosts per edge switch; k^3/4 hosts total.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class FatTree(Topology):
    """Standard k-ary fat-tree. ``k`` must be even and >= 2."""

    def __init__(self, k: int = 4, rate_bps: float = 1 * GBPS):
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
        super().__init__(default_rate_bps=rate_bps)
        self.k = k
        self._build()
        self.validate()

    def _build(self) -> None:
        k = self.k
        half = k // 2
        # core switches, indexed (i, j) on a half x half grid
        cores = [
            [self.add_switch(f"core{i}_{j}") for j in range(half)]
            for i in range(half)
        ]
        host_index = 0
        for pod in range(k):
            aggs = [self.add_switch(f"agg{pod}_{a}") for a in range(half)]
            edges = [self.add_switch(f"edge{pod}_{e}") for e in range(half)]
            for a, agg in enumerate(aggs):
                # agg switch a in each pod connects to core row a
                for j in range(half):
                    self.add_link(agg, cores[a][j])
                for edge in edges:
                    self.add_link(agg, edge)
            for edge in edges:
                for _ in range(half):
                    host = self.add_host(f"h{host_index}")
                    host_index += 1
                    self.add_link(edge, host)

    @property
    def n_servers(self) -> int:
        return self.k ** 3 // 4

    @classmethod
    def for_servers(cls, n_servers: int, rate_bps: float = 1 * GBPS) -> "FatTree":
        """Smallest fat-tree with at least ``n_servers`` hosts."""
        k = 2
        while k ** 3 // 4 < n_servers:
            k += 2
        return cls(k=k, rate_bps=rate_bps)
