"""Jellyfish (Singla et al., NSDI 2012), used in §5.5.

Switches form a random r-regular graph; the remaining ports attach hosts.
The paper uses 24-port switches with a 2:1 ratio of network ports to server
ports, i.e. r = 16 network ports and 8 hosts per switch.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class Jellyfish(Topology):
    """Random regular switch fabric with hosts hanging off each switch."""

    def __init__(
        self,
        n_switches: int,
        switch_ports: int = 24,
        network_ports: int | None = None,
        rate_bps: float = 1 * GBPS,
        seed: int = 1,
    ):
        if n_switches < 3:
            raise TopologyError(f"need >= 3 switches, got {n_switches}")
        super().__init__(default_rate_bps=rate_bps)
        self.n_switches = n_switches
        self.switch_ports = switch_ports
        # default: 2:1 network-to-server port ratio (paper §5.5)
        self.network_ports = (
            network_ports
            if network_ports is not None
            else (2 * switch_ports) // 3
        )
        if not 0 < self.network_ports < switch_ports:
            raise TopologyError(
                f"network ports {self.network_ports} must be in "
                f"(0, {switch_ports})"
            )
        if self.network_ports >= n_switches:
            # a random regular graph needs degree < node count
            self.network_ports = n_switches - 1 - ((n_switches - 1) % 2 == 1
                                                   and (self.network_ports % 2 == 0))
            self.network_ports = min(self.network_ports, n_switches - 1)
        self.hosts_per_switch = switch_ports - self.network_ports
        self.seed = seed
        self._build()
        self.validate()

    def _build(self) -> None:
        degree = self.network_ports
        if degree * self.n_switches % 2 == 1:
            degree -= 1  # regular graph needs even degree * node-count
        random_graph = None
        for attempt in range(16):
            candidate = nx.random_regular_graph(
                degree, self.n_switches, seed=self.seed + attempt
            )
            if nx.is_connected(candidate):
                random_graph = candidate
                break
        if random_graph is None:
            raise TopologyError(
                f"could not build a connected {degree}-regular graph on "
                f"{self.n_switches} switches"
            )
        for s in range(self.n_switches):
            self.add_switch(f"sw{s}")
        for a, b in random_graph.edges():
            self.add_link(f"sw{a}", f"sw{b}")
        host_index = 0
        for s in range(self.n_switches):
            for _ in range(self.hosts_per_switch):
                host = self.add_host(f"h{host_index}")
                host_index += 1
                self.add_link(host, f"sw{s}")

    @property
    def n_servers(self) -> int:
        return self.n_switches * self.hosts_per_switch

    @classmethod
    def for_servers(
        cls,
        n_servers: int,
        switch_ports: int = 24,
        rate_bps: float = 1 * GBPS,
        seed: int = 1,
    ) -> "Jellyfish":
        """Smallest jellyfish (with the default port split) holding at least
        ``n_servers`` hosts."""
        hosts_per_switch = switch_ports - (2 * switch_ports) // 3
        n_switches = max(3, -(-n_servers // hosts_per_switch))
        return cls(
            n_switches=n_switches,
            switch_ports=switch_ports,
            rate_bps=rate_bps,
            seed=seed,
        )
