"""Seeded random switch graphs for failure sweeps.

Unlike the hand-built paper topologies (single-rooted tree, fat-tree,
BCube) a failure study wants networks that were not designed around the
workload: a G(n, m) random switch fabric with a target mean degree,
hosts spread round-robin across switches. Connectivity is retried over
derived seeds exactly like :class:`~repro.topology.jellyfish.Jellyfish`,
so construction is deterministic per (parameters, seed) — both engines
and every worker process build the identical graph.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class RandomGraph(Topology):
    """G(n, m) random switch fabric with hosts on every switch.

    ``mean_degree`` fixes the switch-to-switch edge count at
    ``round(mean_degree * n_switches / 2)`` (floored at ``n_switches - 1``,
    the connectivity minimum); ``hosts_per_switch`` hosts hang off each
    switch. Node names are ``sw{i}`` and ``h{j}``.
    """

    def __init__(
        self,
        n_switches: int,
        mean_degree: float = 3.0,
        hosts_per_switch: int = 2,
        rate_bps: float = 1 * GBPS,
        seed: int = 1,
    ):
        if n_switches < 2:
            raise TopologyError(f"need >= 2 switches, got {n_switches}")
        if mean_degree <= 0:
            raise TopologyError(
                f"mean degree must be positive, got {mean_degree}"
            )
        if hosts_per_switch < 1:
            raise TopologyError(
                f"need >= 1 host per switch, got {hosts_per_switch}"
            )
        super().__init__(default_rate_bps=rate_bps)
        self.n_switches = n_switches
        self.mean_degree = mean_degree
        self.hosts_per_switch = hosts_per_switch
        self.seed = seed
        self._build()
        self.validate()

    def _build(self) -> None:
        n = self.n_switches
        n_edges = max(n - 1, round(self.mean_degree * n / 2))
        n_edges = min(n_edges, n * (n - 1) // 2)
        fabric = None
        for attempt in range(16):
            candidate = nx.gnm_random_graph(n, n_edges,
                                            seed=self.seed + attempt)
            if nx.is_connected(candidate):
                fabric = candidate
                break
        if fabric is None:
            raise TopologyError(
                f"could not build a connected random graph with "
                f"{n} switches and {n_edges} edges (mean degree "
                f"{self.mean_degree}); raise mean_degree"
            )
        for s in range(n):
            self.add_switch(f"sw{s}")
        for a, b in sorted(fabric.edges()):
            self.add_link(f"sw{a}", f"sw{b}")
        host_index = 0
        for s in range(n):
            for _ in range(self.hosts_per_switch):
                host = self.add_host(f"h{host_index}")
                host_index += 1
                self.add_link(host, f"sw{s}")

    @property
    def n_servers(self) -> int:
        return self.n_switches * self.hosts_per_switch
