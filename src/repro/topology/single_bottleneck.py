"""Single-bottleneck topology (paper Fig 2b).

N sending servers connect through one switch to a single receiving server;
the switch->receiver link is the bottleneck that all flows share.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class SingleBottleneck(Topology):
    """``n_senders`` hosts -> 1 switch -> 1 receiver host."""

    def __init__(self, n_senders: int, rate_bps: float = 1 * GBPS):
        if n_senders < 1:
            raise TopologyError(f"need at least one sender, got {n_senders}")
        super().__init__(default_rate_bps=rate_bps)
        self.n_senders = n_senders
        self._build()
        self.validate()

    def _build(self) -> None:
        switch = self.add_switch("sw0")
        receiver = self.add_host("recv")
        self.add_link(switch, receiver)
        for i in range(self.n_senders):
            sender = self.add_host(f"send{i}")
            self.add_link(sender, switch)

    @property
    def receiver(self) -> str:
        return "recv"

    @property
    def senders(self) -> list[str]:
        return [f"send{i}" for i in range(self.n_senders)]

    @property
    def bottleneck(self) -> tuple[str, str]:
        """The (switch, receiver) edge every flow crosses."""
        return ("sw0", "recv")
