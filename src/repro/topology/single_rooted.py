"""Two-level single-rooted tree (paper Fig 2a).

The paper's default topology: 12 servers under 4 top-of-rack switches
(3 servers each), all ToRs connected to a single root switch; every link
1 Gbps. 17 nodes total.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.units import GBPS


class SingleRootedTree(Topology):
    """``n_tors`` racks of ``servers_per_tor`` servers under one root."""

    def __init__(
        self,
        n_tors: int = 4,
        servers_per_tor: int = 3,
        rate_bps: float = 1 * GBPS,
    ):
        if n_tors < 1 or servers_per_tor < 1:
            raise TopologyError("need at least one ToR and one server per ToR")
        super().__init__(default_rate_bps=rate_bps)
        self.n_tors = n_tors
        self.servers_per_tor = servers_per_tor
        self._build()
        self.validate()

    def _build(self) -> None:
        root = self.add_switch("root")
        for t in range(self.n_tors):
            tor = self.add_switch(f"tor{t}")
            self.add_link(root, tor)
            for s in range(self.servers_per_tor):
                host = self.add_host(f"h{t * self.servers_per_tor + s}")
                self.add_link(tor, host)

    @property
    def n_servers(self) -> int:
        return self.n_tors * self.servers_per_tor

    def rack_of(self, host: str) -> int:
        """Rack index of a host name like ``h7``."""
        index = int(host[1:])
        if not 0 <= index < self.n_servers:
            raise TopologyError(f"unknown host {host}")
        return index // self.servers_per_tor

    def same_rack(self, a: str, b: str) -> bool:
        return self.rack_of(a) == self.rack_of(b)
