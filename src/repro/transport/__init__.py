"""Transport endpoints: shared machinery plus the paper's baselines.

* :mod:`repro.transport.base` -- protocol-stack interface, paced
  explicit-rate sender with selective per-packet acknowledgment and
  timeout retransmission, generic receiver.
* :mod:`repro.transport.tcp` -- TCP Reno with a small RTOmin (§5.1).
* :mod:`repro.transport.rcp` -- RCP with exact flow counting (§5.1).
* :mod:`repro.transport.d3` -- D3 with the non-negative fair-share fix (§5.1).
"""

from repro.transport.base import ProtocolStack
from repro.transport.d3 import D3Stack
from repro.transport.rcp import RcpStack
from repro.transport.tcp import TcpStack

__all__ = ["ProtocolStack", "TcpStack", "RcpStack", "D3Stack"]
