"""Shared transport machinery.

PDQ, RCP and D3 are all *explicit-rate* transports: switches tell senders how
fast to send, senders pace packets at that rate, receivers acknowledge each
data packet, and a timeout recovers losses. :class:`RateBasedSender` and
:class:`AckingReceiver` implement everything common; each protocol subclasses
and provides the scheduling-header handling.

TCP (window-based) has its own sender in :mod:`repro.transport.tcp`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.events.timers import Timer
from repro.net.packet import Packet, PacketKind
from repro.units import tx_time
from repro.utils.ewma import RttEstimator

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.records import FlowRecord
    from repro.net.network import Network
    from repro.workload.flow import FlowSpec


class ProtocolStack(abc.ABC):
    """Factory bundle describing one transport protocol.

    ``header_bytes`` is the per-packet wire overhead (TCP/IP plus any
    scheduling header); ``mtu`` caps the wire size of a data packet, so the
    payload per packet is ``mtu - header_bytes``.
    """

    name: str = "base"
    header_bytes: int = 40
    ack_bytes: int = 40
    mtu: int = 1500

    @property
    def payload_bytes(self) -> int:
        return self.mtu - self.header_bytes

    def make_switch_protocol(self, network: "Network", switch) -> object | None:
        """Per-switch protocol instance, or None for dumb switches."""
        return None

    @abc.abstractmethod
    def make_endpoints(self, network: "Network", spec: "FlowSpec",
                       record: "FlowRecord", fwd_path, rev_path):
        """Return (sender, receiver) endpoints for one flow."""


class EndpointBase:
    """State common to both halves of a flow."""

    def __init__(self, network: "Network", stack: ProtocolStack,
                 spec: "FlowSpec", record: "FlowRecord", path):
        self.net = network
        self.sim = network.sim
        self.pool = network.pool
        self.stack = stack
        self.spec = spec
        self.record = record
        self.path = path
        self.closed = False

    def _packet(self, kind: PacketKind, **kwargs) -> Packet:
        raise NotImplementedError


class RateBasedSender(EndpointBase):
    """Paced sender with SYN handshake, selective per-packet ACKs, RTO
    retransmission and a TERM/TERM-ACK close.

    Subclass hooks:

    * :meth:`make_sched_header` -- scheduling header for outgoing packets.
    * :meth:`process_feedback` -- absorb the header returned in any
      reverse-path packet (sets ``self.rate`` and protocol state).
    * :meth:`on_rate_change` -- react after feedback (e.g. start probing).
    * :meth:`check_early_termination` -- PDQ's §3.1 heuristic.
    """

    #: how many RTOs of silence close a flow that lost its TERM-ACK
    CLOSE_TIMEOUT_RTOS = 4.0

    def __init__(self, network, stack, spec, record, fwd_path, host):
        super().__init__(network, stack, spec, record, fwd_path)
        self.host = host
        self.dst_id = network.node(spec.dst).id
        self.nic_rate = fwd_path[0].rate_bps
        self.max_rate = min(self.nic_rate, network.receiver_rate_limit(spec.dst))
        self.rate: float = 0.0

        self.payload = stack.payload_bytes
        self.size = spec.size_bytes
        self.next_offset = 0
        self.unacked: dict[int, float] = {}  # offset -> last send time
        self.resend: list[int] = []
        self._resend_set: set[int] = set()
        self.bytes_acked = 0

        initial_rtt = network.estimate_rtt(fwd_path)
        self.rtt = RttEstimator(
            rto_min=network.config.rto_min, initial_rtt=initial_rtt
        )
        self.handshake_done = False
        self.term_sent = False

        self._send_timer = Timer(self.sim, self._emit)
        self._rto_timer = Timer(self.sim, self._on_rto)
        self._close_timer = Timer(self.sim, self._close)
        self._last_emit = -float("inf")
        self._backoff = 1.0
        # hole-driven fast retransmit: per-packet selective ACKs let the
        # sender spot a missing offset after a few later ACKs instead of
        # waiting a full RTO (PDQ's loss resilience, Fig 9, leans on this)
        self._dup_hints: dict[int, int] = {}
        self.dupack_threshold = 3

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        self.record.start_time = self.sim.now
        self._send_control(PacketKind.SYN)
        self._rto_timer.start(self.rtt.rto())

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._send_timer.cancel()
        self._rto_timer.cancel()
        self._close_timer.cancel()
        self.host.unregister_sender(self.spec.fid)
        self.on_close()

    def on_close(self) -> None:
        """Subclass hook (e.g. M-PDQ coordinator notification)."""

    def terminate(self, reason: str) -> None:
        """Early termination: give up on the flow and tell the network."""
        if self.closed or self.term_sent:
            return
        self.net.metrics.on_terminated(self.spec.fid, self.sim.now, reason)
        self._halt_transmission()
        self._send_control(PacketKind.TERM)
        self.term_sent = True
        self._close_timer.start(self.CLOSE_TIMEOUT_RTOS * self.rtt.rto())

    def _halt_transmission(self) -> None:
        """Stop emitting data permanently (a sender must never transmit
        after its TERM -- it would re-create switch state the TERM just
        cleaned up and wedge the link until entry expiry)."""
        self._send_timer.cancel()
        self._rto_timer.cancel()
        self.resend.clear()
        self._resend_set.clear()
        self.rate = 0.0

    # -- subclass hooks ---------------------------------------------------------------

    def make_sched_header(self, kind: PacketKind):
        return None

    def process_feedback(self, packet: Packet) -> None:
        """Default: adopt the rate field if the header has one."""

    def on_rate_change(self) -> None:
        pass

    def check_early_termination(self) -> bool:
        return False

    # -- sending -----------------------------------------------------------------------

    @property
    def remaining_payload(self) -> int:
        return self.size - self.bytes_acked

    @property
    def wire_remaining(self) -> float:
        """Remaining bytes including per-packet header overhead."""
        packets_left = -(-self.remaining_payload // self.payload)
        return self.remaining_payload + packets_left * self.stack.header_bytes

    def expected_tx_time(self) -> float:
        """T_S: remaining transmission time at the maximal rate (§3.1)."""
        if self.max_rate <= 0:
            raise ProtocolError("sender has no usable rate")
        return self.wire_remaining * 8.0 / self.max_rate

    def _send_control(self, kind: PacketKind) -> None:
        packet = self.pool.acquire(
            self.spec.fid,
            self.host.id,
            self.dst_id,
            kind,
            self.stack.header_bytes,
            sched=self.make_sched_header(kind),
            echo_time=self.sim.now,
            path=self.path,
        )
        self.host.send(packet)

    def set_rate(self, rate: float) -> None:
        self.rate = max(0.0, rate)
        tracer = self.net.metrics.tracer
        if tracer is not None:
            tracer.on_rate(self.spec.fid, self.sim.now, self.rate)
        if self.rate > 0:
            self._schedule_send()
        else:
            self._send_timer.cancel()
        self.on_rate_change()

    def _pending_data(self) -> bool:
        return bool(self.resend) or self.next_offset < self.size

    def _schedule_send(self) -> None:
        if self.closed or self.term_sent or not self.handshake_done:
            return
        if self.rate <= 0:
            return
        if not self._pending_data():
            return
        if self._send_timer.armed:
            return
        gap = tx_time(self.stack.mtu, self.rate)
        at = max(self.sim.now, self._last_emit + gap)
        self._send_timer.start(at - self.sim.now)

    def _next_offset_to_send(self) -> int | None:
        while self.resend:
            offset = self.resend.pop(0)
            self._resend_set.discard(offset)
            if offset in self.unacked:  # still outstanding
                return offset
        if self.next_offset < self.size:
            offset = self.next_offset
            self.next_offset = min(self.size, offset + self.payload)
            return offset
        return None

    # repro: hot
    def _emit(self) -> None:
        if self.closed or self.term_sent or self.rate <= 0:
            return
        offset = self._next_offset_to_send()
        if offset is None:
            return
        chunk = min(self.payload, self.size - offset)
        was_retransmit = offset in self.unacked
        if was_retransmit:
            self.net.metrics.on_retransmit(self.spec.fid)
        packet = self.pool.acquire(
            self.spec.fid,
            self.host.id,
            self.dst_id,
            PacketKind.DATA,
            chunk + self.stack.header_bytes,
            seq=offset,
            payload=chunk,
            sched=self.make_sched_header(PacketKind.DATA),
            echo_time=self.sim.now,
            path=self.path,
        )
        self.unacked[offset] = self.sim.now
        self._last_emit = self.sim.now
        self.host.send(packet)
        if not self._rto_timer.armed:
            self._rto_timer.start(self.rtt.rto() * self._backoff)
        self._schedule_send()

    # -- receiving feedback -----------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if self.closed:
            return
        if packet.kind == PacketKind.SYN_ACK:
            self._on_syn_ack(packet)
        elif packet.kind == PacketKind.ACK:
            self._on_ack(packet)
        elif packet.kind == PacketKind.TERM_ACK:
            self._close()

    def _on_syn_ack(self, packet: Packet) -> None:
        if packet.echo_time >= 0:
            self.rtt.update(self.sim.now - packet.echo_time)
        first_handshake = not self.handshake_done
        self.handshake_done = True
        self.process_feedback(packet)
        if first_handshake:
            self._backoff = 1.0
            # start() replaces the armed expiry in place (lazy push-back:
            # no cancel/re-push churn on the heap)
            if self.unacked:
                self._rto_timer.start(self.rtt.rto())
            else:
                self._rto_timer.cancel()
        if self.check_early_termination():
            return
        self._schedule_send()

    def _on_ack(self, packet: Packet) -> None:
        if packet.echo_time >= 0:
            self.rtt.update(self.sim.now - packet.echo_time)
            self._backoff = 1.0
        if packet.ack_range is not None:
            start, end = packet.ack_range
            if start in self.unacked:
                del self.unacked[start]
                self.bytes_acked += end - start
            self._dup_hints.pop(start, None)
            self._detect_hole(start)
        self.process_feedback(packet)
        if self.check_early_termination():
            return
        if self.bytes_acked >= self.size and not self.term_sent:
            self._finish()
            return
        self._schedule_send()

    def _finish(self) -> None:
        """All data acknowledged: send TERM (the flow's last packet)."""
        self._halt_transmission()
        self.term_sent = True
        self._send_control(PacketKind.TERM)
        self._close_timer.start(self.CLOSE_TIMEOUT_RTOS * self.rtt.rto())

    # -- loss recovery ---------------------------------------------------------------------

    def _detect_hole(self, acked_offset: int) -> None:
        """If ACKs keep arriving for offsets above the oldest outstanding
        packet, that packet is a hole: retransmit without waiting for the
        RTO."""
        if not self.unacked:
            return
        oldest = min(self.unacked)
        if acked_offset <= oldest:
            return
        hints = self._dup_hints.get(oldest, 0) + 1
        if hints >= self.dupack_threshold:
            self._dup_hints.pop(oldest, None)
            if oldest not in self._resend_set:
                self.resend.insert(0, oldest)
                self._resend_set.add(oldest)
                self._schedule_send()
        else:
            self._dup_hints[oldest] = hints

    def _on_rto(self) -> None:
        if self.closed:
            return
        if not self.handshake_done:
            self._send_control(PacketKind.SYN)  # SYN lost; try again
            self._backoff = min(self._backoff * 2, 64.0)
            self._rto_timer.start(self.rtt.rto() * self._backoff)
            return
        now = self.sim.now
        timeout = self.rtt.rto() * self._backoff
        expired = [
            offset
            for offset, sent in self.unacked.items()
            if now - sent >= timeout and offset not in self._resend_set
        ]
        for offset in sorted(expired):
            self.resend.append(offset)
            self._resend_set.add(offset)
        if expired:
            self._backoff = min(self._backoff * 2, 64.0)
        if self.unacked or self._pending_data():
            self._rto_timer.start(self.rtt.rto() * self._backoff)
            self._schedule_send()


class AckingReceiver(EndpointBase):
    """Receiver that acknowledges every packet and tracks payload delivery.

    Subclass hook :meth:`make_ack_header` transforms the scheduling header on
    its way back (PDQ receivers copy it, clamping the rate to what the
    receiver can handle, §3.2).
    """

    def __init__(self, network, stack, spec, record, rev_path, host):
        super().__init__(network, stack, spec, record, rev_path)
        self.host = host
        self.src_id = network.node(spec.src).id
        self.received: set[int] = set()
        self.bytes_received = 0
        self.complete = False

    # -- subclass hooks ----------------------------------------------------------

    def make_ack_header(self, packet: Packet):
        """Default: echo the scheduling header object back unchanged."""
        return packet.sched

    # -- packet handling ------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if packet.kind == PacketKind.SYN:
            self._reply(packet, PacketKind.SYN_ACK)
        elif packet.kind == PacketKind.DATA:
            self._on_data(packet)
        elif packet.kind == PacketKind.PROBE:
            self._reply(packet, PacketKind.ACK)
        elif packet.kind == PacketKind.TERM:
            self._reply(packet, PacketKind.TERM_ACK)
            self.host.unregister_receiver(self.spec.fid)
            self.closed = True

    # repro: hot
    def _on_data(self, packet: Packet) -> None:
        if packet.seq not in self.received:
            self.received.add(packet.seq)
            self.bytes_received += packet.payload
            self.net.metrics.on_bytes(self.spec.fid, packet.payload)
            if not self.complete and self.bytes_received >= self.spec.size_bytes:
                self.complete = True
                self.net.metrics.on_complete(self.spec.fid, self.sim.now)
                self.on_complete()
        self._reply(
            packet,
            PacketKind.ACK,
            ack_range=(packet.seq, packet.seq + packet.payload),
        )

    def on_complete(self) -> None:
        """Subclass hook (e.g. M-PDQ resequencing notification)."""

    # repro: hot
    def _reply(self, packet: Packet, kind: PacketKind, ack_range=None) -> None:
        sched = self.make_ack_header(packet)
        if sched is not None and sched is packet.sched:
            # the header object moves onto the ACK; detach it from the
            # inbound packet so its release can't free the header twice
            packet.sched = None
        ack = self.pool.acquire(
            self.spec.fid,
            self.host.id,
            self.src_id,
            kind,
            self.stack.ack_bytes,
            sched=sched,
            ack_range=ack_range,
            echo_time=packet.echo_time,
            path=self.path,
        )
        self.host.send(ack)
