"""D3 baseline (Wilson et al., SIGCOMM 2011), re-implemented per §5.1.

D3 is a deadline-aware, *first-come-first-reserve* explicit-rate protocol:

* Once per RTT each sender asks for its desired rate ``d = s / t`` (remaining
  size over time to deadline; 0 for no-deadline flows).
* Each router satisfies the requests greedily in flow-arrival order and
  adds the fair share ``fs`` of what remains; non-deadline flows receive
  ``fs`` alone. We compute the allocation as a per-interval table in
  first-seen order, which realizes the paper's "first-come first-reserve"
  semantics deterministically (the original counter-based router
  approximates the same thing; see DESIGN.md).
* ``fs`` follows the RCP-style rate-adaptation law with the paper's
  suggested parameters alpha = 0.1, beta = 1:

      fs <- fs + (alpha*(C - y) - beta*q/T) / N

  where y is measured arrival traffic and q the instantaneous queue. This
  implementation adds the non-negativity constraint on fs that the PDQ
  authors found necessary ("we add a constraint to enforce the fair share
  bandwidth fs to always be non-negative, which improves D3's
  performance").
* Quenching: senders terminate flows whose deadline already passed.

The pathology PDQ's Fig 1 illustrates -- early-arriving far-deadline flows
holding reservations against later urgent flows -- emerges directly from
the arrival-order allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.events.timers import Timer
from repro.net.headers import D3Header
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.transport.base import AckingReceiver, ProtocolStack, RateBasedSender
from repro.transport.rcp import floor_rate
from repro.units import BITS_PER_BYTE, USEC
from repro.utils.ewma import Ewma

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

ALPHA = 0.1
BETA = 1.0
FLOW_EXPIRY_RTTS = 50.0
DEFAULT_RTT = 150 * USEC


class D3LinkState:
    """Per-egress-link D3 state: demands, fair share, allocation table."""

    def __init__(self, protocol: "D3SwitchProtocol", link: Link):
        self.protocol = protocol
        self.link = link
        # fid -> (first_seen, last_seen, desired_rate)
        self.flows: dict[int, tuple[float, float, float]] = {}
        self.grants: dict[int, float] = {}
        self.rtt_avg = Ewma(alpha=0.1, default=DEFAULT_RTT)
        self.fair_share = link.rate_bps / 8.0
        self._last_bytes = 0.0
        self._last_update = protocol.sim.now
        self._timer = Timer(protocol.sim, self._update)

    # -- forward path -------------------------------------------------------------

    def observe(self, packet: Packet, now: float) -> None:
        header: D3Header | None = packet.sched
        if packet.kind == PacketKind.TERM:
            self.flows.pop(packet.fid, None)
            self.grants.pop(packet.fid, None)
            if not self.flows:
                self._timer.cancel()
            return
        state = self.flows.get(packet.fid)
        first_seen = state[0] if state else now
        desired = state[2] if state else 0.0
        if header is not None:
            if header.rtt > 0:
                self.rtt_avg.update(header.rtt)
            desired = header.desired
        self.flows[packet.fid] = (first_seen, now, desired)
        if not self._timer.armed:
            self._last_bytes = (self.link.bytes_sent
                                + self.link.queue.dropped_bytes)
            self._last_update = now
            self._allocate()
            self._timer.start(self.rtt_avg.value_or(DEFAULT_RTT))
        if header is not None:
            rtt = self.rtt_avg.value_or(DEFAULT_RTT)
            grant = self.grants.get(packet.fid)
            if grant is None:
                # not allocated yet this interval: hand out the fair share
                grant = max(self.fair_share, floor_rate(rtt))
            header.allocated = min(header.allocated, grant)

    # -- rate adaptation and allocation ------------------------------------------------

    def _allocate(self) -> None:
        """First-come-first-reserve: grant desired rates in flow-arrival
        order, then add the fair share on top for everyone."""
        rtt = self.rtt_avg.value_or(DEFAULT_RTT)
        floor = floor_rate(rtt)
        remaining = self.link.rate_bps
        grants: dict[int, float] = {}
        ordered = sorted(self.flows.items(), key=lambda kv: (kv[1][0], kv[0]))
        for fid, (_, _, desired) in ordered:
            reserved = min(desired, max(0.0, remaining))
            grants[fid] = reserved
            remaining -= reserved
        for fid in grants:
            share = min(self.fair_share, max(0.0, remaining))
            grants[fid] = max(grants[fid] + share, floor)
            remaining -= share
        self.grants = grants

    def _update(self) -> None:
        now = self.protocol.sim.now
        rtt = self.rtt_avg.value_or(DEFAULT_RTT)
        horizon = FLOW_EXPIRY_RTTS * rtt
        self.flows = {
            fid: state for fid, state in self.flows.items()
            if now - state[1] <= horizon
        }
        n = max(1, len(self.flows))
        elapsed = max(now - self._last_update, 1e-9)
        sent = self.link.bytes_sent + self.link.queue.dropped_bytes
        y = (sent - self._last_bytes) * BITS_PER_BYTE / elapsed
        self._last_bytes = sent
        self._last_update = now
        q_term = self.link.queue.bytes * BITS_PER_BYTE / rtt
        delta = (ALPHA * (self.link.rate_bps - y) - BETA * q_term) / n
        # non-negative fs (the PDQ authors' fix to the original algorithm)
        self.fair_share = max(0.0, self.fair_share + delta)
        self._allocate()
        if self.flows:
            self._timer.start(rtt)


class D3SwitchProtocol:
    """Per-switch D3: arrival-order reservation plus fair-share stamping."""

    def __init__(self, network: "Network", switch):
        self.net = network
        self.sim = network.sim
        self.switch_id = switch.id
        self._states: dict[int, D3LinkState] = {}

    def process(self, packet: Packet, out_link: Link) -> None:
        if packet.kind in (PacketKind.SYN, PacketKind.DATA,
                           PacketKind.PROBE, PacketKind.TERM):
            state = self._states.get(out_link.link_id)
            if state is None:
                state = D3LinkState(self, out_link)
                self._states[out_link.link_id] = state
            state.observe(packet, self.sim.now)


class D3Sender(RateBasedSender):
    """D3 sending half: one rate request per RTT, quenching on missed
    deadlines."""

    def __init__(self, network, stack, spec, record, fwd_path, host):
        super().__init__(network, stack, spec, record, fwd_path, host)
        self.deadline = spec.absolute_deadline
        self.prev_alloc = 0.0
        self._last_request = -float("inf")
        # D3 has no pause state; start at a conservative probe rate until
        # the first allocation arrives
        self.rate = floor_rate(DEFAULT_RTT)

    # -- desired rate ------------------------------------------------------------

    def _desired_rate(self) -> float:
        if self.deadline is None:
            return 0.0
        time_left = self.deadline - self.sim.now
        if time_left <= 0:
            return self.max_rate
        return min(self.max_rate, self.wire_remaining * 8.0 / time_left)

    def _rtt_now(self) -> float:
        return self.rtt.srtt if self.rtt.srtt is not None else DEFAULT_RTT

    def make_sched_header(self, kind: PacketKind) -> D3Header | None:
        request_due = (
            kind == PacketKind.SYN
            or kind == PacketKind.TERM
            or self.sim.now - self._last_request >= self._rtt_now()
        )
        if not request_due:
            return None
        self._last_request = self.sim.now
        return self.pool.acquire_d3(
            self._desired_rate(),
            self.prev_alloc,
            self._rtt_now(),
            self.deadline,
        )

    # -- feedback -----------------------------------------------------------------

    def process_feedback(self, packet: Packet) -> None:
        header = packet.sched
        if not isinstance(header, D3Header):
            return
        if header.allocated == float("inf"):
            return
        self.prev_alloc = header.allocated
        rtt = self.rtt.srtt if self.rtt.srtt is not None else DEFAULT_RTT
        self.set_rate(
            min(max(header.allocated, floor_rate(rtt)), self.max_rate)
        )

    def check_early_termination(self) -> bool:
        """D3's quenching: kill flows whose deadline already passed."""
        if self.deadline is None or self.term_sent or self.closed:
            return False
        if self.sim.now > self.deadline:
            self.terminate("quenching:deadline_passed")
            return True
        return False


class D3Receiver(AckingReceiver):
    """D3 receiving half: headers echo back unchanged."""


class D3Stack(ProtocolStack):
    """D3 endpoints plus per-switch reservation logic.

    Wire overhead: 40-byte TCP/IP plus two rate fields and the previous
    allocation (~ 12 bytes).
    """

    name = "D3"
    header_bytes = 52
    ack_bytes = 52

    def make_switch_protocol(self, network, switch) -> D3SwitchProtocol:
        return D3SwitchProtocol(network, switch)

    def make_endpoints(self, network, spec, record, fwd_path, rev_path):
        src_host = network.host(spec.src)
        dst_host = network.host(spec.dst)
        sender = D3Sender(network, self, spec, record, fwd_path, src_host)
        receiver = D3Receiver(network, self, spec, record, rev_path, dst_host)
        src_host.register_sender(spec.fid, sender)
        dst_host.register_receiver(spec.fid, receiver)
        return sender, receiver
