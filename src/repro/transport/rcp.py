"""RCP baseline (paper §5.1).

Rate Control Protocol [Dukkipati & McKeown]: every switch hands all flows on
a link the same explicit fair-share rate. Following the paper, our RCP is
optimized to count the exact number of flows at switches (via SYN/TERM plus
an expiry fallback for lost TERMs) rather than estimating N from C/R, which
converges much faster under flow churn.

Fair share per link, updated every average RTT:

    R = max(0, C - q/(2*RTT)) / N

Senders pace at the minimum R along their path (never fully zero -- a small
floor keeps the feedback loop alive while a standing queue drains).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.events.timers import Timer
from repro.net.headers import RcpHeader
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.transport.base import AckingReceiver, ProtocolStack, RateBasedSender
from repro.units import BITS_PER_BYTE, USEC
from repro.utils.ewma import Ewma

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

#: flows silent this many RTTs are presumed dead (lost TERM safety net)
FLOW_EXPIRY_RTTS = 50.0
#: drain a standing queue over this many RTTs (a one-RTT drain target
#: makes the advertised rate collapse and oscillate)
QUEUE_DRAIN_RTTS = 4.0
#: the advertised rate never drops below one MTU per this many RTTs --
#: explicit-rate senders learn new rates only from ACKs of their own
#: packets, so the floor bounds the feedback-loop latency
FEEDBACK_RTTS = 4.0
DEFAULT_RTT = 150 * USEC


def floor_rate(rtt: float, mtu_bits: float = 1500 * 8) -> float:
    return mtu_bits / (FEEDBACK_RTTS * max(rtt, 1e-6))


class RcpLinkState:
    """Per-egress-link RCP state: exact flow count and the advertised rate."""

    def __init__(self, protocol: "RcpSwitchProtocol", link: Link):
        self.protocol = protocol
        self.link = link
        self.flows: dict[int, float] = {}  # fid -> last seen
        self.rtt_avg = Ewma(alpha=0.1, default=DEFAULT_RTT)
        self.rate = link.rate_bps
        self._timer = Timer(protocol.sim, self._update)

    def observe(self, packet: Packet, now: float) -> None:
        header: RcpHeader = packet.sched
        if header.rtt > 0:
            self.rtt_avg.update(header.rtt)
        if packet.kind == PacketKind.TERM:
            self.flows.pop(packet.fid, None)
            if not self.flows:
                self._timer.cancel()
                self.rate = self.link.rate_bps
            return
        self.flows[packet.fid] = now
        if not self._timer.armed:
            self._timer.start(self.rtt_avg.value_or(DEFAULT_RTT))
        header.rate = min(header.rate, self.rate)

    def _update(self) -> None:
        now = self.protocol.sim.now
        rtt = self.rtt_avg.value_or(DEFAULT_RTT)
        horizon = FLOW_EXPIRY_RTTS * rtt
        self.flows = {f: t for f, t in self.flows.items() if now - t <= horizon}
        n = len(self.flows)
        if n == 0:
            self.rate = self.link.rate_bps
            return
        drain = (self.link.queue.bytes * BITS_PER_BYTE
                 / (QUEUE_DRAIN_RTTS * rtt))
        capacity = max(0.0, self.link.rate_bps - drain)
        # smooth toward the new fair share: all senders react to the same
        # stamped rate one RTT later, so an undamped jump oscillates
        target = max(floor_rate(rtt), capacity / n)
        self.rate = 0.5 * self.rate + 0.5 * target
        self._timer.start(rtt)


class RcpSwitchProtocol:
    """Per-switch RCP: stamps the fair share on forward-path packets."""

    def __init__(self, network: "Network", switch):
        self.net = network
        self.sim = network.sim
        self.switch_id = switch.id
        self._states: dict[int, RcpLinkState] = {}

    def process(self, packet: Packet, out_link: Link) -> None:
        if packet.sched.__class__ is not RcpHeader:
            return
        if packet.kind in (PacketKind.SYN, PacketKind.DATA,
                           PacketKind.PROBE, PacketKind.TERM):
            state = self._states.get(out_link.link_id)
            if state is None:
                state = RcpLinkState(self, out_link)
                self._states[out_link.link_id] = state
            state.observe(packet, self.sim.now)
        # reverse path: the receiver-copied header travels back untouched


class RcpSender(RateBasedSender):
    """RCP sending half: adopt the stamped rate from each ACK."""

    def make_sched_header(self, kind: PacketKind) -> RcpHeader:
        rtt = self.rtt.srtt if self.rtt.srtt is not None else DEFAULT_RTT
        return self.pool.acquire_rcp(self.max_rate, rtt)

    def process_feedback(self, packet: Packet) -> None:
        header = packet.sched
        if not isinstance(header, RcpHeader):
            return
        rtt = self.rtt.srtt if self.rtt.srtt is not None else DEFAULT_RTT
        self.set_rate(min(max(header.rate, floor_rate(rtt)), self.max_rate))


class RcpReceiver(AckingReceiver):
    """RCP receiving half: headers echo back unchanged."""


class RcpStack(ProtocolStack):
    """RCP endpoints plus per-switch rate stamping.

    Wire overhead: 40-byte TCP/IP plus a 4-byte rate/RTT field.
    """

    name = "RCP"
    header_bytes = 44
    ack_bytes = 44

    def make_switch_protocol(self, network, switch) -> RcpSwitchProtocol:
        return RcpSwitchProtocol(network, switch)

    def make_endpoints(self, network, spec, record, fwd_path, rev_path):
        src_host = network.host(spec.src)
        dst_host = network.host(spec.dst)
        sender = RcpSender(network, self, spec, record, fwd_path, src_host)
        receiver = RcpReceiver(network, self, spec, record, rev_path, dst_host)
        src_host.register_sender(spec.fid, sender)
        dst_host.register_receiver(spec.fid, receiver)
        return sender, receiver
