"""TCP Reno baseline (paper §5.1).

Window-based loss-driven congestion control: slow start, congestion
avoidance, fast retransmit / fast recovery (NewReno-style partial-ACK
handling), and exponential-backoff retransmission timeouts. Per the paper,
RTOmin is set small (the standard mitigation for the incast problem in
data centers, following Vasudevan et al.).

Switches are dumb for TCP: no switch protocol is attached.
"""

from __future__ import annotations


from repro.events.timers import Timer
from repro.net.packet import Packet, PacketKind
from repro.transport.base import AckingReceiver, EndpointBase, ProtocolStack


class TcpSender(EndpointBase):
    """TCP Reno sending half.

    Sequence space is bytes; packets are cut on the payload grid. The
    receiver returns cumulative ACKs (``ack_seq`` = next expected byte).
    """

    INITIAL_WINDOW_PACKETS = 3.0
    MAX_BACKOFF = 64.0
    DUPACK_THRESHOLD = 3

    def __init__(self, network, stack, spec, record, fwd_path, host):
        super().__init__(network, stack, spec, record, fwd_path)
        self.host = host
        self.dst_id = network.node(spec.dst).id
        self.payload = stack.payload_bytes
        self.size = spec.size_bytes

        self.snd_una = 0          # oldest unacknowledged byte
        self.snd_nxt = 0          # next new byte to send
        self.cwnd = self.INITIAL_WINDOW_PACKETS  # in packets
        self.ssthresh = float("inf")
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        self._backoff = 1.0
        self.handshake_done = False
        self.term_sent = False

        from repro.utils.ewma import RttEstimator

        self.rtt = RttEstimator(
            rto_min=network.config.rto_min,
            initial_rtt=network.estimate_rtt(fwd_path),
        )
        self._rto_timer = Timer(self.sim, self._on_rto)
        self._close_timer = Timer(self.sim, self._close)

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        self.record.start_time = self.sim.now
        self._send_control(PacketKind.SYN)
        self._rto_timer.start(self.rtt.rto())

    def _close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._rto_timer.cancel()
        self._close_timer.cancel()
        self.host.unregister_sender(self.spec.fid)

    # -- window math -------------------------------------------------------------------

    @property
    def flight_packets(self) -> float:
        return (self.snd_nxt - self.snd_una) / self.payload

    def _can_send(self) -> bool:
        return (
            self.handshake_done
            and not self.term_sent
            and self.snd_nxt < self.size
            and self.flight_packets < self.cwnd
        )

    # -- emission ------------------------------------------------------------------------

    def _send_control(self, kind: PacketKind) -> None:
        packet = self.pool.acquire(
            self.spec.fid, self.host.id, self.dst_id,
            kind, self.stack.header_bytes,
            echo_time=self.sim.now, path=self.path,
        )
        self.host.send(packet)

    # repro: hot
    def _send_segment(self, offset: int, retransmit: bool = False) -> None:
        chunk = min(self.payload, self.size - offset)
        if chunk <= 0:
            return
        if retransmit:
            self.net.metrics.on_retransmit(self.spec.fid)
        packet = self.pool.acquire(
            self.spec.fid, self.host.id, self.dst_id,
            PacketKind.DATA, chunk + self.stack.header_bytes,
            seq=offset, payload=chunk,
            echo_time=-1.0 if retransmit else self.sim.now,  # Karn's rule
            path=self.path,
        )
        self.host.send(packet)
        if not self._rto_timer.armed:
            self._rto_timer.start(self.rtt.rto() * self._backoff)

    # repro: hot
    def _pump(self) -> None:
        """Send as much new data as the window allows."""
        while self._can_send():
            self._send_segment(self.snd_nxt)
            self.snd_nxt = min(self.size, self.snd_nxt + self.payload)

    # -- inbound -----------------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        if self.closed:
            return
        if packet.kind == PacketKind.SYN_ACK:
            if not self.handshake_done:
                self.handshake_done = True
                if packet.echo_time >= 0:
                    self.rtt.update(self.sim.now - packet.echo_time)
                self._backoff = 1.0
                self._rto_timer.cancel()
                self._pump()
        elif packet.kind == PacketKind.ACK:
            self._on_ack(packet)
        elif packet.kind == PacketKind.TERM_ACK:
            self._close()

    def _on_ack(self, packet: Packet) -> None:
        ack = packet.ack_seq
        if packet.echo_time >= 0:
            self.rtt.update(self.sim.now - packet.echo_time)
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_dupack()
        if self.snd_una >= self.size and not self.term_sent:
            self._finish()
        else:
            self._pump()

    def _on_new_ack(self, ack: int) -> None:
        acked_packets = (ack - self.snd_una) / self.payload
        self.snd_una = ack
        self._backoff = 1.0
        self.dupacks = 0
        if self.in_recovery:
            if ack >= self.recover_point:
                self.cwnd = self.ssthresh  # full ACK: deflate
                self.in_recovery = False
            else:
                # NewReno partial ACK: retransmit the next hole
                self._send_segment(self.snd_una, retransmit=True)
                self.cwnd = max(self.cwnd - acked_packets + 1, 1.0)
        elif self.cwnd < self.ssthresh:
            self.cwnd += acked_packets  # slow start
        else:
            self.cwnd += acked_packets / self.cwnd  # congestion avoidance
        # restart-in-place: on almost every new ACK the fresh expiry sits
        # at or past the old one, so the lazy push-back path leaves the
        # event heap untouched (one push per RTO burst, not per ACK)
        if self.snd_nxt > self.snd_una:
            self._rto_timer.start(self.rtt.rto() * self._backoff)
        else:
            self._rto_timer.cancel()

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += 1.0  # inflate during recovery
        elif self.dupacks == self.DUPACK_THRESHOLD:
            self.ssthresh = max(self.flight_packets / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self.in_recovery = True
            self.recover_point = self.snd_nxt
            self._send_segment(self.snd_una, retransmit=True)

    # -- timeout --------------------------------------------------------------------------------

    def _on_rto(self) -> None:
        if self.closed:
            return
        if not self.handshake_done:
            self._send_control(PacketKind.SYN)
            self._backoff = min(self._backoff * 2.0, self.MAX_BACKOFF)
            self._rto_timer.start(self.rtt.rto() * self._backoff)
            return
        if self.snd_una >= self.size:
            return
        self.ssthresh = max(self.flight_packets / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.in_recovery = False
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        self._backoff = min(self._backoff * 2.0, self.MAX_BACKOFF)
        self._send_segment(self.snd_una, retransmit=True)
        self.snd_nxt = min(self.size, self.snd_una + self.payload)
        self._rto_timer.start(self.rtt.rto() * self._backoff)

    # -- teardown ----------------------------------------------------------------------------------

    def _finish(self) -> None:
        self.term_sent = True
        self._rto_timer.cancel()
        self._send_control(PacketKind.TERM)
        self._close_timer.start(4.0 * self.rtt.rto())


class TcpReceiver(AckingReceiver):
    """Cumulative-ACK receiver."""

    def __init__(self, network, stack, spec, record, rev_path, host):
        super().__init__(network, stack, spec, record, rev_path, host)
        self._got: set[int] = set()
        self._cum = 0  # next expected byte

    # repro: hot
    def _on_data(self, packet: Packet) -> None:
        if packet.seq not in self._got:
            self._got.add(packet.seq)
            self.bytes_received += packet.payload
            self.net.metrics.on_bytes(self.spec.fid, packet.payload)
            if not self.complete and self.bytes_received >= self.spec.size_bytes:
                self.complete = True
                self.net.metrics.on_complete(self.spec.fid, self.sim.now)
        # advance the cumulative pointer over contiguous data (segments are
        # always cut on the payload grid, so offsets line up exactly)
        while self._cum in self._got:
            self._cum += self._payload_at(self._cum)
        self._reply(packet, PacketKind.ACK, ack_range=None)

    def _payload_at(self, offset: int) -> int:
        return min(self.stack.payload_bytes, self.spec.size_bytes - offset)

    # repro: hot
    def _reply(self, packet: Packet, kind: PacketKind, ack_range=None) -> None:
        ack = self.pool.acquire(
            self.spec.fid, self.host.id, self.src_id,
            kind, self.stack.ack_bytes,
            ack_seq=self._cum, echo_time=packet.echo_time, path=self.path,
        )
        self.host.send(ack)


class TcpStack(ProtocolStack):
    """TCP Reno endpoints; switches need no protocol state."""

    name = "TCP"
    header_bytes = 40
    ack_bytes = 40

    def make_endpoints(self, network, spec, record, fwd_path, rev_path):
        src_host = network.host(spec.src)
        dst_host = network.host(spec.dst)
        sender = TcpSender(network, self, spec, record, fwd_path, src_host)
        receiver = TcpReceiver(network, self, spec, record, rev_path, dst_host)
        src_host.register_sender(spec.fid, sender)
        dst_host.register_receiver(spec.fid, receiver)
        return sender, receiver
