"""Physical units and conversion constants used across the library.

Conventions (every module follows these):

* time      -- seconds (float)
* data size -- bytes (int or float)
* data rate -- bits per second (float)

The constants below let protocol code read like the paper, e.g.
``rate = 1 * GBPS`` or ``deadline = 20 * MSEC``.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
SEC = 1.0
MSEC = 1e-3
USEC = 1e-6
NSEC = 1e-9

# --- size ------------------------------------------------------------------
BYTE = 1
KBYTE = 1_000
MBYTE = 1_000_000
GBYTE = 1_000_000_000

# --- rate ------------------------------------------------------------------
BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

BITS_PER_BYTE = 8


def tx_time(size_bytes: float, rate_bps: float) -> float:
    """Transmission (serialization) delay of ``size_bytes`` at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes * BITS_PER_BYTE / rate_bps


def bytes_in(duration: float, rate_bps: float) -> float:
    """How many bytes a link at ``rate_bps`` carries in ``duration`` seconds."""
    return duration * rate_bps / BITS_PER_BYTE
