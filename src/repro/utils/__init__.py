"""Small shared utilities: EWMA estimators, seeded RNG plumbing, sorted
containers and basic statistics helpers."""

from repro.utils.ewma import Ewma, RttEstimator
from repro.utils.rng import spawn_rng
from repro.utils.sketch import QuantileSketch
from repro.utils.sortedlist import SortedFlowList
from repro.utils.stats import cdf_points, mean, percentile

__all__ = [
    "Ewma",
    "RttEstimator",
    "spawn_rng",
    "QuantileSketch",
    "SortedFlowList",
    "cdf_points",
    "mean",
    "percentile",
]
