"""Exponentially-weighted moving averages.

PDQ senders estimate RTT "by an exponential decay" (paper §3.1); switches
keep a per-link average of the RTTs observed in scheduling headers to time
the rate controller (every 2 RTTs) and the dampening window.
"""

from __future__ import annotations



class Ewma:
    """Plain EWMA: ``value <- (1-alpha)*value + alpha*sample``.

    ``default`` is a *fallback*, not a prior: before the first sample,
    :attr:`value` reads as ``default`` (may be None), and the first
    sample **replaces** it outright rather than decaying it. This is
    deliberate — d3/rcp senders and the PDQ switch seed ``rtt_avg`` with
    a configured RTT purely so timers have something to run on before
    any header has been observed; a configured guess must carry zero
    weight once a real measurement exists (the same contract as RFC 6298
    seeding ``srtt`` from the first sample). Callers that want a true
    prior should call ``update(prior)`` instead of passing ``default``.
    """

    __slots__ = ("alpha", "_value", "samples")

    def __init__(self, alpha: float = 0.125, default: float | None = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = default
        self.samples = 0

    @property
    def value(self) -> float | None:
        return self._value

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new average.

        The first sample discards any ``default`` (see class docstring);
        ``samples`` counts only real observations, never the fallback.
        """
        self._value = (
            sample if self._value is None or self.samples == 0
            else (1.0 - self.alpha) * self._value + self.alpha * sample
        )
        self.samples += 1
        return self._value

    def value_or(self, fallback: float) -> float:
        return self._value if self._value is not None else fallback


class RttEstimator:
    """RFC6298-style smoothed RTT + variance, used for retransmission timers.

    ``rto()`` is clamped to ``[rto_min, rto_max]``.
    """

    def __init__(self, rto_min: float = 2e-3, rto_max: float = 1.0,
                 initial_rtt: float | None = None):
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.srtt: float | None = initial_rtt
        self.rttvar: float = (initial_rtt / 2.0) if initial_rtt else 0.0

    def update(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative RTT sample {sample}")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def rto(self) -> float:
        if self.srtt is None:
            return self.rto_max
        rto = self.srtt + max(4.0 * self.rttvar, 1e-6)
        return min(self.rto_max, max(self.rto_min, rto))
