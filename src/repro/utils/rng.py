"""Deterministic random-number plumbing.

All stochastic choices in the library (workload draws, ECMP tie-breaks,
loss injection) flow through ``numpy.random.Generator`` objects derived
from an experiment-level seed, so every simulation is reproducible.
"""

from __future__ import annotations


import numpy as np

SeedLike = int | np.random.Generator | None


def spawn_rng(seed: SeedLike = None, stream: str | None = None) -> np.random.Generator:
    """Build a Generator from ``seed``.

    ``stream`` derives an independent child stream from the same seed, so
    e.g. workload generation and loss injection never share a sequence:

    >>> a = spawn_rng(7, "workload")
    >>> b = spawn_rng(7, "loss")
    >>> a.integers(1000) != b.integers(1000) or True
    True
    """
    if isinstance(seed, np.random.Generator):
        if stream is None:
            return seed
        # Derive a child deterministically from the parent's state.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return np.random.default_rng(_mix(child_seed, stream))
    if stream is not None:
        return np.random.default_rng(_mix(0 if seed is None else int(seed), stream))
    return np.random.default_rng(seed)


def _mix(seed: int, stream: str) -> int:
    """Stable 63-bit mix of an integer seed and a stream label."""
    h = 1469598103934665603  # FNV offset basis
    for byte in stream.encode():
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return (seed * 6364136223846793005 + h) & 0x7FFFFFFFFFFFFFFF
