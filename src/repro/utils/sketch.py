"""Mergeable streaming quantile sketch (KLL/MRL-style compactors).

Open-system runs (``repro.workload.open_system``) resolve millions of
flows; keeping every FCT just to read p99 off the sorted list is exactly
the O(n)-memory habit the streaming collector exists to break. This
sketch keeps a ladder of fixed-capacity buffers: level ``i`` holds
values each standing in for ``2**i`` original samples. When a level
fills it is sorted and every other element is promoted one level up, so
total space is ``k * log2(n / k)`` — a few kilobytes at a million
samples — while rank error stays a small fraction of ``n``.

Determinism matters more here than the last half-percent of accuracy:
the same input sequence must serialize to the same bytes on every run
(result-store payloads are content-hashed). Instead of the randomized
compaction offset of the published KLL sketch, compactions alternate a
parity bit, which cancels adjacent compaction biases the same way in
every run. Merging folds another sketch's levels in pairwise and then
re-compacts, so sharded runs can be combined without reprocessing.
"""

from __future__ import annotations

from repro.errors import ExperimentError


class QuantileSketch:
    """Fixed-space quantile estimator over a stream of floats.

    ``k`` is the per-level buffer capacity: space and accuracy both grow
    with it (rank error is roughly ``1/k`` in practice). The exact
    minimum and maximum are tracked separately, so ``quantile(0.0)`` and
    ``quantile(1.0)`` are always exact.
    """

    __slots__ = ("k", "n", "levels", "min_value", "max_value", "_flip")

    def __init__(self, k: int = 200):
        if k < 8:
            raise ExperimentError(f"sketch capacity k must be >= 8, got {k}")
        self.k = k
        self.n = 0
        self.levels: list[list[float]] = [[]]
        self.min_value: float | None = None
        self.max_value: float | None = None
        self._flip = 0

    # -- ingest -----------------------------------------------------------------

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        level0 = self.levels[0]
        level0.append(value)
        if len(level0) >= self.k:
            self._compact(0)

    def _compact(self, index: int) -> None:
        """Promote half of a full level: sort, keep alternating elements
        (parity flips per compaction so discard bias cancels), and push
        the survivors — each now worth twice the weight — one level up."""
        level = self.levels[index]
        level.sort()
        if index + 1 == len(self.levels):
            self.levels.append([])
        self._flip ^= 1
        self.levels[index + 1].extend(level[self._flip :: 2])
        level.clear()
        if len(self.levels[index + 1]) >= self.k:
            self._compact(index + 1)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch in (levels concatenate pairwise, then any
        overfull level re-compacts); returns self."""
        self.n += other.n
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value
        while len(self.levels) < len(other.levels):
            self.levels.append([])
        for i, level in enumerate(other.levels):
            self.levels[i].extend(level)
        for i in range(len(self.levels)):
            if len(self.levels[i]) >= self.k:
                self._compact(i)
        return self

    # -- queries -----------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (0 -> exact min, 1 -> exact
        max); raises on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ExperimentError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0 or self.min_value is None or self.max_value is None:
            raise ExperimentError("quantile of an empty sketch")
        if q == 0.0:
            return self.min_value
        if q == 1.0:
            return self.max_value
        weighted = [
            (value, 1 << level_index)
            for level_index, level in enumerate(self.levels)
            for value in level
        ]
        if not weighted:  # everything compacted away (cannot happen with k>=8)
            return self.max_value
        weighted.sort()
        total = sum(w for _, w in weighted)
        target = q * total
        cumulative = 0
        for value, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return min(max(value, self.min_value), self.max_value)
        return self.max_value

    def __len__(self) -> int:
        return self.n

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`.
        Trailing empty levels are dropped so equal sketches serialize to
        equal bytes regardless of compaction history."""
        levels = list(self.levels)
        while levels and not levels[-1]:
            levels = levels[:-1]
        return {
            "k": self.k,
            "n": self.n,
            "min": self.min_value,
            "max": self.max_value,
            "flip": self._flip,
            "levels": [list(level) for level in levels],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(k=data["k"])
        sketch.n = data["n"]
        sketch.min_value = data["min"]
        sketch.max_value = data["max"]
        sketch._flip = data.get("flip", 0)
        sketch.levels = [list(level) for level in data["levels"]] or [[]]
        return sketch
