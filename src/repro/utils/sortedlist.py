"""A small list kept sorted by a key function.

PDQ switches keep per-link flow lists ordered by flow criticality
(paper §3.3.1). The lists are tiny -- O(2*kappa) entries, typically well
under a hundred -- so a plain Python list with linear insertion beats any
fancier structure and keeps the code obvious.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Generic, TypeVar

from repro.errors import FlowListError

T = TypeVar("T")
K = TypeVar("K")


class SortedFlowList(Generic[T]):
    """list sorted ascending by ``key`` (smaller key = more critical)."""

    def __init__(self, key: Callable[[T], K]):
        self._key = key
        self._items: list[T] = []

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def __contains__(self, item: T) -> bool:
        return item in self._items

    # -- operations -------------------------------------------------------------

    def insert(self, item: T) -> int:
        """Insert keeping order; returns the index it landed at.

        Equal keys insert *after* existing equal-key entries so earlier
        arrivals keep their (more critical) position -- a stable order.
        """
        key = self._key(item)
        lo, hi = 0, len(self._items)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key(self._items[mid]) <= key:
                lo = mid + 1
            else:
                hi = mid
        self._items.insert(lo, item)
        return lo

    def remove(self, item: T) -> bool:
        """Remove ``item`` if present; returns whether it was there."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False

    def pop_least_critical(self) -> T:
        """Remove and return the entry with the largest key.

        Raises :class:`~repro.errors.FlowListError` on an empty list —
        popping from an empty flow list is a scheduler bug, and a bare
        ``IndexError`` from deep inside switch code hides that.
        """
        if not self._items:
            raise FlowListError(
                "pop_least_critical() on an empty flow list"
            )
        return self._items.pop()

    def least_critical(self) -> T | None:
        return self._items[-1] if self._items else None

    def index_of(self, item: T) -> int:
        """Index of ``item`` (its criticality rank); raises ValueError if
        absent."""
        return self._items.index(item)

    def resort(self) -> None:
        """Re-establish order after keys changed in place."""
        self._items.sort(key=self._key)

    def as_list(self) -> list[T]:
        return list(self._items)
