"""Tiny statistics helpers shared by metrics and experiment reports."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ValueError on an empty input (an empty
    experiment is a bug we want to hear about, not a NaN)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    value = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    # interpolation can drift a few ulps outside the sample range
    return min(max(value, ordered[0]), ordered[-1])


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points, one per sample."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (0.0 for empty input)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)
