"""Cross-engine validation: the packet and fluid simulators must agree.

The paper's claims rest on two independent simulators producing the same
conclusions; this package makes that agreement a continuously-checked
invariant instead of a one-time observation. It pairs every scenario
cell across both engines (:mod:`repro.validate.pairs`), runs the pairs
through the campaign runner, and asserts FCT / deadline-throughput /
completion agreement within per-protocol tolerances
(:mod:`repro.validate.harness`). ``python -m repro validate [--quick]``
drives it and writes ``VALIDATE_cross_engine.json``.
"""

from repro.validate.harness import (
    CheckResult,
    PairOutcome,
    ValidationReport,
    compare_pair,
    run_validation,
    select_pairs,
    write_report,
)
from repro.validate.pairs import (
    APP_TPUT_ATOL,
    COMPLETION_ATOL,
    FCT_RTOL,
    SINGLE_FLOW_RTOL,
    VALIDATION_PROTOCOLS,
    Tolerance,
    ValidationPair,
    default_pairs,
    edge_pairs,
    fig3_pairs,
    fig5_pairs,
    tolerance_for,
)

__all__ = [
    "APP_TPUT_ATOL",
    "COMPLETION_ATOL",
    "CheckResult",
    "FCT_RTOL",
    "PairOutcome",
    "SINGLE_FLOW_RTOL",
    "Tolerance",
    "VALIDATION_PROTOCOLS",
    "ValidationPair",
    "ValidationReport",
    "compare_pair",
    "default_pairs",
    "edge_pairs",
    "fig3_pairs",
    "fig5_pairs",
    "run_validation",
    "select_pairs",
    "tolerance_for",
    "write_report",
]
