"""Run matched packet/fluid pairs and check agreement tolerances.

The harness executes every pair's two specs through the ambient campaign
runner (:func:`repro.campaign.context.run_scenarios` semantics: wrap the
call in ``use_runner(CampaignRunner(...))`` for parallel fan-out and
result caching — the CLI does), compares the resulting metrics, and
produces a :class:`ValidationReport` whose JSON form is the CI artifact.

A pair passes when every applicable check is within its declared
tolerance. Checks are *agreement* checks, never timing: wall-clock is
recorded for provenance but can't fail validation.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.campaign.context import current_runner
from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import SummaryStats
from repro.validate.pairs import ValidationPair, default_pairs

DEFAULT_REPORT = "VALIDATE_cross_engine.json"
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class CheckResult:
    """One tolerance check of one pair."""

    name: str
    ok: bool
    measured: float | None = None
    limit: float | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "measured": self.measured,
            "limit": self.limit,
            "detail": self.detail,
        }


@dataclass
class PairOutcome:
    """Everything measured for one packet/fluid pair."""

    name: str
    family: str
    protocol: str
    checks: list[CheckResult] = field(default_factory=list)
    packet_summary: dict | None = None
    fluid_summary: dict | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(c.ok for c in self.checks)

    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "protocol": self.protocol,
            "ok": self.ok,
            "error": self.error,
            "checks": [c.to_dict() for c in self.checks],
            "packet": self.packet_summary,
            "fluid": self.fluid_summary,
        }


@dataclass
class ValidationReport:
    """All pair outcomes of one validation run."""

    outcomes: list[PairOutcome]
    quick: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    def failures(self) -> list[PairOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "suite": "cross_engine",
            "quick": self.quick,
            "ok": self.ok,
            "n_pairs": len(self.outcomes),
            "n_failed": self.n_failed,
            "elapsed_s": self.elapsed_s,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "host": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "pairs": [o.to_dict() for o in self.outcomes],
        }


# -- pair comparison ----------------------------------------------------------------


def compare_pair(pair: ValidationPair, packet: MetricsCollector,
                 fluid: MetricsCollector) -> PairOutcome:
    """Check one executed pair against its declared tolerances."""
    outcome = PairOutcome(
        name=pair.name, family=pair.family, protocol=pair.protocol,
        packet_summary=SummaryStats.from_collector(packet).to_dict(),
        fluid_summary=SummaryStats.from_collector(fluid).to_dict(),
    )
    tol = pair.tolerance
    checks = outcome.checks

    n_packet, n_fluid = len(packet), len(fluid)
    checks.append(CheckResult(
        name="flow_count",
        ok=n_packet == n_fluid,
        measured=float(abs(n_packet - n_fluid)),
        limit=0.0,
        detail=f"packet ran {n_packet} flows, fluid {n_fluid}",
    ))
    if n_packet != n_fluid or n_packet == 0:
        # nothing further is comparable (or there is nothing to compare:
        # an empty workload agreeing on emptiness is full agreement)
        return outcome

    done_packet = len(packet.completed_records())
    done_fluid = len(fluid.completed_records())
    gap = abs(done_packet - done_fluid) / n_packet
    checks.append(CheckResult(
        name="completed_fraction",
        ok=gap <= tol.completion_atol,
        measured=gap,
        limit=tol.completion_atol,
        detail=f"completed {done_packet}/{n_packet} vs {done_fluid}/{n_fluid}",
    ))

    if done_packet > 0 and done_fluid > 0:
        fct_packet, fct_fluid = packet.mean_fct(), fluid.mean_fct()
        rel = abs(fct_packet - fct_fluid) / fct_fluid
        checks.append(CheckResult(
            name="mean_fct",
            ok=rel <= tol.fct_rtol,
            measured=rel,
            limit=tol.fct_rtol,
            detail=(f"mean FCT {fct_packet * 1e3:.3f}ms (packet) vs "
                    f"{fct_fluid * 1e3:.3f}ms (fluid)"),
        ))
    elif done_packet != done_fluid:
        checks.append(CheckResult(
            name="mean_fct",
            ok=False,
            detail=(f"only one engine completed flows "
                    f"({done_packet} packet vs {done_fluid} fluid)"),
        ))

    if any(r.spec.has_deadline for r in packet.all_records()):
        app_packet = packet.application_throughput()
        app_fluid = fluid.application_throughput()
        diff = abs(app_packet - app_fluid)
        checks.append(CheckResult(
            name="application_throughput",
            ok=diff <= tol.app_tput_atol,
            measured=diff,
            limit=tol.app_tput_atol,
            detail=(f"deadline-met fraction {app_packet:.3f} (packet) vs "
                    f"{app_fluid:.3f} (fluid)"),
        ))
    return outcome


# -- running ------------------------------------------------------------------------


def select_pairs(pairs: Sequence[ValidationPair],
                 only: Sequence[str] | None = None
                 ) -> list[ValidationPair]:
    """Filter by family name or name substring (``fig3``, ``D3``, ...)."""
    if not only:
        return list(pairs)
    wanted = list(only)
    picked = [
        p for p in pairs
        if any(w == p.family or w in p.name for w in wanted)
    ]
    if not picked:
        known = sorted({p.family for p in pairs})
        raise ExperimentError(
            f"no validation pairs match {wanted}; known families: {known}"
        )
    return picked


def run_validation(pairs: Sequence[ValidationPair] | None = None,
                   quick: bool = False,
                   only: Sequence[str] | None = None) -> ValidationReport:
    """Execute pairs through the ambient runner and check tolerances.

    A scenario that fails to execute fails its pair (with the scenario
    error recorded) rather than aborting the whole validation run.
    """
    chosen = select_pairs(
        default_pairs(quick) if pairs is None else pairs, only
    )
    specs = [spec for pair in chosen for spec in pair.specs()]
    started = time.perf_counter()
    result = current_runner().run(specs)
    elapsed = time.perf_counter() - started

    outcomes: list[PairOutcome] = []
    for i, pair in enumerate(chosen):
        packet_out, fluid_out = result.outcomes[2 * i], result.outcomes[2 * i + 1]
        broken = [
            f"{o.spec.engine} engine: {o.error}"
            for o in (packet_out, fluid_out) if not o.ok
        ]
        if broken:
            outcomes.append(PairOutcome(
                name=pair.name, family=pair.family, protocol=pair.protocol,
                error="; ".join(broken),
            ))
        else:
            outcomes.append(compare_pair(
                pair, packet_out.collector, fluid_out.collector
            ))
    return ValidationReport(outcomes, quick=quick, elapsed_s=elapsed)


def write_report(report: ValidationReport,
                 path: str = DEFAULT_REPORT) -> dict:
    """Write the JSON report (the CI artifact) and return the dict."""
    payload = report.to_dict()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload
