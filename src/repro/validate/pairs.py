"""Matched packet/fluid scenario pairs and their agreement tolerances.

PDQ's evaluation (paper §5) rests on two simulators telling the same
story: the packet-level ns-2-style stack and the fluid flow-level model.
A :class:`ValidationPair` pins one scenario cell in both engines — the
specs differ *only* in ``engine`` — together with the tolerances within
which the two must agree.

Tolerances are declared per protocol, not globally, because the fluid
model idealizes different amounts of each protocol's machinery away:

* **RCP** maps almost directly onto explicit-rate fluid allocation, so
  the engines track each other within a few percent up to ~20 %.
* **PDQ** adds probe/ACK round trips and switch dampening the fluid
  model compresses; observed gaps stay under ~30 %.
* **D3** is rate-*request* based — every sender spends round trips
  re-requesting its reservation, and under contention the packet stack
  serves requests first-come-first-serve while the fluid model grants
  the idealized allocation instantly. Gaps up to ~2x are structural,
  which is exactly why the looser bound is pinned here: a regression
  that pushes D3 past it is a real behavior change, not noise.

The grids themselves are declared through the Experiment API: each pair
family is a :class:`~repro.experiments.api.Panel` whose axes include
``engine`` — validation, figures, and sweeps share one declarative
surface. ``default_pairs`` derives the :class:`ValidationPair` list the
harness runs from those panels, and the registered ``validate``
experiment (plus the ``validate.agreement`` reducer) makes the same
grids runnable from ``run-spec`` files. The ``default_pairs`` grid
covers fig3-style query aggregation and fig5-style VL2 traffic (the
acceptance grids) plus degenerate cells (zero flows, a single flow)
that bound the agreement analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.errors import ExperimentError
from repro.experiments.api import (
    Experiment,
    Panel,
    register_experiment,
)
from repro.experiments.reducers import register_reducer
from repro.units import KBYTE, MSEC

#: validation protocols: every protocol with *both* a transport stack and
#: a fluid rate model (TCP has no fluid model, so it cannot be paired)
VALIDATION_PROTOCOLS = ("PDQ(Full)", "D3", "RCP")

TOPOLOGY = TopologySpec("single_rooted")

#: the cross-engine pairing axis: one cell, both engines
ENGINES = ("packet", "flow")


@dataclass(frozen=True)
class Tolerance:
    """Agreement bounds for one pair (packet measured against fluid).

    ``fct_rtol``       — max relative mean-FCT gap, |pkt - fluid| / fluid
    ``app_tput_atol``  — max absolute application-throughput gap
    ``completion_atol`` — max absolute completed-fraction gap
    """

    fct_rtol: float
    app_tput_atol: float = 0.25
    completion_atol: float = 0.15


#: per-protocol mean-FCT tolerance (see module docstring for the why;
#: measured worst cases on the default grids: PDQ 0.45, RCP 0.17, D3 1.40)
FCT_RTOL: dict[str, float] = {
    "PDQ(Full)": 0.55,
    "RCP": 0.45,
    "D3": 2.00,
}

#: per-protocol application-throughput tolerance. PDQ's packet stack
#: misses deadlines under heavy fan-in (probe/termination round trips)
#: that the fluid allocator meets exactly; measured worst case 0.22.
APP_TPUT_ATOL: dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.20,
    "D3": 0.35,
}

#: per-protocol completed-fraction tolerance (same mechanism: packet PDQ
#: early-terminates deadline-missing flows the fluid model completes)
COMPLETION_ATOL: dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.20,
    "D3": 0.25,
}

#: single-uncontended-flow mean-FCT tolerance. Contention idealizations
#: vanish but *startup* round trips remain — dominant for D3, whose
#: sender spends RTTs acquiring its reservation before data flows
#: (measured: RCP 0.04, PDQ 0.18, D3 0.64).
SINGLE_FLOW_RTOL: dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.25,
    "D3": 0.85,
}


def tolerance_for(protocol: str,
                  fct_rtol: float | None = None) -> Tolerance:
    return Tolerance(
        fct_rtol=fct_rtol if fct_rtol is not None else FCT_RTOL[protocol],
        app_tput_atol=APP_TPUT_ATOL[protocol],
        completion_atol=COMPLETION_ATOL[protocol],
    )


@dataclass(frozen=True)
class ValidationPair:
    """One scenario cell expressed in both engines."""

    name: str
    family: str
    packet: ScenarioSpec
    tolerance: Tolerance

    def __post_init__(self) -> None:
        if self.packet.engine != "packet":
            raise ValueError(f"pair {self.name!r}: base spec must be packet")

    @property
    def fluid(self) -> ScenarioSpec:
        """The matched fluid spec: identical except for the engine."""
        return self.packet.with_(engine="flow")

    @property
    def protocol(self) -> str:
        return self.packet.protocol

    def specs(self) -> tuple[ScenarioSpec, ScenarioSpec]:
        return (self.packet, self.fluid)


# -- pair families as declared panels -----------------------------------------------


def fig3_panel(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS) -> Panel:
    """Fig-3-style query aggregation on the 12-server single-rooted tree:
    senders h1..h11 fan in to h0, with and without deadlines. The
    no-deadline cells get a longer horizon (labeled axis: the deadline
    and the simulated horizon vary together)."""
    flow_counts = (3, 10) if quick else (3, 10, 18)
    seeds = (1,) if quick else (1, 2)
    deadline_axis = (
        (None, {"workload.mean_deadline": None, "sim_deadline": 4.0}),
        (20 * MSEC, {"workload.mean_deadline": 20 * MSEC,
                     "sim_deadline": 2.0}),
    )
    return Panel(
        name="fig3-agreement" + ("-quick" if quick else ""),
        title="fig3 aggregation: packet vs fluid agreement",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig3.aggregation", {
                "n_flows": flow_counts[0],
                "mean_size": 100 * KBYTE,
                "mean_deadline": None,
            }),
            engine="packet",
            sim_deadline=4.0,
        ),
        axes=(("protocol", tuple(protocols)),
              ("workload.n_flows", flow_counts),
              ("deadline", deadline_axis),
              ("seed", seeds),
              ("engine", ENGINES)),
        reducer="validate.agreement",
        reducer_params={"family": "fig3"},
    )


def fig5_panel(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS) -> Panel:
    """Fig-5-style VL2 mix: Poisson arrivals between random host pairs,
    short flows carrying deadlines, the elephant tail as background."""
    rates = (1500.0,) if quick else (1000.0, 2500.0)
    seeds = (1,) if quick else (1, 2)
    duration = 0.03
    return Panel(
        name="fig5-agreement" + ("-quick" if quick else ""),
        title="fig5 VL2 mix: packet vs fluid agreement",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=TOPOLOGY,
            workload=WorkloadSpec("fig5.vl2", {
                "rate_per_sec": rates[0],
                "duration": duration,
                "mean_deadline": 20 * MSEC,
            }),
            engine="packet",
            sim_deadline=duration + 1.0,
        ),
        axes=(("protocol", tuple(protocols)),
              ("workload.rate_per_sec", rates),
              ("seed", seeds),
              ("engine", ENGINES)),
        reducer="validate.agreement",
        reducer_params={"family": "fig5"},
    )


def fattree_panel() -> Panel:
    """Fat-tree permutation traffic under multipath routing — promoted
    from ``examples/specs/fattree_multipath_cell.json`` once its
    measured cross-engine FCT gap (0.21) proved stable. Exercises the
    one topology family where packet and fluid runs hash flows onto
    equal-cost paths independently, so the 0.6 bound deliberately
    leaves room for path-assignment skew on top of protocol gaps."""
    return Panel(
        name="fattree-pdq-agreement",
        title="fat-tree permutation: multipath packet vs fluid agreement",
        base=ScenarioSpec(
            protocol="PDQ(Full)",
            topology=TopologySpec("fattree", {"n_servers": 16}),
            workload=WorkloadSpec("fig8.permutation", {
                "flows_per_server": 1,
                "mean_size": 100 * KBYTE,
            }),
            engine="packet",
            sim_deadline=4.0,
        ),
        axes=(("seed", (1,)), ("engine", ENGINES)),
        reducer="validate.agreement",
        reducer_params={"family": "fattree", "fct_rtol": 0.6},
    )


def faults_panel(
        protocols: Sequence[str] = ("PDQ(Full)", "RCP")) -> Panel:
    """Degraded network: the fat-tree permutation scenario with one
    core uplink scheduled to fail mid-run, forcing both engines through
    the reroute path of :mod:`repro.faults`. Measured mean-FCT gaps on
    this cell are 0.28 (PDQ) and 0.10 (RCP); the 0.6 bound inherits the
    fat-tree multipath headroom since the surviving-path hash skew is
    the same phenomenon, now concentrated on fewer equal-cost paths."""
    return Panel(
        name="faults-link-down-agreement",
        title="degraded fat-tree: mid-run link failure, packet vs fluid",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=TopologySpec("fattree", {"n_servers": 16}),
            workload=WorkloadSpec("fig8.permutation", {
                "flows_per_server": 1,
                "mean_size": 400 * KBYTE,
            }),
            engine="packet",
            sim_deadline=4.0,
            faults={"events": [{"time": 0.002, "action": "link_down",
                                "a": "agg0_0", "b": "core0_0"}]},
        ),
        axes=(("protocol", tuple(protocols)), ("seed", (1,)),
              ("engine", ENGINES)),
        reducer="validate.agreement",
        reducer_params={"family": "faults", "fct_rtol": 0.6},
    )


def edge_empty_panel() -> Panel:
    """An empty workload: both engines must produce an empty collector."""
    return Panel(
        name="edge-empty-agreement",
        title="empty workload: emptiness agrees",
        base=ScenarioSpec(
            protocol="RCP",
            topology=TOPOLOGY,
            workload=WorkloadSpec("empty"),
            engine="packet",
            sim_deadline=0.5,
        ),
        axes=(("engine", ENGINES),),
        reducer="validate.agreement",
        # the exact bounds edge_pairs() pins (Tolerance defaults)
        reducer_params={"family": "edge", "fct_rtol": 0.0,
                        "app_tput_atol": 0.25, "completion_atol": 0.15},
    )


def edge_single_panel(
        protocols: Sequence[str] = VALIDATION_PROTOCOLS) -> Panel:
    """A single uncontended flow: FCT pinned near size/rate in both
    engines, so idealization gaps shrink to startup effects."""
    return Panel(
        name="edge-single-agreement",
        title="single uncontended flow: startup-only gaps",
        base=ScenarioSpec(
            protocol=protocols[0],
            topology=TOPOLOGY,
            workload=WorkloadSpec("single_flow", {
                "src": "h1", "dst": "h0",
                "size_bytes": 100 * KBYTE,
            }),
            engine="packet",
            sim_deadline=2.0,
        ),
        axes=(("protocol", tuple(protocols)), ("engine", ENGINES)),
        reducer="validate.agreement",
        # uncontended single flows get the tighter startup-only bounds,
        # exactly as edge_pairs() declares them
        reducer_params={"family": "edge",
                        "fct_rtol_by_protocol": dict(SINGLE_FLOW_RTOL)},
    )


# -- pairs derived from the panels --------------------------------------------------


def pairs_from_panel(panel: Panel, family: str, name_for,
                     tolerance_for_cell) -> list[ValidationPair]:
    """One :class:`ValidationPair` per packet-engine grid cell of a
    panel whose axes include ``engine``; ``name_for(combo)`` and
    ``tolerance_for_cell(combo, spec)`` shape the pair."""
    pairs = []
    for combo, spec in panel.cells():
        if combo.get("engine") != "packet":
            continue
        pairs.append(ValidationPair(
            name=name_for(combo),
            family=family,
            packet=spec,
            tolerance=tolerance_for_cell(combo, spec),
        ))
    return pairs


def fig3_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> list[ValidationPair]:
    def name_for(combo) -> str:
        tag = "dl" if combo["deadline"] else "nodl"
        return (f"fig3/{combo['protocol']}-n{combo['workload.n_flows']}"
                f"-{tag}-s{combo['seed']}")

    return pairs_from_panel(
        fig3_panel(quick, protocols), "fig3", name_for,
        lambda combo, spec: tolerance_for(spec.protocol),
    )


def fig5_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> list[ValidationPair]:
    def name_for(combo) -> str:
        return (f"fig5/{combo['protocol']}"
                f"-r{combo['workload.rate_per_sec']:.0f}-s{combo['seed']}")

    return pairs_from_panel(
        fig5_panel(quick, protocols), "fig5", name_for,
        lambda combo, spec: tolerance_for(spec.protocol),
    )


def edge_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> list[ValidationPair]:
    pairs = pairs_from_panel(
        edge_empty_panel(), "edge",
        lambda combo: "edge/empty",
        lambda combo, spec: Tolerance(fct_rtol=0.0),
    )
    pairs += pairs_from_panel(
        edge_single_panel(protocols), "edge",
        lambda combo: f"edge/single-{combo['protocol']}",
        lambda combo, spec: tolerance_for(
            spec.protocol, fct_rtol=SINGLE_FLOW_RTOL[spec.protocol]
        ),
    )
    return pairs


def fattree_pairs(quick: bool = False) -> list[ValidationPair]:
    def name_for(combo) -> str:
        return f"fattree/PDQ(Full)-s{combo['seed']}"

    return pairs_from_panel(
        fattree_panel(), "fattree", name_for,
        lambda combo, spec: Tolerance(
            fct_rtol=0.6,
            app_tput_atol=APP_TPUT_ATOL["PDQ(Full)"],
            completion_atol=COMPLETION_ATOL["PDQ(Full)"],
        ),
    )


def faults_pairs(quick: bool = False) -> list[ValidationPair]:
    def name_for(combo) -> str:
        return f"faults/link-down-{combo['protocol']}-s{combo['seed']}"

    return pairs_from_panel(
        faults_panel(), "faults", name_for,
        lambda combo, spec: Tolerance(
            fct_rtol=0.6,
            app_tput_atol=APP_TPUT_ATOL[spec.protocol],
            completion_atol=COMPLETION_ATOL[spec.protocol],
        ),
    )


def default_pairs(quick: bool = False) -> list[ValidationPair]:
    """The standard cross-engine validation grid (CI runs ``quick``)."""
    return (
        edge_pairs(quick) + fig3_pairs(quick) + fig5_pairs(quick)
        + fattree_pairs(quick) + faults_pairs(quick)
    )


# -- the agreement reducer ----------------------------------------------------------


@register_reducer("validate.agreement")
def _reduce_agreement(run, family: str = "custom",
                      fct_rtol: float | None = None,
                      app_tput_atol: float | None = None,
                      completion_atol: float | None = None,
                      fct_rtol_by_protocol: dict[str, float] | None = None,
                      ) -> dict:
    """Pair each grid cell across its ``engine`` axis and run the
    harness tolerance checks; tolerances default to the per-protocol
    bounds, overridable per panel (``fct_rtol_by_protocol`` wins over
    the builtin table, the flat ``fct_rtol`` over both). This is how a
    ``run-spec`` file declares its own cross-engine validation cells."""
    from repro.validate.harness import compare_pair

    cell_axes = [a for a in run.axis_names() if a != "engine"]
    cells: dict[tuple, dict[str, tuple]] = {}
    for combo, spec, collector in run.rows:
        if "engine" not in combo:
            raise ExperimentError(
                "validate.agreement needs an 'engine' axis pairing "
                "packet and flow runs"
            )
        cell = tuple(combo[a] for a in cell_axes)
        cells.setdefault(cell, {})[combo["engine"]] = (spec, collector)
    outcomes = []
    for cell, engines in cells.items():
        if set(engines) != set(ENGINES):
            raise ExperimentError(
                f"cell {cell!r} must run exactly the engines {ENGINES}, "
                f"got {sorted(engines)}"
            )
        packet_spec, packet = engines["packet"]
        _, fluid = engines["flow"]
        protocol = packet_spec.protocol
        rtol = fct_rtol
        if rtol is None and fct_rtol_by_protocol is not None:
            rtol = fct_rtol_by_protocol.get(protocol)
        tolerance = Tolerance(
            fct_rtol=(rtol if rtol is not None
                      else FCT_RTOL.get(protocol, 0.5)),
            app_tput_atol=(app_tput_atol if app_tput_atol is not None
                           else APP_TPUT_ATOL.get(protocol, 0.25)),
            completion_atol=(completion_atol if completion_atol is not None
                             else COMPLETION_ATOL.get(protocol, 0.20)),
        )
        label = "-".join(str(v) for v in cell) if cell else "cell"
        pair = ValidationPair(name=f"{family}/{label}", family=family,
                              packet=packet_spec, tolerance=tolerance)
        outcomes.append(compare_pair(pair, packet, fluid).to_dict())
    return {
        "family": family,
        "ok": all(o["ok"] for o in outcomes),
        "n_pairs": len(outcomes),
        "pairs": outcomes,
    }


register_experiment(Experiment(
    name="validate",
    title="cross-engine packet/fluid agreement grids",
    panels=(edge_empty_panel(), edge_single_panel(), fig3_panel(),
            fig5_panel(), fattree_panel(), faults_panel()),
))
