"""Matched packet/fluid scenario pairs and their agreement tolerances.

PDQ's evaluation (paper §5) rests on two simulators telling the same
story: the packet-level ns-2-style stack and the fluid flow-level model.
A :class:`ValidationPair` pins one scenario cell in both engines — the
specs differ *only* in ``engine`` — together with the tolerances within
which the two must agree.

Tolerances are declared per protocol, not globally, because the fluid
model idealizes different amounts of each protocol's machinery away:

* **RCP** maps almost directly onto explicit-rate fluid allocation, so
  the engines track each other within a few percent up to ~20 %.
* **PDQ** adds probe/ACK round trips and switch dampening the fluid
  model compresses; observed gaps stay under ~30 %.
* **D3** is rate-*request* based — every sender spends round trips
  re-requesting its reservation, and under contention the packet stack
  serves requests first-come-first-serve while the fluid model grants
  the idealized allocation instantly. Gaps up to ~2x are structural,
  which is exactly why the looser bound is pinned here: a regression
  that pushes D3 past it is a real behavior change, not noise.

The ``default_pairs`` grid covers fig3-style query aggregation and
fig5-style VL2 traffic (the acceptance grids) plus degenerate cells
(zero flows, a single flow) that bound the agreement analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.units import KBYTE, MSEC

#: validation protocols: every protocol with *both* a transport stack and
#: a fluid rate model (TCP has no fluid model, so it cannot be paired)
VALIDATION_PROTOCOLS = ("PDQ(Full)", "D3", "RCP")

TOPOLOGY = TopologySpec("single_rooted")


@dataclass(frozen=True)
class Tolerance:
    """Agreement bounds for one pair (packet measured against fluid).

    ``fct_rtol``       — max relative mean-FCT gap, |pkt - fluid| / fluid
    ``app_tput_atol``  — max absolute application-throughput gap
    ``completion_atol`` — max absolute completed-fraction gap
    """

    fct_rtol: float
    app_tput_atol: float = 0.25
    completion_atol: float = 0.15


#: per-protocol mean-FCT tolerance (see module docstring for the why;
#: measured worst cases on the default grids: PDQ 0.45, RCP 0.17, D3 1.40)
FCT_RTOL: Dict[str, float] = {
    "PDQ(Full)": 0.55,
    "RCP": 0.45,
    "D3": 2.00,
}

#: per-protocol application-throughput tolerance. PDQ's packet stack
#: misses deadlines under heavy fan-in (probe/termination round trips)
#: that the fluid allocator meets exactly; measured worst case 0.22.
APP_TPUT_ATOL: Dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.20,
    "D3": 0.35,
}

#: per-protocol completed-fraction tolerance (same mechanism: packet PDQ
#: early-terminates deadline-missing flows the fluid model completes)
COMPLETION_ATOL: Dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.20,
    "D3": 0.25,
}

#: single-uncontended-flow mean-FCT tolerance. Contention idealizations
#: vanish but *startup* round trips remain — dominant for D3, whose
#: sender spends RTTs acquiring its reservation before data flows
#: (measured: RCP 0.04, PDQ 0.18, D3 0.64).
SINGLE_FLOW_RTOL: Dict[str, float] = {
    "PDQ(Full)": 0.30,
    "RCP": 0.25,
    "D3": 0.85,
}


def tolerance_for(protocol: str,
                  fct_rtol: Optional[float] = None) -> Tolerance:
    return Tolerance(
        fct_rtol=fct_rtol if fct_rtol is not None else FCT_RTOL[protocol],
        app_tput_atol=APP_TPUT_ATOL[protocol],
        completion_atol=COMPLETION_ATOL[protocol],
    )


@dataclass(frozen=True)
class ValidationPair:
    """One scenario cell expressed in both engines."""

    name: str
    family: str
    packet: ScenarioSpec
    tolerance: Tolerance

    def __post_init__(self) -> None:
        if self.packet.engine != "packet":
            raise ValueError(f"pair {self.name!r}: base spec must be packet")

    @property
    def fluid(self) -> ScenarioSpec:
        """The matched fluid spec: identical except for the engine."""
        return self.packet.with_(engine="flow")

    @property
    def protocol(self) -> str:
        return self.packet.protocol

    def specs(self) -> Tuple[ScenarioSpec, ScenarioSpec]:
        return (self.packet, self.fluid)


# -- pair families ------------------------------------------------------------------


def fig3_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> List[ValidationPair]:
    """Fig-3-style query aggregation on the 12-server single-rooted tree:
    senders h1..h11 fan in to h0, with and without deadlines."""
    flow_counts = (3, 10) if quick else (3, 10, 18)
    seeds = (1,) if quick else (1, 2)
    pairs: List[ValidationPair] = []
    for protocol in protocols:
        for n_flows in flow_counts:
            for mean_deadline in (None, 20 * MSEC):
                for seed in seeds:
                    spec = ScenarioSpec(
                        protocol=protocol,
                        topology=TOPOLOGY,
                        workload=WorkloadSpec("fig3.aggregation", {
                            "n_flows": n_flows,
                            "mean_size": 100 * KBYTE,
                            "mean_deadline": mean_deadline,
                        }),
                        engine="packet",
                        seed=seed,
                        sim_deadline=2.0 if mean_deadline else 4.0,
                    )
                    tag = "dl" if mean_deadline else "nodl"
                    pairs.append(ValidationPair(
                        name=f"fig3/{protocol}-n{n_flows}-{tag}-s{seed}",
                        family="fig3",
                        packet=spec,
                        tolerance=tolerance_for(protocol),
                    ))
    return pairs


def fig5_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> List[ValidationPair]:
    """Fig-5-style VL2 mix: Poisson arrivals between random host pairs,
    short flows carrying deadlines, the elephant tail as background."""
    rates = (1500.0,) if quick else (1000.0, 2500.0)
    seeds = (1,) if quick else (1, 2)
    duration = 0.03
    pairs: List[ValidationPair] = []
    for protocol in protocols:
        for rate in rates:
            for seed in seeds:
                spec = ScenarioSpec(
                    protocol=protocol,
                    topology=TOPOLOGY,
                    workload=WorkloadSpec("fig5.vl2", {
                        "rate_per_sec": rate,
                        "duration": duration,
                        "mean_deadline": 20 * MSEC,
                    }),
                    engine="packet",
                    seed=seed,
                    sim_deadline=duration + 1.0,
                )
                pairs.append(ValidationPair(
                    name=f"fig5/{protocol}-r{rate:.0f}-s{seed}",
                    family="fig5",
                    packet=spec,
                    tolerance=tolerance_for(protocol),
                ))
    return pairs


def edge_pairs(quick: bool = False,
               protocols: Sequence[str] = VALIDATION_PROTOCOLS,
               ) -> List[ValidationPair]:
    """Degenerate cells that bound agreement analytically: an empty
    workload (both engines must produce an empty collector) and a single
    uncontended flow (FCT pinned near size/rate in both engines)."""
    pairs = [ValidationPair(
        name="edge/empty",
        family="edge",
        packet=ScenarioSpec(
            protocol="RCP",
            topology=TOPOLOGY,
            workload=WorkloadSpec("empty"),
            engine="packet",
            sim_deadline=0.5,
        ),
        tolerance=Tolerance(fct_rtol=0.0),
    )]
    for protocol in protocols:
        pairs.append(ValidationPair(
            name=f"edge/single-{protocol}",
            family="edge",
            packet=ScenarioSpec(
                protocol=protocol,
                topology=TOPOLOGY,
                workload=WorkloadSpec("single_flow", {
                    "src": "h1", "dst": "h0",
                    "size_bytes": 100 * KBYTE,
                }),
                engine="packet",
                sim_deadline=2.0,
            ),
            # uncontended, so idealization gaps shrink to startup effects
            tolerance=tolerance_for(
                protocol, fct_rtol=SINGLE_FLOW_RTOL[protocol]
            ),
        ))
    return pairs


def default_pairs(quick: bool = False) -> List[ValidationPair]:
    """The standard cross-engine validation grid (CI runs ``quick``)."""
    return (
        edge_pairs(quick) + fig3_pairs(quick) + fig5_pairs(quick)
    )
