"""Workload generation: flow specifications, size/deadline distributions,
the paper's traffic patterns (§5.2-§5.3), Poisson arrival processes, and
synthetic stand-ins for the two measured datacenter workloads.
"""

from repro.workload.arrivals import poisson_arrivals, simultaneous_arrivals
from repro.workload.deadlines import exponential_deadlines
from repro.workload.flow import FlowSpec
from repro.workload.open_system import open_system, vl2_mixture_mean
from repro.workload.stream import FlowStream
from repro.workload.patterns import (
    aggregation_flows,
    random_permutation_flows,
    staggered_flows,
    stride_flows,
)
from repro.workload.sizes import pareto_sizes, uniform_sizes
from repro.workload.vl2 import vl2_flow_sizes
from repro.workload.edu import edu1_flow_summaries

__all__ = [
    "FlowSpec",
    "FlowStream",
    "open_system",
    "vl2_mixture_mean",
    "aggregation_flows",
    "stride_flows",
    "staggered_flows",
    "random_permutation_flows",
    "uniform_sizes",
    "pareto_sizes",
    "exponential_deadlines",
    "poisson_arrivals",
    "simultaneous_arrivals",
    "vl2_flow_sizes",
    "edu1_flow_summaries",
]
