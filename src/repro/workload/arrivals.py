"""Flow arrival processes."""

from __future__ import annotations


from repro.errors import WorkloadError
from repro.utils.rng import SeedLike, spawn_rng


def simultaneous_arrivals(n: int, at: float = 0.0) -> list[float]:
    """All flows arrive at the same instant (query aggregation, §5.2)."""
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    return [at] * n


def poisson_arrivals(rate_per_sec: float, duration: float,
                     rng: SeedLike = None, start: float = 0.0) -> list[float]:
    """Poisson process arrivals over [start, start + duration) (§5.3's flow
    arrival rate sweeps)."""
    if rate_per_sec <= 0:
        raise WorkloadError(f"rate must be positive, got {rate_per_sec}")
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    gen = spawn_rng(rng, "arrivals:poisson")
    arrivals = []
    t = start
    while True:
        t += float(gen.exponential(1.0 / rate_per_sec))
        if t >= start + duration:
            break
        arrivals.append(t)
    return arrivals
