"""Flow-deadline distributions (§5.1).

"The flow deadline is drawn from an exponential distribution with mean
20 ms, as suggested by [D3]. ... we impose a lower bound on deadlines, and
we set it to 3 ms in our experiments."
"""

from __future__ import annotations


from repro.errors import WorkloadError
from repro.units import MSEC
from repro.utils.rng import SeedLike, spawn_rng

DEFAULT_MEAN = 20 * MSEC
DEFAULT_FLOOR = 3 * MSEC


def exponential_deadlines(n: int, mean: float = DEFAULT_MEAN,
                          floor: float = DEFAULT_FLOOR,
                          rng: SeedLike = None) -> list[float]:
    """Exponential deadlines (relative to flow arrival) with a floor."""
    if mean <= 0:
        raise WorkloadError(f"mean deadline must be positive, got {mean}")
    if floor < 0:
        raise WorkloadError(f"deadline floor must be >= 0, got {floor}")
    gen = spawn_rng(rng, "deadlines:exp")
    return [max(floor, float(gen.exponential(mean))) for _ in range(n)]
