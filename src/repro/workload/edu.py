"""Synthetic stand-in for the EDU1 university-datacenter workload
(Benson et al. [6], used in §5.3 / Fig 5c).

Benson et al. characterize university datacenter traffic as ON/OFF at the
packet level with lognormal inter-arrivals and predominantly small flows.
We generate a synthetic packet trace with those properties and run it
through the same Bro-like summarization (:mod:`repro.workload.trace`) the
paper used, yielding flow summaries for the simulator.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import SeedLike, spawn_rng
from repro.workload.flow import FlowSpec
from repro.workload.trace import TracePacket, flows_from_trace


def edu1_packet_trace(hosts: Sequence[str], duration: float,
                      flows_per_second: float, rng: SeedLike = None,
                      mean_packets_per_flow: float = 10.0,
                      packet_bytes: int = 1_000) -> list[TracePacket]:
    """Generate an EDU1-like synthetic packet trace.

    Flow starts follow a Poisson process; within a flow, packets arrive in
    an ON burst with lognormal inter-arrival gaps; flow lengths (in
    packets) are geometric, so most flows are a handful of packets with a
    heavy-ish tail.
    """
    if len(hosts) < 2:
        raise WorkloadError("need >= 2 hosts")
    if duration <= 0 or flows_per_second <= 0:
        raise WorkloadError("duration and rate must be positive")
    gen = spawn_rng(rng, "edu1:trace")
    packets: list[TracePacket] = []
    t = 0.0
    key = 0
    p_stop = 1.0 / mean_packets_per_flow
    while True:
        t += float(gen.exponential(1.0 / flows_per_second))
        if t >= duration:
            break
        src_i = int(gen.integers(len(hosts)))
        dst_i = int(gen.integers(len(hosts) - 1))
        if dst_i >= src_i:
            dst_i += 1
        n_packets = 1 + int(gen.geometric(p_stop))
        when = t
        for _ in range(n_packets):
            packets.append(TracePacket(
                time=when, src=hosts[src_i], dst=hosts[dst_i],
                key=key, size_bytes=packet_bytes,
            ))
            # lognormal ON-period gap (Benson et al.), ~100 us median
            when += float(gen.lognormal(mean=np.log(1e-4), sigma=1.0))
        key += 1
    packets.sort(key=lambda p: p.time)
    return packets


def edu1_flow_summaries(hosts: Sequence[str], duration: float,
                        flows_per_second: float, rng: SeedLike = None,
                        fid_start: int = 0) -> list[FlowSpec]:
    """EDU1-like workload: synthetic packet trace -> Bro-like flow
    summaries, ready for either simulator."""
    trace = edu1_packet_trace(hosts, duration, flows_per_second, rng)
    return flows_from_trace(trace, idle_timeout=0.1, fid_start=fid_start)
