"""Flow specification shared by the packet-level and flow-level simulators."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class FlowSpec:
    """One flow to simulate.

    ``deadline`` is *relative* to ``arrival`` (the paper draws "time until
    deadline" distributions); ``absolute_deadline`` converts. ``criticality``
    optionally overrides the comparator input (used by the Random criticality
    scheme of §5.6); None means "derive from deadline/size as usual".
    """

    fid: int
    src: str
    dst: str
    size_bytes: int
    arrival: float = 0.0
    deadline: float | None = None
    criticality: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError(f"flow {self.fid}: size must be positive")
        if self.arrival < 0:
            raise WorkloadError(f"flow {self.fid}: negative arrival time")
        if self.deadline is not None and self.deadline <= 0:
            raise WorkloadError(f"flow {self.fid}: deadline must be positive")
        if self.src == self.dst:
            raise WorkloadError(f"flow {self.fid}: src == dst ({self.src})")

    @property
    def has_deadline(self) -> bool:
        return self.deadline is not None

    @property
    def absolute_deadline(self) -> float | None:
        if self.deadline is None:
            return None
        return self.arrival + self.deadline

    def with_(self, **changes) -> "FlowSpec":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe), inverse of :meth:`from_dict`."""
        return {
            "fid": self.fid,
            "src": self.src,
            "dst": self.dst,
            "size_bytes": self.size_bytes,
            "arrival": self.arrival,
            "deadline": self.deadline,
            "criticality": self.criticality,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowSpec":
        return cls(
            fid=data["fid"],
            src=data["src"],
            dst=data["dst"],
            size_bytes=data["size_bytes"],
            arrival=data.get("arrival", 0.0),
            deadline=data.get("deadline"),
            criticality=data.get("criticality"),
        )
