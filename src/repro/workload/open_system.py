"""Open-system workload: an arrival *process*, not a flow list.

The paper's figures are closed batches, but PDQ's headline claim is a
steady-state property; this builder expresses the load sweeps those
figures cannot: Poisson or heavy-tailed (Pareto) interarrivals at a
given flow rate — or at a target utilization of the host access links —
over a target *duration*, with per-flow sizes drawn one at a time from
the VL2 mixture (or the uniform/Pareto families of
:mod:`repro.workload.sizes`) between uniformly random host pairs. Short
flows optionally carry exponential deadlines, mirroring
:func:`repro.experiments.fig5.vl2_workload`.

The result is a :class:`~repro.workload.stream.FlowStream`: nothing is
materialized, every draw comes from one ``spawn_rng(seed,
"workload:open_system")`` stream in a fixed per-flow order (interarrival,
size band, size, src, dst, deadline), so a given (seed, params) pair
yields the identical flow sequence whether it is consumed by the fluid
engine, the packet engine, or ``materialize()`` in a test.

Registered as the ``open_system`` workload kind in
:mod:`repro.campaign.registry`.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.topology.base import Topology
from repro.units import KBYTE
from repro.utils.rng import spawn_rng
from repro.workload.flow import FlowSpec
from repro.workload.stream import FlowStream
from repro.workload.vl2 import SHORT_FLOW_CUTOFF, VL2_BANDS


def log_uniform_band_mean(lo: float, hi: float,
                          cap: float | None = None) -> float:
    """Analytic mean of a log-uniform draw on [lo, hi], optionally
    truncated at ``cap``: for X = exp(U), U ~ Unif(ln lo, ln hi),
    E[X] = (hi - lo) / ln(hi / lo) and
    E[min(X, c)] = ((c - lo) + c * ln(hi / c)) / ln(hi / lo)."""
    if not 0 < lo < hi:
        raise WorkloadError(f"bad log-uniform band [{lo}, {hi}]")
    span = math.log(hi / lo)
    if cap is None or cap >= hi:
        return (hi - lo) / span
    if cap <= lo:
        return float(cap)
    return ((cap - lo) + cap * math.log(hi / cap)) / span


def vl2_mixture_mean(bands: Sequence[tuple[float, float, float]] = VL2_BANDS,
                     scale: float = 1.0,
                     cap_bytes: float | None = None) -> float:
    """Analytic mean flow size of the VL2 band mixture (used to convert
    ``target_load`` into an arrival rate without sampling)."""
    return sum(
        p * log_uniform_band_mean(lo * scale, hi * scale, cap_bytes)
        for p, lo, hi in bands
    )


def host_access_bps(topology: Topology) -> float:
    """Aggregate host access capacity: the sum over hosts of each host's
    slowest incident link. Every flow's bytes leave exactly one source
    host, so ``arrival_rate * mean_size_bits / host_access_bps`` is the
    mean source-side utilization under uniformly random sources."""
    graph = topology.graph
    total = 0.0
    for host in topology.hosts:
        rates = [data["rate_bps"] for _, _, data in
                 graph.edges(host, data=True)]
        if not rates:
            raise WorkloadError(f"host {host!r} has no links")
        total += min(rates)
    return total


def open_system(
    topology: Topology,
    seed: int,
    *,
    duration: float,
    rate_per_sec: float | None = None,
    target_load: float | None = None,
    arrival: str = "poisson",
    arrival_shape: float = 1.5,
    sizes: str = "vl2",
    mean_size_bytes: float = 100 * KBYTE,
    size_scale: float = 1.0,
    cap_bytes: int | None = 1_000_000,
    size_tail_index: float = 1.1,
    mean_deadline: float | None = None,
    deadline_cutoff: float | None = None,
    drain: float = 1.0,
    start: float = 0.0,
) -> FlowStream:
    """Build an open-system :class:`FlowStream` over ``topology``.

    Exactly one of ``rate_per_sec`` (flows/sec) and ``target_load``
    (mean source-access-link utilization in [0, 1)) sizes the process.
    ``arrival`` is ``"poisson"`` or ``"pareto"`` (heavy-tailed
    interarrivals with tail index ``arrival_shape`` > 1, same mean gap).
    ``sizes`` is ``"vl2"`` (``size_scale``/``cap_bytes`` as in
    :func:`~repro.workload.vl2.vl2_flow_sizes`), ``"uniform"`` or
    ``"pareto"`` (both around ``mean_size_bytes``). With
    ``mean_deadline`` set, flows smaller than ``deadline_cutoff``
    (default: the scaled 40 KB short-flow cutoff) draw exponential
    deadlines. The stream's horizon is ``start + duration + drain``.
    """
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    if (rate_per_sec is None) == (target_load is None):
        raise WorkloadError(
            "open_system needs exactly one of rate_per_sec / target_load"
        )
    if arrival not in ("poisson", "pareto"):
        raise WorkloadError(
            f"unknown arrival process {arrival!r} (poisson or pareto)"
        )
    if arrival == "pareto" and arrival_shape <= 1.0:
        raise WorkloadError(
            f"arrival_shape must be > 1 for a finite mean gap, "
            f"got {arrival_shape}"
        )
    if sizes not in ("vl2", "uniform", "pareto"):
        raise WorkloadError(
            f"unknown size distribution {sizes!r} (vl2, uniform or pareto)"
        )
    if sizes == "pareto" and size_tail_index <= 1.0:
        raise WorkloadError(
            f"size tail index must be > 1, got {size_tail_index}"
        )
    if sizes == "vl2":
        mean_size = vl2_mixture_mean(scale=size_scale, cap_bytes=cap_bytes)
    else:
        mean_size = float(mean_size_bytes)
    if target_load is not None:
        if not 0.0 < target_load:
            raise WorkloadError(
                f"target_load must be positive, got {target_load}"
            )
        rate_per_sec = target_load * host_access_bps(topology) / (
            8.0 * mean_size
        )
    if rate_per_sec <= 0:
        raise WorkloadError(f"rate must be positive, got {rate_per_sec}")
    hosts = list(topology.hosts)
    if len(hosts) < 2:
        raise WorkloadError("open_system needs at least two hosts")
    if deadline_cutoff is None:
        deadline_cutoff = SHORT_FLOW_CUTOFF * size_scale
    generator = _generate(
        hosts=hosts,
        rng=spawn_rng(seed, "workload:open_system"),
        end=start + duration,
        start=start,
        mean_gap=1.0 / rate_per_sec,
        arrival=arrival,
        arrival_shape=arrival_shape,
        sizes=sizes,
        mean_size_bytes=float(mean_size_bytes),
        size_scale=size_scale,
        cap_bytes=cap_bytes,
        size_tail_index=size_tail_index,
        mean_deadline=mean_deadline,
        deadline_cutoff=deadline_cutoff,
    )
    return FlowStream(
        generator,
        horizon=start + duration + drain,
        expected_flows=int(rate_per_sec * duration),
    )


def _generate(hosts: list[str], rng: np.random.Generator, end: float,
              start: float, mean_gap: float, arrival: str,
              arrival_shape: float, sizes: str, mean_size_bytes: float,
              size_scale: float, cap_bytes: int | None,
              size_tail_index: float, mean_deadline: float | None,
              deadline_cutoff: float) -> Iterator[FlowSpec]:
    """One flow per iteration, O(1) state; draw order is part of the
    determinism contract documented in the module docstring."""
    n_hosts = len(hosts)
    # cumulative band thresholds for the per-flow VL2 band pick
    cum = []
    acc = 0.0
    for p, lo, hi in VL2_BANDS:
        acc += p
        cum.append((acc, math.log(lo * size_scale), math.log(hi * size_scale)))
    # Pareto interarrivals: xm * (1 + Pareto(a)) has mean xm * a / (a - 1)
    gap_xm = mean_gap * (arrival_shape - 1.0) / arrival_shape
    uni_lo = 2 * KBYTE
    uni_hi = 2.0 * mean_size_bytes - uni_lo
    pareto_xm = mean_size_bytes * (size_tail_index - 1.0) / size_tail_index
    t = start
    fid = 0
    while True:
        if arrival == "poisson":
            t += float(rng.exponential(mean_gap))
        else:
            t += gap_xm * (1.0 + float(rng.pareto(arrival_shape)))
        if t >= end:
            return
        if sizes == "vl2":
            u = float(rng.random())
            log_lo, log_hi = cum[-1][1], cum[-1][2]
            for threshold, band_lo, band_hi in cum:
                if u <= threshold:
                    log_lo, log_hi = band_lo, band_hi
                    break
            size = math.exp(float(rng.uniform(log_lo, log_hi)))
            if cap_bytes is not None and size > cap_bytes:
                size = cap_bytes
        elif sizes == "uniform":
            size = float(rng.uniform(uni_lo, uni_hi))
        else:
            size = pareto_xm * (1.0 + float(rng.pareto(size_tail_index)))
        size_bytes = max(1, int(size))
        src_i = int(rng.integers(n_hosts))
        dst_i = int(rng.integers(n_hosts - 1))
        if dst_i >= src_i:
            dst_i += 1
        deadline = None
        if mean_deadline is not None and size_bytes < deadline_cutoff:
            deadline = float(rng.exponential(mean_deadline))
        yield FlowSpec(fid=fid, src=hosts[src_i], dst=hosts[dst_i],
                       size_bytes=size_bytes, arrival=t, deadline=deadline)
        fid += 1
