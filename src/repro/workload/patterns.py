"""Traffic patterns from §5.2-§5.3.

* Aggregation -- many senders to one receiver (the query-aggregation
  scenario; flows are spread over senders as evenly as possible).
* Stride(i) -- server x sends to server (x + i) mod N.
* Staggered Prob(p) -- destination under the same ToR with probability p,
  anywhere otherwise.
* Random Permutation -- 1-to-1 mapping, each server sends to exactly one
  randomly selected server and receives from exactly one.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import WorkloadError
from repro.topology.single_rooted import SingleRootedTree
from repro.utils.rng import SeedLike, spawn_rng
from repro.workload.flow import FlowSpec


def _build(pairs: Sequence[tuple], sizes: Sequence[int],
           deadlines: Sequence[float | None] | None,
           arrivals: Sequence[float] | None,
           fid_start: int) -> list[FlowSpec]:
    if len(pairs) != len(sizes):
        raise WorkloadError(
            f"{len(pairs)} pairs but {len(sizes)} sizes"
        )
    if deadlines is not None and len(deadlines) != len(pairs):
        raise WorkloadError("deadlines length mismatch")
    if arrivals is not None and len(arrivals) != len(pairs):
        raise WorkloadError("arrivals length mismatch")
    flows = []
    for i, ((src, dst), size) in enumerate(zip(pairs, sizes, strict=True)):
        flows.append(FlowSpec(
            fid=fid_start + i,
            src=src,
            dst=dst,
            size_bytes=int(size),
            arrival=arrivals[i] if arrivals is not None else 0.0,
            deadline=deadlines[i] if deadlines is not None else None,
        ))
    return flows


def aggregation_flows(senders: Sequence[str], receiver: str,
                      sizes: Sequence[int],
                      deadlines: Sequence[float | None] | None = None,
                      arrivals: Sequence[float] | None = None,
                      rng: SeedLike = None,
                      fid_start: int = 0) -> list[FlowSpec]:
    """Spread ``len(sizes)`` flows over ``senders`` toward ``receiver`` so
    each sender carries floor(f/n) or ceil(f/n) flows (§5.2 footnote)."""
    if not senders:
        raise WorkloadError("need at least one sender")
    gen = spawn_rng(rng, "pattern:aggregation")
    order = list(senders)
    gen.shuffle(order)
    pairs = [(order[i % len(order)], receiver) for i in range(len(sizes))]
    return _build(pairs, sizes, deadlines, arrivals, fid_start)


def stride_flows(hosts: Sequence[str], stride: int, sizes: Sequence[int],
                 deadlines: Sequence[float | None] | None = None,
                 arrivals: Sequence[float] | None = None,
                 fid_start: int = 0) -> list[FlowSpec]:
    """Stride(i): host x sends to host (x + i) mod N. ``sizes`` must have
    one entry per host (or fewer, using the first hosts)."""
    n = len(hosts)
    if n < 2:
        raise WorkloadError("stride needs >= 2 hosts")
    if stride % n == 0:
        raise WorkloadError(f"stride {stride} maps hosts onto themselves")
    pairs = [(hosts[x], hosts[(x + stride) % n]) for x in range(len(sizes))]
    return _build(pairs, sizes, deadlines, arrivals, fid_start)


def staggered_flows(tree: SingleRootedTree, sizes: Sequence[int],
                    p_local: float,
                    deadlines: Sequence[float | None] | None = None,
                    arrivals: Sequence[float] | None = None,
                    rng: SeedLike = None,
                    fid_start: int = 0) -> list[FlowSpec]:
    """Staggered Prob(p): each flow's sender is random; its destination is
    under the same ToR with probability p, anywhere else otherwise."""
    if not 0.0 <= p_local <= 1.0:
        raise WorkloadError(f"p_local must be in [0, 1], got {p_local}")
    gen = spawn_rng(rng, "pattern:staggered")
    hosts = [f"h{i}" for i in range(tree.n_servers)]
    pairs = []
    for _ in sizes:
        src = hosts[int(gen.integers(len(hosts)))]
        same_rack = [
            h for h in hosts if h != src and tree.same_rack(h, src)
        ]
        other_rack = [
            h for h in hosts if not tree.same_rack(h, src)
        ]
        local = same_rack and (not other_rack or gen.random() < p_local)
        bucket = same_rack if local else other_rack
        dst = bucket[int(gen.integers(len(bucket)))]
        pairs.append((src, dst))
    return _build(pairs, sizes, deadlines, arrivals, fid_start)


def random_permutation_flows(hosts: Sequence[str], sizes: Sequence[int],
                             deadlines=None, arrivals=None,
                             rng: SeedLike = None,
                             fid_start: int = 0) -> list[FlowSpec]:
    """Random permutation: a derangement of hosts; round r maps host x to
    its image in a fresh derangement, so every host sends and receives
    exactly once per round. ``len(sizes)`` must be a multiple of
    ``len(hosts)`` (each round consumes one size per host)."""
    n = len(hosts)
    if n < 2:
        raise WorkloadError("permutation needs >= 2 hosts")
    if len(sizes) % n != 0:
        raise WorkloadError(
            f"{len(sizes)} sizes is not a whole number of rounds over "
            f"{n} hosts"
        )
    gen = spawn_rng(rng, "pattern:permutation")
    pairs = []
    for _ in range(len(sizes) // n):
        perm = _derangement(n, gen)
        pairs.extend((hosts[x], hosts[perm[x]]) for x in range(n))
    return _build(pairs, sizes, deadlines, arrivals, fid_start)


def _derangement(n: int, gen) -> list[int]:
    """Random permutation with no fixed points (rejection sampling)."""
    while True:
        perm = list(gen.permutation(n))
        if all(perm[i] != i for i in range(n)):
            return perm
