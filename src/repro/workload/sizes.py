"""Flow-size distributions used in the evaluation (§5.1, §5.6)."""

from __future__ import annotations


import numpy as np

from repro.errors import WorkloadError
from repro.units import KBYTE
from repro.utils.rng import SeedLike, spawn_rng

#: the paper's deadline-flow size interval: uniform on [2 KB, 198 KB]
DEADLINE_SIZE_LO = 2 * KBYTE
DEADLINE_SIZE_HI = 198 * KBYTE


def uniform_sizes(n: int, mean_bytes: float, rng: SeedLike = None,
                  min_bytes: int = 2 * KBYTE) -> list[int]:
    """Uniform sizes with the given mean: U[min, 2*mean - min] (the paper
    draws sizes "uniformly from an interval with a mean of 100/1000 KByte",
    matching U[2 KB, 198 KB] for the 100 KB case)."""
    if mean_bytes <= min_bytes:
        raise WorkloadError(
            f"mean {mean_bytes} must exceed the minimum size {min_bytes}"
        )
    gen = spawn_rng(rng, "sizes:uniform")
    hi = 2.0 * mean_bytes - min_bytes
    return [int(gen.uniform(min_bytes, hi)) for _ in range(n)]


def pareto_sizes(n: int, mean_bytes: float, rng: SeedLike = None,
                 tail_index: float = 1.1, min_bytes: int = 1 * KBYTE) -> list[int]:
    """Heavy-tailed Pareto sizes with the given mean and tail index
    (Fig 10 uses tail index 1.1)."""
    if tail_index <= 1.0:
        raise WorkloadError(
            f"tail index must be > 1 for a finite mean, got {tail_index}"
        )
    gen = spawn_rng(rng, "sizes:pareto")
    # Pareto mean = alpha * xm / (alpha - 1); solve for xm given the mean
    xm = mean_bytes * (tail_index - 1.0) / tail_index
    sizes = []
    for _ in range(n):
        size = xm * (1.0 + gen.pareto(tail_index))
        sizes.append(max(min_bytes, int(size)))
    return sizes
