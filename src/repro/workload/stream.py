"""Lazy flow sources for open-system (streaming) workloads.

Closed-batch workload builders return a materialized ``list[FlowSpec]``;
an arrival *process* has no natural flow count, so open-system builders
return a :class:`FlowStream` instead — a one-item-lookahead wrapper over
a generator of arrival-ordered :class:`~repro.workload.flow.FlowSpec`.
Both engines pull from it incrementally (``take_until`` per admission
window), so at no point does the whole workload exist in memory.

A stream carries its own simulated-time ``horizon`` (last possible
arrival plus a drain margin). The campaign layer uses it as the default
``sim_deadline``, which is what keeps duration-bounded open-system runs
terminating cleanly under :class:`~repro.campaign.runner.CampaignRunner`
wall-clock budgets instead of running the engines open-ended.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import WorkloadError
from repro.workload.flow import FlowSpec


class FlowStream:
    """Arrival-ordered, single-pass source of :class:`FlowSpec`.

    ``horizon`` is the absolute simulated time by which every flow has
    arrived (plus any drain margin the builder added); ``expected_flows``
    is an a-priori estimate for reporting only — the true count is
    whatever the generator yields (``emitted`` tracks it).
    """

    __slots__ = ("horizon", "expected_flows", "emitted", "_it", "_next",
                 "_last_arrival")

    def __init__(self, flows: Iterable[FlowSpec],
                 horizon: float | None = None,
                 expected_flows: int | None = None):
        self.horizon = horizon
        self.expected_flows = expected_flows
        self.emitted = 0
        self._it: Iterator[FlowSpec] = iter(flows)
        self._next: FlowSpec | None = None
        self._last_arrival = float("-inf")
        self._advance()

    def _advance(self) -> None:
        try:
            spec = next(self._it)
        except StopIteration:
            self._next = None
            return
        if spec.arrival < self._last_arrival:
            raise WorkloadError(
                f"flow stream arrivals must be non-decreasing: flow "
                f"{spec.fid} arrives at {spec.arrival} after "
                f"{self._last_arrival}"
            )
        self._last_arrival = spec.arrival
        self._next = spec

    @property
    def exhausted(self) -> bool:
        return self._next is None

    def peek_arrival(self) -> float | None:
        """Arrival time of the next flow, or None when exhausted."""
        spec = self._next
        return None if spec is None else spec.arrival

    # repro: hot
    def take_until(self, cutoff: float) -> list[FlowSpec]:
        """Pop every flow arriving at or before ``cutoff`` (engine
        admission windows call this each tick)."""
        out = []
        spec = self._next
        while spec is not None and spec.arrival <= cutoff:
            out.append(spec)
            self._advance()
            spec = self._next
        self.emitted += len(out)
        return out

    def materialize(self) -> list[FlowSpec]:
        """Drain the remaining flows into a list (tests and closed-batch
        comparisons only — this defeats the memory bound)."""
        out = []
        spec = self._next
        while spec is not None:
            out.append(spec)
            self._advance()
            spec = self._next
        self.emitted += len(out)
        return out
