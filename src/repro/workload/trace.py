"""Packet-trace to flow-summary conversion (the Bro role in §5.3).

The paper feeds a university packet trace through Bro to obtain flow-level
summaries, then replays those in the simulator. We reproduce the pipeline:
:class:`TracePacket` records form a packet trace; :func:`flows_from_trace`
groups them into flows by 5-tuple-ish key with an idle timeout, exactly the
summarization a network monitor performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.errors import WorkloadError
from repro.workload.flow import FlowSpec


@dataclass(frozen=True)
class TracePacket:
    """One packet observation: time, endpoints, a flow key (port pair
    stand-in) and payload bytes."""

    time: float
    src: str
    dst: str
    key: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError("trace packet must carry bytes")
        if self.time < 0:
            raise WorkloadError("negative trace timestamp")


def flows_from_trace(packets: Iterable[TracePacket],
                     idle_timeout: float = 0.1,
                     fid_start: int = 0) -> list[FlowSpec]:
    """Summarize a packet trace into flows.

    Packets sharing (src, dst, key) belong to the same flow until a gap
    longer than ``idle_timeout`` splits it (standard monitor behaviour).
    Flow arrival = first packet time, size = total payload bytes.
    """
    ordered = sorted(packets, key=lambda p: p.time)
    # open flows: (src, dst, key) -> [arrival, last_time, bytes]
    open_flows: dict[tuple[str, str, int], list[float]] = {}
    finished: list[tuple[float, str, str, int]] = []

    def _close(state: list[float], src: str, dst: str) -> None:
        arrival, _, size = state
        finished.append((arrival, src, dst, int(size)))

    for packet in ordered:
        key = (packet.src, packet.dst, packet.key)
        state = open_flows.get(key)
        if state is not None and packet.time - state[1] > idle_timeout:
            _close(state, packet.src, packet.dst)
            state = None
        if state is None:
            open_flows[key] = [packet.time, packet.time, packet.size_bytes]
        else:
            state[1] = packet.time
            state[2] += packet.size_bytes
    for (src, dst, _), state in open_flows.items():
        _close(state, src, dst)

    finished.sort()
    return [
        FlowSpec(fid=fid_start + i, src=src, dst=dst, size_bytes=size,
                 arrival=arrival)
        for i, (arrival, src, dst, size) in enumerate(finished)
    ]
