"""Synthetic stand-in for the VL2 production-datacenter flow-size
distribution (Greenberg et al. [12], used in §5.3 / Fig 5a-b).

We do not have the measured trace; per the reproduction's substitution rule
we encode the published *shape*: the overwhelming majority of flows are
mice, while the majority of delivered bytes come from a small population of
elephants. The distribution below is a piecewise log-uniform mixture whose
band weights were chosen so that roughly 80 % of flows are under 40 KB
(the paper's deadline-constrained "short flow" cutoff) while the >=1 MB
band carries most of the bytes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.units import KBYTE, MBYTE
from repro.utils.rng import SeedLike, spawn_rng

#: (probability, low, high) log-uniform bands
VL2_BANDS: tuple[tuple[float, float, float], ...] = (
    (0.55, 2 * KBYTE, 10 * KBYTE),      # mice: queries, control messages
    (0.25, 10 * KBYTE, 100 * KBYTE),    # small transfers
    (0.15, 100 * KBYTE, 1 * MBYTE),     # medium transfers
    (0.05, 1 * MBYTE, 10 * MBYTE),      # elephants: most of the bytes
)

#: flows below this are treated as deadline-constrained short flows (§5.3)
SHORT_FLOW_CUTOFF = 40 * KBYTE


def vl2_flow_sizes(n: int, rng: SeedLike = None,
                   bands: Sequence[tuple[float, float, float]] = VL2_BANDS,
                   scale: float = 1.0,
                   cap_bytes: int | None = None) -> list[int]:
    """Draw ``n`` sizes from the VL2-like mixture; ``scale`` shrinks every
    band (handy for fast tests at the same shape) and ``cap_bytes``
    truncates the elephant tail (bounds packet-level simulation cost)."""
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    total = sum(p for p, _, _ in bands)
    if abs(total - 1.0) > 1e-9:
        raise WorkloadError(f"band probabilities sum to {total}, not 1")
    gen = spawn_rng(rng, "sizes:vl2")
    probs = np.array([p for p, _, _ in bands])
    choices = gen.choice(len(bands), size=n, p=probs)
    sizes = []
    for band_index in choices:
        _, lo, hi = bands[band_index]
        lo, hi = lo * scale, hi * scale
        size = float(np.exp(gen.uniform(np.log(lo), np.log(hi))))
        if cap_bytes is not None:
            size = min(size, cap_bytes)
        sizes.append(max(1, int(size)))
    return sizes


def short_flow_fraction(sizes: Sequence[int],
                        cutoff: int = SHORT_FLOW_CUTOFF) -> float:
    """Fraction of flows under the short-flow cutoff (sanity statistic)."""
    if not sizes:
        return 0.0
    return sum(1 for s in sizes if s < cutoff) / len(sizes)


def elephant_byte_fraction(sizes: Sequence[int],
                           cutoff: int = 1 * MBYTE) -> float:
    """Fraction of bytes carried by flows >= cutoff (sanity statistic)."""
    total = sum(sizes)
    if total == 0:
        return 0.0
    return sum(s for s in sizes if s >= cutoff) / total
