"""RPL001 fail fixture: raw pooled-class construction in a transport."""

from repro.net.packet import Packet


class Sender:
    def __init__(self, pool, host):
        self.pool = pool
        self.host = host

    def emit(self, fid, src, dst, kind, size):
        packet = Packet(fid, src, dst, kind, size)  # bypasses the pool
        self.host.send(packet)
        self.pool.release(packet)
