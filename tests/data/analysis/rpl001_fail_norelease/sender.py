"""RPL001 fail fixture: acquires from the pool, never releases."""


class Sender:
    def __init__(self, pool, host):
        self.pool = pool
        self.host = host

    def emit(self, fid, src, dst, kind, size):
        packet = self.pool.acquire(fid, src, dst, kind, size)
        self.host.send(packet)
