"""RPL001 fail fixture: a link whose documented terminal sinks were
"cleaned up" — tail-drop and wire loss no longer release into the pool."""


class Link:
    def __init__(self, sim, queue, pool):
        self.sim = sim
        self.queue = queue
        self.pool = pool
        self._transmitting = False

    def enqueue(self, packet):
        if not self.queue.offer(packet):
            return False  # dropped packet leaks: no pool.release
        return True

    def _finish(self, packet):
        self._transmitting = False  # lost packet leaks: no pool.release
