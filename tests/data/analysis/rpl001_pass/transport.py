"""RPL001 pass fixture: pooled acquire with a terminal-sink release."""


class Sender:
    def __init__(self, pool, host):
        self.pool = pool
        self.host = host

    def emit(self, fid, src, dst, kind, size):
        packet = self.pool.acquire(fid, src, dst, kind, size)
        self.host.send(packet)


class Receiver:
    def __init__(self, pool):
        self.pool = pool

    def consume(self, packet):
        self.pool.release(packet)
