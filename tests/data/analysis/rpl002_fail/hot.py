"""RPL002 fail fixture: every construct the hot-path rules reject."""

import logging

log = logging.getLogger(__name__)


class Thing:
    def __init__(self, item):
        self.item = item


class Engine:
    def __init__(self):
        self.count = 0
        self.sink = None

    # repro: hot
    def drain(self, heap, pop):
        def helper(item):  # closure: allocates per call
            return item

        cb = lambda item: item  # noqa: E731
        label = f"draining {len(heap)} items"  # f-string off a raise
        log.debug("drain tick %s", label)  # logging on the hot path
        while heap:
            item = pop(heap)
            box = {"item": item}  # dict literal per iteration
            wrapped = Thing(item)  # constructor per iteration
            self.sink.stats.counters.bump(item)  # deep chain in a loop
            self.count += len([helper, cb, box, wrapped])
