"""RPL002 pass fixture: a hot function that keeps its hands clean."""


class Engine:
    def __init__(self):
        self.count = 0
        self._cb = self.on_event

    def on_event(self, item):
        self.count += 1

    # repro: hot
    def drain(self, heap, pop):
        cb = self._cb
        while heap:
            item = pop(heap)
            cb(item)
            self.count += 1
            if item is None:
                raise ValueError(f"tombstone leaked into {heap!r}")
