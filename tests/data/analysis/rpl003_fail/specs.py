"""RPL003 fail fixture: typoed kind literals that only a run would catch."""

from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec


def make_spec():
    return ScenarioSpec(
        protocol="PDQ(Full)",
        topology=TopologySpec("single_root"),
        workload=WorkloadSpec(kind="fig4.patern"),
        engine="packt",
    )


def make_panel(panel_cls, spec):
    return panel_cls(name="p", base=spec, axes=(), reducer="tables")
