"""RPL003 pass fixture: every kind literal resolves against a registry."""

from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec


def make_spec():
    return ScenarioSpec(
        protocol="PDQ(Full)",
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("fig4.pattern", {"pattern": "Aggregation"}),
        engine="packet",
    )


def make_panel(panel_cls, spec):
    return panel_cls(name="p", base=spec, axes=(), reducer="table")
