"""RPL004 fixture (v2): a miniature canonicalization surface with an edited key()."""

import hashlib
import json


def _plain(value):
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in sorted(value.items())}
    return value


def canonical_json(value):
    return json.dumps(_plain(value), sort_keys=True)


class TopologySpec:
    def __init__(self, kind, params=None):
        self.kind = kind
        self.params = params or {}

    def canonical(self):
        return {"kind": self.kind, "params": _plain(self.params)}


class WorkloadSpec:
    def __init__(self, kind, params=None):
        self.kind = kind
        self.params = params or {}

    def canonical(self):
        return {"kind": self.kind, "params": _plain(self.params)}


class ScenarioSpec:
    def __init__(self, topology, workload):
        self.topology = topology
        self.workload = workload

    def canonical(self):
        return {
            "topology": self.topology.canonical(),
            "workload": self.workload.canonical(),
        }

    def key(self):
        blob = canonical_json(self.canonical()) + "v2"  # changes every key
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
