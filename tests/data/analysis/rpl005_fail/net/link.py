"""RPL005 fail fixture: the fig3c revert — delivery scheduled at
tx-*start*, handing it an earlier heap seq than the finish event."""

from heapq import heappush


class Link:
    def __init__(self, sim, dst):
        self.sim = sim
        self._finish_cb = self._finish
        self._deliver_cb = dst.receive
        self._arrival_delay = 1e-6

    def enqueue(self, packet):
        sim = self.sim
        tx = 1e-6
        heappush(sim._heap, (sim.now + tx, sim._seq,
                             self._finish_cb, (packet,)))
        sim._seq += 1
        # "optimization": schedule the arrival now instead of at finish
        heappush(sim._heap, (sim.now + tx + self._arrival_delay, sim._seq,
                             self._deliver_cb, (packet, self)))
        sim._seq += 1

    def _finish(self, packet):
        self._transmitting = False
