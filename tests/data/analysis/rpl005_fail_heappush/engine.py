"""RPL005 fail fixture: raw heap push on a simulator from outside the
simulator/link modules (must go through the scheduling API)."""

from heapq import heappush


def inject(sim, callback, packet):
    heappush(sim._heap, (sim.now, sim._seq, callback, (packet,)))
    sim._seq += 1
