"""RPL005 pass fixture: delivery scheduled only at the tx-finish site."""

from heapq import heappush


class Link:
    def __init__(self, sim, dst):
        self.sim = sim
        self._finish_cb = self._finish
        self._deliver_cb = dst.receive
        self._arrival_delay = 1e-6

    def enqueue(self, packet):
        sim = self.sim
        heappush(sim._heap, (sim.now + 1e-6, sim._seq,
                             self._finish_cb, (packet,)))
        sim._seq += 1

    def _finish(self, packet):
        sim = self.sim
        heappush(sim._heap, (sim.now + self._arrival_delay, sim._seq,
                             self._deliver_cb, (packet, self)))
        sim._seq += 1
