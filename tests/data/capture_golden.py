#!/usr/bin/env python
"""Capture golden figure-panel outputs at reduced scale.

Run against the PRE-migration experiment harness to freeze the expected
results; ``tests/test_experiment_api.py`` replays the same calls through
the declarative Experiment API and pins byte-identical outputs
(after a canonicalizing JSON round-trip, which stringifies dict keys).

Usage:  PYTHONPATH=src python tests/data/capture_golden.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.units import KBYTE, MSEC

#: golden id -> ("module:function", kwargs). Scales are chosen so the
#: whole capture stays within a couple of minutes; the point is pinning
#: the reduction arithmetic and output shape, not paper-scale numbers.
GOLDEN_CALLS = {
    "fig1": ("repro.experiments.fig1:run", {}),
    "fig3a": ("repro.experiments.fig3:run_fig3a", {
        "flow_counts": (2,), "protocols": ("RCP", "TCP"), "seeds": (1,),
    }),
    "fig3b": ("repro.experiments.fig3:run_fig3b", {
        "mean_sizes": (50 * KBYTE,), "protocols": ("RCP",), "seeds": (1,),
        "n_flows": 2,
    }),
    "fig3c": ("repro.experiments.fig3:run_fig3c", {
        "mean_deadlines": (3 * MSEC,), "protocols": ("RCP",), "seeds": (1,),
        "hi": 2,
    }),
    "fig3d": ("repro.experiments.fig3:run_fig3d", {
        "flow_counts": (2,), "protocols": ("RCP", "TCP"), "seeds": (1,),
    }),
    "fig3e": ("repro.experiments.fig3:run_fig3e", {
        "mean_sizes": (50 * KBYTE,), "protocols": ("RCP",), "seeds": (1,),
        "n_flows": 2,
    }),
    "fig4a": ("repro.experiments.fig4:run_fig4a", {
        "patterns": ("Aggregation",), "protocols": ("PDQ(Full)", "RCP"),
        "seeds": (1,), "mean_deadline": 3 * MSEC, "hi": 2,
    }),
    "fig4b": ("repro.experiments.fig4:run_fig4b", {
        "patterns": ("Stride(1)",), "protocols": ("PDQ(Full)", "RCP"),
        "seeds": (1,), "n_flows": 3,
    }),
    "fig5a": ("repro.experiments.fig5:run_fig5a", {
        "mean_deadlines": (20 * MSEC,), "protocols": ("RCP",), "seeds": (1,),
        "duration": 0.01, "rate_step": 500.0, "hi_steps": 2,
    }),
    "fig5b": ("repro.experiments.fig5:run_fig5b", {
        "protocols": ("PDQ(Full)", "RCP"), "seeds": (1,),
        "rate_per_sec": 2000.0, "duration": 0.02,
    }),
    "fig5c": ("repro.experiments.fig5:run_fig5c", {
        "protocols": ("PDQ(Full)", "RCP"), "seeds": (1,),
        "duration": 0.02, "flows_per_second": 1000.0,
    }),
    "fig6": ("repro.experiments.fig6:run_fig6", {
        "n_flows": 2, "flow_size": 100 * KBYTE, "sim_deadline": 0.05,
    }),
    "fig7": ("repro.experiments.fig7:run_fig7", {
        "n_short": 3, "short_size": 10 * KBYTE, "long_size": 200 * KBYTE,
        "sim_deadline": 0.1,
    }),
    "fig8a": ("repro.experiments.fig8:run_fig8a", {
        "sizes": (16,), "protocols": ("RCP",), "levels": ("flow",),
        "seeds": (1,), "mean_deadline": 3 * MSEC, "hi": 2,
    }),
    "fig8b": ("repro.experiments.fig8:run_fct_vs_size", {
        "family": "fattree", "sizes": (16,), "protocols": ("RCP",),
        "levels": ("flow",), "seeds": (1,), "flows_per_server": 1,
    }),
    "fig8c": ("repro.experiments.fig8:run_fct_vs_size", {
        "family": "bcube", "sizes": (16,), "protocols": ("RCP",),
        "levels": ("flow",), "seeds": (1,), "flows_per_server": 1,
    }),
    "fig8e": ("repro.experiments.fig8:run_fig8e", {
        "n_servers": 16, "flows_per_server": 1, "seeds": (1,),
    }),
    "fig9a": ("repro.experiments.fig9:run_fig9a", {
        "loss_rates": (0.0,), "protocols": ("PDQ(Full)",), "seeds": (1,),
        "target": 2.0, "hi": 2,
    }),
    "fig9b": ("repro.experiments.fig9:run_fig9b", {
        "loss_rates": (0.0, 0.01), "protocols": ("PDQ(Full)",),
        "seeds": (1,), "n_flows": 2,
    }),
    "fig10": ("repro.experiments.fig10:run_fig10", {
        "distributions": ("uniform",), "schemes": ("PDQ perfect", "RCP"),
        "seeds": (1,), "n_flows": 3,
    }),
    "fig11a": ("repro.experiments.fig11:run_fig11a", {
        "loads": (0.25,), "seeds": (1,), "mean_size": 100 * KBYTE,
        "n_subflows": 2,
    }),
    "fig11b": ("repro.experiments.fig11:run_fig11b", {
        "subflow_counts": (1, 2), "seeds": (1,), "mean_size": 100 * KBYTE,
    }),
    "fig11c": ("repro.experiments.fig11:run_fig11c", {
        "subflow_counts": (1,), "seeds": (1,), "mean_size": 1000 * KBYTE,
        "mean_deadline": 3 * MSEC, "hi": 2,
    }),
    "fig12": ("repro.experiments.fig12:run_fig12", {
        "aging_rates": (0.0,), "seeds": (1,), "n_servers": 16,
        "duration": 0.01, "load": 0.5,
    }),
}


def canonicalize(value):
    """JSON round-trip: stringifies dict keys, tuples become lists."""
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def main() -> None:
    import importlib

    out = {}
    for name, (target, kwargs) in GOLDEN_CALLS.items():
        module_name, _, attr = target.partition(":")
        func = getattr(importlib.import_module(module_name), attr)
        started = time.perf_counter()
        result = func(**kwargs)
        elapsed = time.perf_counter() - started
        out[name] = canonicalize(result)
        print(f"{name}: {elapsed:.2f}s")
    path = Path(__file__).with_name("experiment_golden.json")
    path.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
