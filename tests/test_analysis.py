"""Tests for the ``repro check`` static-analysis pass (RPL001-RPL005).

Each checker is pinned against pass/fail fixtures under
``tests/data/analysis/`` (fixture trees mimic the repo layout where a
checker keys on file names, e.g. ``net/link.py``). Two regression tests
mutate *real* repo sources the way a plausible refactor would — raw
``Packet()`` in a transport, the fig3c tx-start delivery revert — and
assert the lint catches them. The repo itself must stay clean at HEAD.
"""

import json
from pathlib import Path

import pytest

import repro.analysis  # noqa: F401  (registers the checkers)
from repro.analysis.core import CHECKERS, AnalysisContext
from repro.analysis.diagnostics import render_report, sort_diagnostics
from repro.analysis.rpl004_fingerprint import (
    normalized_fingerprint,
    write_pins,
)
from repro.errors import CampaignError, ProtocolError

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "data" / "analysis"


def run_checker(code, ctx):
    _, check = CHECKERS[code]
    return sort_diagnostics(list(check(ctx)))


def fixture_ctx(name, fingerprint_path=None):
    return AnalysisContext.build(
        REPO_ROOT, paths=[FIXTURES / name], fingerprint_path=fingerprint_path,
    )


class TestRegistry:
    def test_all_five_checkers_registered(self):
        assert sorted(CHECKERS) == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
        ]


class TestRpl001PoolLifecycle:
    def test_pass_fixture_is_clean(self):
        assert run_checker("RPL001", fixture_ctx("rpl001_pass")) == []

    def test_raw_construction_is_flagged(self):
        diags = run_checker("RPL001", fixture_ctx("rpl001_fail_construct"))
        assert len(diags) == 1
        assert diags[0].code == "RPL001"
        assert "Packet()" in diags[0].message
        assert diags[0].path.endswith("transport.py")

    def test_acquire_without_release_is_flagged(self):
        diags = run_checker("RPL001", fixture_ctx("rpl001_fail_norelease"))
        assert len(diags) == 1
        assert "no reachable terminal-sink release" in diags[0].message

    def test_removed_sink_releases_are_flagged(self):
        diags = run_checker("RPL001", fixture_ctx("rpl001_fail_sink"))
        messages = [d.message for d in diags]
        assert len(diags) == 3
        assert any("enqueue()" in m for m in messages)
        assert any("_finish()" in m for m in messages)
        assert any("fail()" in m for m in messages)

    def test_raw_packet_added_to_real_transport_fails_lint(self, tmp_path):
        # the acceptance scenario: someone adds a raw Packet() to a
        # transport instead of going through the pool
        source = (REPO_ROOT / "src/repro/transport/base.py").read_text()
        source += (
            "\n\ndef _raw_probe(fid, src, dst):\n"
            "    return Packet(fid=fid, src=src, dst=dst,\n"
            "                  kind=PacketKind.PROBE, size=40)\n"
        )
        target = tmp_path / "transport" / "base.py"
        target.parent.mkdir()
        target.write_text(source)
        ctx = AnalysisContext.build(REPO_ROOT, paths=[target])
        diags = run_checker("RPL001", ctx)
        assert any("Packet()" in d.message for d in diags)


class TestRpl002HotPathPurity:
    def test_pass_fixture_is_clean(self):
        # includes an f-string inside a raise: exempt (cold error path)
        assert run_checker("RPL002", fixture_ctx("rpl002_pass")) == []

    def test_fail_fixture_flags_every_construct(self):
        diags = run_checker("RPL002", fixture_ctx("rpl002_fail"))
        blob = "\n".join(d.message for d in diags)
        for needle in (
            "closure helper()",
            "lambda",
            "f-string",
            "logging call",
            "dict literal inside a loop",
            "list literal inside a loop",
            "Thing() constructed inside a loop",
            "attribute-chained call self.sink.stats.counters.bump()",
        ):
            assert needle in blob, f"missing diagnostic for: {needle}"
        assert all(d.message.startswith("Engine.drain:") for d in diags)

    def test_unmarked_functions_are_ignored(self):
        # the fail fixture minus its marker would be silent; simulate by
        # scanning a file with the same constructs and no marker
        diags = run_checker("RPL002", fixture_ctx("rpl001_pass"))
        assert diags == []

    def test_marker_in_string_does_not_mark_function(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            'MARKER = "# repro: hot"\n\n\n'
            "def build():\n"
            "    return [dict(x=i) for i in range(3)]\n"
        )
        ctx = AnalysisContext.build(REPO_ROOT, paths=[target])
        assert run_checker("RPL002", ctx) == []


class TestRpl003RegistryDiscipline:
    def test_pass_fixture_is_clean(self):
        assert run_checker("RPL003", fixture_ctx("rpl003_pass")) == []

    def test_typoed_kinds_are_flagged_with_hints(self):
        diags = run_checker("RPL003", fixture_ctx("rpl003_fail"))
        assert len(diags) == 4
        blob = "\n".join(d.message for d in diags)
        assert "'single_root' is not a registered topology kind" in blob
        assert "Did you mean 'single_rooted'?" in blob
        assert "'fig4.patern' is not a registered workload kind" in blob
        assert "Did you mean 'fig4.pattern'?" in blob
        assert "'packt' is not a registered engine kind" in blob
        assert "'tables' is not a registered reducer kind" in blob
        assert "Did you mean 'table'?" in blob


class TestRpl004FingerprintPins:
    def _pin(self, fixture, tmp_path):
        pin_path = tmp_path / "fingerprints.json"
        ctx = fixture_ctx(fixture, fingerprint_path=pin_path)
        write_pins(ctx)
        return pin_path

    def test_pinned_fixture_is_clean(self, tmp_path):
        pin_path = self._pin("rpl004", tmp_path)
        ctx = fixture_ctx("rpl004", fingerprint_path=pin_path)
        assert run_checker("RPL004", ctx) == []

    def test_edit_without_repin_is_flagged(self, tmp_path):
        # v2 differs from v1 only in ScenarioSpec.key's body (plus the
        # module docstring, which must NOT trip the fingerprint)
        pin_path = self._pin("rpl004", tmp_path)
        ctx = fixture_ctx("rpl004_changed", fingerprint_path=pin_path)
        diags = run_checker("RPL004", ctx)
        assert len(diags) == 1
        assert "ScenarioSpec.key changed" in diags[0].message
        assert "--repin-fingerprints" in diags[0].message

    def test_missing_pin_table_is_flagged(self, tmp_path):
        ctx = fixture_ctx("rpl004",
                          fingerprint_path=tmp_path / "missing.json")
        diags = run_checker("RPL004", ctx)
        assert len(diags) == 1
        assert "missing" in diags[0].message

    def test_fingerprint_ignores_docstrings_and_formatting(self):
        import ast

        def fn_node(source):
            return ast.parse(source).body[0]

        base = fn_node("def f(x):\n    return x + 1\n")
        doc = fn_node('def f(x):\n    """doc"""\n    return x + 1\n')
        spaced = fn_node("def f( x ):\n    return (x + 1)\n")
        edited = fn_node("def f(x):\n    return x + 2\n")
        assert normalized_fingerprint(base) == normalized_fingerprint(doc)
        assert normalized_fingerprint(base) == normalized_fingerprint(spaced)
        assert normalized_fingerprint(base) != normalized_fingerprint(edited)


class TestRpl005EventShape:
    def test_pass_fixture_is_clean(self):
        assert run_checker("RPL005", fixture_ctx("rpl005_pass")) == []

    def test_delivery_at_tx_start_is_flagged(self):
        diags = run_checker("RPL005", fixture_ctx("rpl005_fail"))
        assert len(diags) == 1
        assert "delivery callback scheduled in enqueue()" in diags[0].message
        assert "fig3c" in diags[0].message

    def test_raw_heappush_outside_link_is_flagged(self):
        diags = run_checker("RPL005", fixture_ctx("rpl005_fail_heappush"))
        assert len(diags) == 1
        assert "direct push onto a simulator heap" in diags[0].message

    def test_fig3c_revert_of_real_link_fails_lint(self, tmp_path):
        # the acceptance scenario: revert the tx-finish scheduling change
        # by making the link schedule deliveries when transmission starts
        source = (REPO_ROOT / "src/repro/net/link.py").read_text()
        reverted = source.replace(
            "sim._seq, self._finish_cb, (packet,)))",
            "sim._seq, self._deliver_cb, (packet, self)))",
        )
        assert reverted != source
        target = tmp_path / "net" / "link.py"
        target.parent.mkdir()
        target.write_text(reverted)
        ctx = AnalysisContext.build(REPO_ROOT, paths=[target])
        diags = run_checker("RPL005", ctx)
        # both tx-start push sites (enqueue and _start_next) now schedule
        # deliveries outside _finish
        assert len(diags) == 2
        assert {"enqueue", "_start_next"} == {
            d.message.split("(")[0].split()[-1] for d in diags
        }


class TestRepoIsCleanAtHead:
    def test_full_repo_scan_has_no_diagnostics(self):
        ctx = AnalysisContext.build(REPO_ROOT)
        diags = []
        for code in sorted(CHECKERS):
            diags.extend(run_checker(code, ctx))
        assert diags == [], "\n".join(d.format() for d in diags)

    def test_hot_markers_are_present_where_seeded(self):
        # the RPL002 contract is only as good as its coverage: the
        # functions the issue names must actually carry the marker
        ctx = AnalysisContext.build(REPO_ROOT)
        from repro.analysis.core import hot_functions

        marked = set()
        for sf in ctx.files:
            for qualname, _fn in hot_functions(sf):
                marked.add((sf.relpath.split("/")[-1], qualname))
        for expected in [
            ("link.py", "Link._finish"),
            ("link.py", "Link.enqueue"),
            ("simulator.py", "Simulator.run"),
            ("queues.py", "DropTailQueue.offer"),
            ("queues.py", "DropTailQueue.pop"),
            ("node.py", "Switch.receive"),
            ("base.py", "RateBasedSender._emit"),
            ("tcp.py", "TcpSender._pump"),
        ]:
            assert expected in marked, f"missing # repro: hot on {expected}"


class TestCheckCli:
    def test_list_checkers(self, capsys):
        from repro.analysis.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005"):
            assert code in out

    def test_clean_fixture_exits_zero(self, capsys):
        from repro.analysis.cli import main

        rc = main([str(FIXTURES / "rpl001_pass"), "--no-mypy"])
        assert rc == 0
        assert "repro check: clean" in capsys.readouterr().out

    def test_diagnostics_exit_one_and_write_report(self, tmp_path, capsys):
        from repro.analysis.cli import main

        out_file = tmp_path / "report.json"
        rc = main([str(FIXTURES / "rpl003_fail"), "--no-mypy",
                   "--out", str(out_file)])
        assert rc == 1
        report = json.loads(out_file.read_text())
        assert report["schema"] == 1
        assert report["n_diagnostics"] == 4
        assert report["by_code"] == {"RPL003": 4}
        first = report["diagnostics"][0]
        assert first["code"] == "RPL003"
        assert "line" in first and "path" in first and "message" in first
        text = capsys.readouterr().out
        assert ": RPL003 " in text

    def test_render_report_counts_by_code(self):
        diags = run_checker("RPL003", fixture_ctx("rpl003_fail"))
        report = render_report(diags, mypy={"status": "skipped"})
        assert report["by_code"] == {"RPL003": 4}
        assert report["mypy"] == {"status": "skipped"}


class TestPoolLeakSites:
    def test_leak_report_names_the_acquire_site(self):
        from repro.net.packet import PacketKind
        from repro.net.pool import PacketPool

        pool = PacketPool(debug=True)
        kept = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)  # leak-site
        with pytest.raises(ProtocolError) as err:
            pool.assert_no_leaks()
        message = str(err.value)
        assert "PacketPool leak: 1 packet(s) never released" in message
        assert "test_analysis.py" in message  # the acquire call site file
        sites = pool.outstanding_sites()
        assert len(sites) == 1
        assert sites[0][0] is kept
        assert "test_analysis.py" in sites[0][1]
        pool.release(kept)
        pool.assert_no_leaks()

    def test_outstanding_still_returns_packets(self):
        from repro.net.packet import PacketKind
        from repro.net.pool import PacketPool

        pool = PacketPool(debug=True)
        one = pool.acquire(1, 0, 1, PacketKind.DATA, 1500)
        two = pool.acquire(2, 0, 1, PacketKind.ACK, 44)
        assert set(map(id, pool.outstanding())) == {id(one), id(two)}


UNKNOWN_KIND_CASES = [
    ("topology", "single_rootedd", "single_rooted"),
    ("workload", "fig4.patern", "fig4.pattern"),
    ("engine", "packt", "packet"),
    ("reducer", "tabel", "table"),
    ("metric", "mean_fctt", "mean_fct"),
    ("experiment", "fig33", "fig3"),
    ("panel runner", "fig6.convergance", "fig6.convergence"),
]


@pytest.mark.parametrize(
    "registry,typo,suggestion",
    UNKNOWN_KIND_CASES,
    ids=[c[0].replace(" ", "-") for c in UNKNOWN_KIND_CASES],
)
def test_unknown_kind_hint_across_all_registries(registry, typo, suggestion):
    """Every registry routes misses through ``unknown_kind`` and offers
    the close-match fix for a one-character typo."""
    from repro.campaign.engines import engine_kinds
    from repro.campaign.registry import build_topology, build_workload
    from repro.campaign.spec import ScenarioSpec, TopologySpec, WorkloadSpec
    from repro.experiments import api
    from repro.experiments.reducers import collector_metric, get_reducer

    def trigger():
        if registry == "topology":
            build_topology(typo, {})
        elif registry == "workload":
            build_workload(typo, None, 1, {})
        elif registry == "engine":
            assert typo not in engine_kinds()
            ScenarioSpec(
                protocol="TCP",
                topology=TopologySpec("single_bottleneck",
                                      {"n_senders": 2}),
                workload=WorkloadSpec("empty"),
                engine=typo,
            )
        elif registry == "reducer":
            get_reducer(typo)
        elif registry == "metric":
            collector_metric(typo)
        elif registry == "experiment":
            api.get_experiment(typo)
        else:
            api.panel_runner(typo)

    with pytest.raises(CampaignError) as err:
        trigger()
    message = str(err.value)
    assert f"unknown {registry} kind {typo!r}" in message
    assert f"Did you mean {suggestion!r}?" in message
