"""Tests for the flow-level benchmark harness and its CLI wiring."""

import json
import time

import pytest

from repro.bench import SCENARIOS, run_bench, write_history, write_report
from repro.campaign.cli import main
from repro.errors import ExperimentError


class TestHarness:
    def test_scenarios_are_registered(self):
        names = [s.name for s in SCENARIOS]
        assert "single-bottleneck" in names
        assert "fig8-scale" in names
        assert "fattree-multipath" in names
        assert "packet-aggregation" in names
        assert "packet-vl2" in names
        assert "packet-incast" in names
        assert "stream-vl2" in names
        assert "stream-vl2-packet" in names
        assert len(names) == len(set(names))

    def test_stream_scenarios_cover_both_engines(self):
        streaming = {s.name: s for s in SCENARIOS if s.streaming}
        assert streaming["stream-vl2"].engine == "flow"
        assert streaming["stream-vl2-packet"].engine == "packet"

    def test_both_engines_covered(self):
        engines = {s.engine for s in SCENARIOS}
        assert engines == {"flow", "packet"}

    def test_quick_run_with_baseline_parity(self):
        results = run_bench(only=["single-bottleneck"], quick=True)
        assert len(results) == 1
        r = results[0]
        assert r.flows > 0
        assert r.completed > 0
        assert r.iterations >= r.recomputations > 0
        assert r.elapsed_s > 0
        assert r.events_per_sec > 0
        assert r.allocate_calls_per_sec > 0
        assert r.baseline_parity is True
        assert r.speedup is not None and r.speedup > 0

    def test_no_baseline_skips_comparison(self):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False)
        r = results[0]
        assert r.baseline_elapsed_s is None
        assert r.speedup is None
        assert r.baseline_parity is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="unknown benchmark"):
            run_bench(only=["no-such-bench"])

    def test_packet_scenario_times_event_loop(self):
        """Packet rows report simulator events/sec; the packet engine
        has no frozen naive twin, so baseline columns stay empty even
        when the baseline is requested."""
        results = run_bench(only=["packet-aggregation"], quick=True,
                            baseline=True)
        r = results[0]
        assert r.engine == "packet"
        assert r.flows > 0
        assert r.completed > 0
        assert r.iterations > 1000  # discrete packet events, not epochs
        assert r.events_per_sec > 0
        assert r.recomputations == 0
        assert r.baseline_elapsed_s is None
        assert r.speedup is None
        assert r.baseline_parity is None

    def test_incast_scenario_congests_the_bottleneck(self):
        """The incast cell exists to stress tail-drop and packet
        recycling; if buffer or workload drift ever makes it drop-free
        it stops measuring what it claims to."""
        from repro.campaign.engines import make_stack
        from repro.net.network import Network
        from repro.obs.stats import harvest_packet_run

        scenario = next(s for s in SCENARIOS if s.name == "packet-incast")
        topology, protocol, flows, deadline = scenario.build(True)
        net = Network(topology, make_stack(protocol))
        net.launch(flows)
        net.run_until_quiet(deadline=deadline)
        assert net.total_drops() > 0
        stats = harvest_packet_run(net)
        assert stats.get("net.pool_hits") > 0
        assert stats.get("net.pool_size") > 0
        records = net.metrics.all_records()
        assert all(r.completed for r in records)

    def test_streaming_scenario_skips_baseline_and_tracks_memory(self):
        """A mini open-system cell through the full harness path: the
        engine gets a streaming collector (so flow counts come from the
        accumulators), the naive baseline is skipped even when requested,
        and the tracemalloc pass records a peak."""
        from repro.bench.harness import run_scenario
        from repro.bench.scenarios import BenchScenario, build_stream_vl2
        from repro.flowsim.rcp_model import RcpModel

        def build(quick):
            topo, stream = build_stream_vl2(2_000)
            return (topo, RcpModel(), stream, stream.horizon)

        scenario = BenchScenario(
            name="stream-mini", description="mini stream cell",
            build=build, params=lambda quick: {"n_flows": 2_000},
            streaming=True,
        )
        r = run_scenario(scenario, quick=True, baseline=True)
        assert r.flows > 1_000
        assert r.completed > 1_000
        assert r.flows_per_sec > 0
        assert r.peak_mem_bytes > 0
        assert r.baseline_elapsed_s is None
        assert r.baseline_parity is None

    def test_no_mem_skips_tracemalloc_pass(self):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False, measure_memory=False)
        assert results[0].peak_mem_bytes is None

    def test_report_carries_engine_field(self, tmp_path):
        results = run_bench(only=["packet-aggregation"], quick=True)
        report = write_report(results, path=str(tmp_path / "b.json"),
                              quick=True)
        bench = report["benchmarks"][0]
        assert bench["engine"] == "packet"
        assert bench["speedup"] is None

    def test_write_report_schema(self, tmp_path):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False)
        out = tmp_path / "BENCH_flowsim.json"
        report = write_report(results, path=str(out), quick=True)
        on_disk = json.loads(out.read_text())
        assert on_disk == report
        assert on_disk["schema"] == 2
        assert on_disk["quick"] is True
        bench = on_disk["benchmarks"][0]
        for field in ("name", "params", "elapsed_s", "events_per_sec",
                      "allocate_calls_per_sec", "flows", "flows_per_sec",
                      "peak_mem_bytes", "completed"):
            assert field in bench
        assert bench["peak_mem_bytes"] > 0
        assert bench["flows_per_sec"] > 0


class TestHistory:
    def test_write_history_appends_one_row_per_run(self, tmp_path):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False)
        path = tmp_path / "BENCH_history.jsonl"
        row = write_history(results, path=str(path), quick=True)
        write_history(results, path=str(path), quick=True)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == row
        assert first["schema"] == 2
        assert first["quick"] is True
        bench = first["benchmarks"]["fattree-multipath"]
        assert bench["engine"] == "flow"
        assert bench["elapsed_s"] > 0
        assert bench["events_per_sec"] > 0
        assert bench["flows_per_sec"] > 0
        assert bench["peak_mem_bytes"] > 0
        assert "speedup" not in bench  # no baseline requested

    def test_history_row_carries_speedup_with_baseline(self, tmp_path):
        results = run_bench(only=["single-bottleneck"], quick=True)
        row = write_history(results, path=str(tmp_path / "h.jsonl"),
                            quick=True)
        assert row["benchmarks"]["single-bottleneck"]["speedup"] > 0


class TestHotPathGuard:
    def test_default_off_telemetry_keeps_packet_event_rate(self):
        """Satellite (hot-path guard): the campaign adapter with
        default-off telemetry must sustain a packet event rate within
        noise of the raw engine loop the bench harness times (the PR-4
        baseline path). Counter harvest happens once per run and tracer
        hooks are one is-None test per lifecycle transition, so anything
        beyond scheduler noise means a per-packet cost crept in."""
        from repro.bench.harness import _timed_packet_run
        from repro.campaign.engines import run_packet_level

        scenario = next(s for s in SCENARIOS
                        if s.name == "packet-aggregation")

        raw_best = None
        adapter_best = None
        for _ in range(3):
            elapsed, sim, _ = _timed_packet_run(scenario, quick=True,
                                                repeat=1)
            raw = sim.processed_events / elapsed
            raw_best = max(raw_best or 0.0, raw)

            topology, protocol, flows, sim_deadline = scenario.build(True)
            started = time.perf_counter()
            collector = run_packet_level(topology, protocol, flows,
                                         sim_deadline=sim_deadline)
            adapter_elapsed = time.perf_counter() - started
            adapter = collector.stats["sim.events"] / adapter_elapsed
            adapter_best = max(adapter_best or 0.0, adapter)

        # generous noise bound: CI machines jitter, but a real per-event
        # regression (a hook in the packet path) costs far more than 2x
        assert adapter_best >= 0.5 * raw_best, (
            f"telemetry overhead suspected: adapter {adapter_best:,.0f} "
            f"events/s vs raw {raw_best:,.0f} events/s"
        )


class TestCli:
    def test_bench_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_flowsim.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(["bench", "--quick", "--only", "fattree-multipath",
                     "--no-baseline", "--out", str(out),
                     "--history", str(history)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["benchmarks"][0]["name"] == "fattree-multipath"
        row = json.loads(history.read_text().strip())
        assert "fattree-multipath" in row["benchmarks"]
        assert "fattree-multipath" in capsys.readouterr().out

    def test_bench_no_history_skips_append(self, tmp_path, capsys):
        out = tmp_path / "BENCH_flowsim.json"
        history = tmp_path / "BENCH_history.jsonl"
        code = main(["bench", "--quick", "--only", "fattree-multipath",
                     "--no-baseline", "--out", str(out),
                     "--history", str(history), "--no-history"])
        assert code == 0
        assert not history.exists()

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "single-bottleneck" in out

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2
