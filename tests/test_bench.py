"""Tests for the flow-level benchmark harness and its CLI wiring."""

import json

import pytest

from repro.bench import SCENARIOS, run_bench, write_report
from repro.campaign.cli import main
from repro.errors import ExperimentError


class TestHarness:
    def test_scenarios_are_registered(self):
        names = [s.name for s in SCENARIOS]
        assert "single-bottleneck" in names
        assert "fig8-scale" in names
        assert "fattree-multipath" in names
        assert "packet-aggregation" in names
        assert "packet-vl2" in names
        assert len(names) == len(set(names))

    def test_both_engines_covered(self):
        engines = {s.engine for s in SCENARIOS}
        assert engines == {"flow", "packet"}

    def test_quick_run_with_baseline_parity(self):
        results = run_bench(only=["single-bottleneck"], quick=True)
        assert len(results) == 1
        r = results[0]
        assert r.flows > 0
        assert r.completed > 0
        assert r.iterations >= r.recomputations > 0
        assert r.elapsed_s > 0
        assert r.events_per_sec > 0
        assert r.allocate_calls_per_sec > 0
        assert r.baseline_parity is True
        assert r.speedup is not None and r.speedup > 0

    def test_no_baseline_skips_comparison(self):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False)
        r = results[0]
        assert r.baseline_elapsed_s is None
        assert r.speedup is None
        assert r.baseline_parity is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="unknown benchmark"):
            run_bench(only=["no-such-bench"])

    def test_packet_scenario_times_event_loop(self):
        """Packet rows report simulator events/sec; the packet engine
        has no frozen naive twin, so baseline columns stay empty even
        when the baseline is requested."""
        results = run_bench(only=["packet-aggregation"], quick=True,
                            baseline=True)
        r = results[0]
        assert r.engine == "packet"
        assert r.flows > 0
        assert r.completed > 0
        assert r.iterations > 1000  # discrete packet events, not epochs
        assert r.events_per_sec > 0
        assert r.recomputations == 0
        assert r.baseline_elapsed_s is None
        assert r.speedup is None
        assert r.baseline_parity is None

    def test_report_carries_engine_field(self, tmp_path):
        results = run_bench(only=["packet-aggregation"], quick=True)
        report = write_report(results, path=str(tmp_path / "b.json"),
                              quick=True)
        bench = report["benchmarks"][0]
        assert bench["engine"] == "packet"
        assert bench["speedup"] is None

    def test_write_report_schema(self, tmp_path):
        results = run_bench(only=["fattree-multipath"], quick=True,
                            baseline=False)
        out = tmp_path / "BENCH_flowsim.json"
        report = write_report(results, path=str(out), quick=True)
        on_disk = json.loads(out.read_text())
        assert on_disk == report
        assert on_disk["schema"] == 1
        assert on_disk["quick"] is True
        bench = on_disk["benchmarks"][0]
        for field in ("name", "params", "elapsed_s", "events_per_sec",
                      "allocate_calls_per_sec", "flows", "completed"):
            assert field in bench


class TestCli:
    def test_bench_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_flowsim.json"
        code = main(["bench", "--quick", "--only", "fattree-multipath",
                     "--no-baseline", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["benchmarks"][0]["name"] == "fattree-multipath"
        assert "fattree-multipath" in capsys.readouterr().out

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "single-bottleneck" in out

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2
