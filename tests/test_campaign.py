"""Tests for the campaign subsystem: specs, store, runner, CLI."""

import json
import multiprocessing
import os
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    expand_grid,
    run_scenario,
    run_scenarios,
    use_runner,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.cli import sweep_specs
from repro.campaign.registry import (
    build_topology,
    register_workload,
    topology_kinds,
)
from repro.errors import CampaignError
from repro.units import KBYTE
from repro.workload.patterns import aggregation_flows
from repro.workload.sizes import uniform_sizes


def _flow_spec(protocol="RCP", seed=1, n_flows=2, **overrides):
    """A tiny, fast flow-level scenario on the default tree."""
    overrides.setdefault("engine", "flow")
    return ScenarioSpec(
        protocol=protocol,
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("fig3.aggregation", {
            "n_flows": n_flows,
            "mean_size": 100 * KBYTE,
            "mean_deadline": None,
        }),
        seed=seed,
        **overrides,
    )


# -- test-only workload kinds (in-process runners; forked workers inherit) --------

#: test-only kinds are registered by importing this module, so parallel
#: runners can only resolve them in fork-started workers
_FORK_CTX = (
    multiprocessing.get_context("fork")
    if "fork" in multiprocessing.get_all_start_methods() else None
)
needs_fork = pytest.mark.skipif(
    _FORK_CTX is None,
    reason="test-only workload kinds reach workers only via fork",
)

_FLAKY = {"fail_seed": None}
_ATTEMPTS = {"count": 0}


@register_workload("test.flaky")
def _flaky_workload(topology, seed, n_flows=2):
    if seed == _FLAKY["fail_seed"]:
        raise RuntimeError("injected workload failure")
    sizes = uniform_sizes(n_flows, 50 * KBYTE, rng=seed)
    senders = [f"h{i}" for i in range(1, n_flows + 1)]
    return aggregation_flows(senders, "h0", sizes, rng=seed)


@register_workload("test.sleepy")
def _sleepy_workload(topology, seed, n_flows=2):
    time.sleep(2.0)
    return _flaky_workload(topology, seed, n_flows)


@register_workload("test.killed")
def _killed_workload(topology, seed, n_flows=2):
    os.kill(os.getpid(), 9)


@register_workload("test.fails_once")
def _fails_once_workload(topology, seed, n_flows=2):
    _ATTEMPTS["count"] += 1
    if _ATTEMPTS["count"] == 1:
        raise RuntimeError("first attempt fails")
    return _flaky_workload(topology, seed, n_flows)


def _test_spec(kind, seed=1):
    return ScenarioSpec(
        protocol="RCP",
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec(kind, {"n_flows": 2}),
        engine="flow",
        seed=seed,
    )


class TestScenarioHash:
    def test_identical_specs_share_a_key(self):
        assert _flow_spec().key == _flow_spec().key

    def test_key_ignores_param_insertion_order(self):
        a = ScenarioSpec(
            protocol="RCP", topology=TopologySpec("single_rooted"),
            workload=WorkloadSpec("w", {"a": 1, "b": 2}), engine="flow",
        )
        b = ScenarioSpec(
            protocol="RCP", topology=TopologySpec("single_rooted"),
            workload=WorkloadSpec("w", {"b": 2, "a": 1}), engine="flow",
        )
        assert a.key == b.key

    def test_key_is_stable_across_versions(self):
        """Pinned: changing canonicalization silently invalidates caches."""
        spec = ScenarioSpec(
            protocol="RCP",
            topology=TopologySpec("single_bottleneck", {"n_senders": 4}),
            workload=WorkloadSpec("fig3.aggregation", {
                "n_flows": 2, "mean_size": 100000.0, "mean_deadline": None,
            }),
            engine="flow",
            seed=7,
        )
        assert spec.key == (
            "fbe937ba74f5f5949987170cb7e6aa2a"
            "ef3ff937261948bfbdf380e758d513b3"
        )

    def test_key_differs_per_axis(self):
        base = _flow_spec()
        assert base.key != _flow_spec(protocol="D3").key
        assert base.key != _flow_spec(seed=2).key
        assert base.key != _flow_spec(n_flows=3).key
        assert base.key != _flow_spec(options={"aging_rate": 2.0}).key
        assert base.key != _flow_spec(sim_deadline=5.0).key

    def test_canonical_roundtrip_preserves_key(self):
        spec = _flow_spec(options={"aging_rate": 2.0}, sim_deadline=5.0)
        restored = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.canonical()))
        )
        assert restored.key == spec.key
        assert restored == spec

    def test_unknown_engine_rejected(self):
        with pytest.raises(CampaignError):
            _flow_spec(engine="quantum")


class TestGridExpansion:
    def test_cartesian_product(self):
        specs = expand_grid(
            _flow_spec(), protocol=["RCP", "D3"], seed=[1, 2, 3]
        )
        assert len(specs) == 6
        assert len({s.key for s in specs}) == 6
        assert {s.protocol for s in specs} == {"RCP", "D3"}

    def test_dotted_axes_reach_nested_params(self):
        specs = expand_grid(
            _flow_spec(),
            **{"workload.n_flows": [2, 4], "options.aging_rate": [0.0, 2.0]},
        )
        assert len(specs) == 4
        assert {s.workload.params["n_flows"] for s in specs} == {2, 4}
        assert {s.options["aging_rate"] for s in specs} == {0.0, 2.0}

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            expand_grid(_flow_spec(), protocol=[])


class TestRegistry:
    def test_builtin_topologies_build(self):
        assert "single_rooted" in topology_kinds()
        topo = build_topology("fattree", {"n_servers": 16})
        assert topo.stats()["hosts"] == 16

    def test_unknown_kinds_rejected(self):
        with pytest.raises(CampaignError):
            build_topology("torus", {})
        with pytest.raises(CampaignError):
            ScenarioSpec(
                protocol="RCP", topology=TopologySpec("single_rooted"),
                workload=WorkloadSpec("no.such.workload", {}), engine="flow",
            ).workload.build(None, 1)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        spec = _flow_spec()
        collector = run_scenario(spec)
        store = ResultStore(tmp_path)
        assert spec not in store
        store.put(spec, collector, elapsed=0.5)
        assert spec in store
        restored = store.get(spec)
        assert restored is not None
        assert restored.to_dict() == collector.to_dict()
        assert restored.mean_fct() == collector.mean_fct()
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0].key == spec.key
        assert entries[0].summary["n_completed"] == len(collector)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        spec = _flow_spec()
        store = ResultStore(tmp_path)
        store.path_for(spec.key).write_text("{not json")
        assert store.get(spec) is None
        store.path_for(spec.key).write_bytes(b"\xff\xfe\x00garbage")
        assert store.get(spec) is None

    def test_invalid_payload_is_a_miss_and_reruns(self, tmp_path):
        """Schema-drifted payloads degrade to a miss, not a crash."""
        spec = _flow_spec()
        store = ResultStore(tmp_path)
        store.put(spec, run_scenario(spec))
        path = store.path_for(spec.key)
        payload = json.loads(path.read_text())
        payload["collector"]["records"][0]["spec"]["size_bytes"] = -1
        path.write_text(json.dumps(payload))
        assert store.get(spec) is None
        result = CampaignRunner(store=store).run([spec])
        assert result.executed_count == 1
        assert result.outcomes[0].ok

    def test_flow_engine_rejects_loss(self):
        with pytest.raises(CampaignError):
            _flow_spec(loss=("sw0", "recv", 0.01, 1))

    def test_clear(self, tmp_path):
        spec = _flow_spec()
        store = ResultStore(tmp_path)
        store.put(spec, run_scenario(spec))
        assert store.clear() == 1
        assert len(store) == 0


class TestSerialRunner:
    def test_cold_then_warm(self, tmp_path):
        specs = [_flow_spec(seed=s) for s in (1, 2)]
        store = ResultStore(tmp_path)
        cold = CampaignRunner(store=store).run(specs)
        assert cold.executed_count == 2
        assert cold.cached_count == 0
        warm = CampaignRunner(store=store).run(specs)
        assert warm.executed_count == 0
        assert warm.cached_count == 2
        for a, b in zip(cold.collectors(), warm.collectors(), strict=True):
            assert a.to_dict() == b.to_dict()

    def test_duplicate_specs_run_once(self):
        result = CampaignRunner().run([_flow_spec(), _flow_spec()])
        assert len(result.outcomes) == 2
        assert result.executed_count == 1

    def test_resume_after_partial_failure(self, tmp_path):
        _FLAKY["fail_seed"] = 2
        specs = [_test_spec("test.flaky", seed=s) for s in (1, 2, 3)]
        store = ResultStore(tmp_path)
        try:
            cold = CampaignRunner(store=store).run(specs)
            assert cold.executed_count == 3
            assert len(cold.failures) == 1
            assert "injected" in cold.failures[0].error
            with pytest.raises(CampaignError):
                cold.collectors()
        finally:
            _FLAKY["fail_seed"] = None
        # the fixed campaign resumes: only the failed scenario re-executes
        warm = CampaignRunner(store=store).run(specs)
        assert warm.executed_count == 1
        assert warm.cached_count == 2
        assert not warm.failures
        assert len(warm.collectors()) == 3

    def test_retry_recovers_transient_failure(self):
        _ATTEMPTS["count"] = 0
        result = CampaignRunner(retries=1).run([_test_spec("test.fails_once")])
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.attempts == 2

    def test_no_retry_reports_failure(self):
        _ATTEMPTS["count"] = 0
        result = CampaignRunner(retries=0).run([_test_spec("test.fails_once")])
        assert not result.outcomes[0].ok

    def test_progress_callback(self):
        seen = []
        runner = CampaignRunner(
            progress=lambda outcome, done, total: seen.append((done, total))
        )
        runner.run([_flow_spec(seed=s) for s in (1, 2)])
        assert seen == [(1, 2), (2, 2)]


class TestParallelRunner:
    def test_sweep_parallel_matches_serial_and_resumes_warm(self, tmp_path):
        """Acceptance: a multi-protocol Fig-4-style grid on 2 workers
        persists results, and the warm run executes zero scenarios."""
        specs = sweep_specs(
            protocols=("PDQ(Full)", "RCP"), patterns=("Aggregation",),
            n_flows=4, seeds=(1,),
        )
        assert len(specs) == 2
        serial = CampaignRunner(max_workers=0).run(specs)
        store = ResultStore(tmp_path)
        cold = CampaignRunner(max_workers=2, store=store).run(specs)
        assert cold.executed_count == len(specs)
        for a, b in zip(serial.collectors(), cold.collectors(), strict=True):
            assert a.to_dict() == b.to_dict()
        warm = CampaignRunner(max_workers=2, store=store).run(specs)
        assert warm.executed_count == 0
        assert warm.cached_count == len(specs)
        for a, b in zip(serial.collectors(), warm.collectors(), strict=True):
            assert a.to_dict() == b.to_dict()

    @needs_fork
    def test_parallel_timeout_marks_scenario_failed(self):
        specs = [_test_spec("test.sleepy")]
        runner = CampaignRunner(max_workers=2, timeout=0.3,
                                mp_context=_FORK_CTX)
        result = runner.run(specs)
        assert not result.outcomes[0].ok
        assert "timeout" in result.outcomes[0].error

    @needs_fork
    def test_parallel_failure_reported(self):
        # fork-started workers inherit the flaky flag state
        _FLAKY["fail_seed"] = 2
        try:
            specs = [_test_spec("test.flaky", seed=s) for s in (1, 2)]
            runner = CampaignRunner(max_workers=2, mp_context=_FORK_CTX)
            result = runner.run(specs)
            assert len(result.failures) == 1
            assert result.outcomes[0].ok
            assert not result.outcomes[1].ok
        finally:
            _FLAKY["fail_seed"] = None

    @needs_fork
    def test_crash_does_not_fail_sibling_scenarios(self):
        """Collateral of a broken pool is retried in quarantine."""
        specs = [_test_spec("test.killed")] + [
            _flow_spec(seed=s) for s in (1, 2, 3)
        ]
        with CampaignRunner(max_workers=2, mp_context=_FORK_CTX) as runner:
            result = runner.run(specs)
        assert [o.ok for o in result.outcomes] == [False, True, True, True]
        assert "Broken" in result.outcomes[0].error

    @needs_fork
    def test_crashed_worker_fails_scenario_not_runner(self):
        """A SIGKILLed worker must not poison the runner for later runs."""
        with CampaignRunner(max_workers=2, mp_context=_FORK_CTX) as runner:
            bad = runner.run([_test_spec("test.killed")])
            assert not bad.outcomes[0].ok
            assert "Broken" in bad.outcomes[0].error
            # the pool is rebuilt: the same runner still executes work
            good = runner.run([_flow_spec()])
            assert good.outcomes[0].ok
            assert good.executed_count == 1


class TestAmbientRunner:
    def test_default_is_serial_uncached(self):
        collectors = run_scenarios([_flow_spec()])
        assert len(collectors) == 1
        assert collectors[0].mean_fct() > 0

    def test_use_runner_routes_through_store(self, tmp_path):
        spec = _flow_spec()
        store = ResultStore(tmp_path)
        with use_runner(CampaignRunner(store=store)):
            run_scenarios([spec])
        assert spec in store

    def test_figure_functions_hit_the_cache(self, tmp_path):
        from repro.experiments.fig10 import run_fig10

        store = ResultStore(tmp_path)
        kwargs = dict(distributions=("uniform",), seeds=(1,), n_flows=3)
        with use_runner(CampaignRunner(store=store)):
            first = run_fig10(**kwargs)
        assert len(store) == 4  # 4 schemes x 1 seed x 1 distribution
        executed = []
        with use_runner(CampaignRunner(
            store=store,
            progress=lambda o, done, total:
                executed.append(o) if not o.cached else None,
        )):
            second = run_fig10(**kwargs)
        assert first == second
        assert executed == []  # the warm figure run re-simulates nothing


class TestCli:
    def test_run_fig_dry_run(self, capsys):
        assert cli_main(["run-fig", "1", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "dry run" in out

    def test_run_fig_unknown(self, capsys):
        assert cli_main(["run-fig", "99", "--dry-run"]) == 2

    def test_sweep_dry_run(self, capsys):
        assert cli_main(["sweep", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "fig4.pattern" in out

    def test_sweep_and_ls(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["sweep", "--protocols", "RCP", "--patterns", "Aggregation",
                "--flows", "3", "--jobs", "0", "--cache", cache]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "executed=1 cached=0 failed=0" in out
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "executed=0 cached=1 failed=0" in out
        assert cli_main(["ls", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out
        assert "RCP" in out

    def test_ls_empty(self, tmp_path, capsys):
        assert cli_main(["ls", "--cache", str(tmp_path / "empty")]) == 0
        assert "no cached results" in capsys.readouterr().out
