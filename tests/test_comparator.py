"""Tests for flow criticality comparison (§3.3)."""

from hypothesis import given, strategies as st

from repro.core.comparator import (
    EdfOnlyComparator,
    FlowComparator,
    SjfOnlyComparator,
    criticality_key,
)


class TestPaperComparator:
    def test_deadline_beats_no_deadline(self):
        with_deadline = criticality_key(1, deadline=1.0, expected_tx=100.0)
        without = criticality_key(2, deadline=None, expected_tx=0.001)
        assert with_deadline < without

    def test_earlier_deadline_more_critical(self):
        a = criticality_key(1, deadline=1.0, expected_tx=5.0)
        b = criticality_key(2, deadline=2.0, expected_tx=0.1)
        assert a < b  # EDF dominates SJF

    def test_sjf_breaks_deadline_ties(self):
        a = criticality_key(1, deadline=1.0, expected_tx=0.5)
        b = criticality_key(2, deadline=1.0, expected_tx=0.9)
        assert a < b

    def test_sjf_orders_no_deadline_flows(self):
        a = criticality_key(9, deadline=None, expected_tx=0.1)
        b = criticality_key(1, deadline=None, expected_tx=0.2)
        assert a < b

    def test_fid_breaks_remaining_ties(self):
        a = criticality_key(1, deadline=None, expected_tx=0.5)
        b = criticality_key(2, deadline=None, expected_tx=0.5)
        assert a < b

    def test_criticality_overrides_expected_tx(self):
        a = criticality_key(1, deadline=None, expected_tx=0.1,
                            criticality=9.0)
        b = criticality_key(2, deadline=None, expected_tx=5.0,
                            criticality=1.0)
        assert b < a

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.one_of(st.none(), st.floats(min_value=0, max_value=100)),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_property_total_order(self, flows):
        """Keys sort consistently (transitive, antisymmetric up to equal
        keys) -- sorting twice gives the same result."""
        keys = [criticality_key(f, d, t) for f, d, t in flows]
        assert sorted(keys) == sorted(sorted(keys))

    def test_more_critical_is_strict(self):
        comparator = FlowComparator()
        k = criticality_key(1, None, 1.0)
        assert not comparator.more_critical(k, k)


class TestAlternativeComparators:
    def test_sjf_only_ignores_deadlines(self):
        cmp = SjfOnlyComparator()
        a = cmp.key(1, deadline=0.001, expected_tx=10.0)
        b = cmp.key(2, deadline=None, expected_tx=1.0)
        assert b < a

    def test_edf_only_ignores_size(self):
        cmp = EdfOnlyComparator()
        a = cmp.key(1, deadline=2.0, expected_tx=0.001)
        b = cmp.key(2, deadline=1.0, expected_tx=100.0)
        assert b < a
