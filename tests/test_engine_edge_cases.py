"""Edge cases of the optimized fluid engine's event machinery."""

import pytest

from repro.core.config import PdqConfig
from repro.errors import ExperimentError
from repro.flowsim import (
    FlowLevelSimulation,
    NaiveFlowLevelSimulation,
    PdqModel,
)
from repro.flowsim.naive import naive_model_for
from repro.flowsim.progress import FlowProgress
from repro.topology import SingleBottleneck
from repro.units import KBYTE, MBYTE
from repro.workload.flow import FlowSpec


class TestRefreshBoundaryArrival:
    """A transfer_start landing exactly on the refresh horizon must be
    promoted at that iteration, not dropped or deferred."""

    def _flows(self):
        return [
            FlowSpec(fid=0, src="send0", dst="recv", size_bytes=2 * MBYTE),
            # with init_rtts=0 the transfer starts exactly at arrival,
            # which is exactly one refresh interval after t=0
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=100 * KBYTE,
                     arrival=1e-3),
        ]

    def test_promoted_on_the_boundary(self):
        sim = FlowLevelSimulation(SingleBottleneck(2), PdqModel(),
                                  init_rtts=0.0)
        metrics = sim.run(self._flows())
        assert len(metrics.completed_records()) == 2
        # the short flow preempts as soon as it starts at t=1ms
        assert metrics.record(1).fct < 2e-3

    def test_matches_naive_engine(self):
        opt = FlowLevelSimulation(SingleBottleneck(2), PdqModel(),
                                  init_rtts=0.0).run(self._flows())
        naive = NaiveFlowLevelSimulation(
            SingleBottleneck(2), naive_model_for(PdqModel()), init_rtts=0.0
        ).run(self._flows())
        assert opt.to_dict() == naive.to_dict()


class TestSimultaneousCompletionAndTermination:
    """A completion and an early termination at the same timestamp must
    both be recorded at that instant, in one recomputation cycle."""

    def _build(self):
        # phase 1: find when the short flow completes alone (its tight
        # deadline keeps it the most critical flow under EDF later)
        short = FlowSpec(fid=0, src="send0", dst="recv",
                         size_bytes=100 * KBYTE, deadline=5e-3)
        probe = FlowLevelSimulation(SingleBottleneck(2), PdqModel())
        t_done = probe.run([short]).record(0).completion_time
        # phase 2: a paused 1MB flow whose ET "cannot finish" condition
        # trips exactly when the short flow's completion recomputation
        # runs (deadline just inside now + expected_tx at that instant)
        sim = FlowLevelSimulation(SingleBottleneck(2), PdqModel())
        expected_tx = sim._wire_size(1 * MBYTE) * 8.0 / 1e9
        flows = [
            short,
            FlowSpec(fid=1, src="send1", dst="recv", size_bytes=1 * MBYTE,
                     deadline=t_done + expected_tx - 1e-6),
        ]
        return sim, flows

    def test_same_timestamp(self):
        sim, flows = self._build()
        metrics = sim.run(flows)
        short, big = metrics.record(0), metrics.record(1)
        assert short.completed
        assert big.terminated
        assert big.termination_reason == "early_termination:cannot_finish"
        assert big.termination_time == short.completion_time

    def test_matches_naive_engine(self):
        sim, flows = self._build()
        opt = sim.run(flows)
        naive = NaiveFlowLevelSimulation(
            SingleBottleneck(2), naive_model_for(PdqModel())
        ).run(flows)
        assert opt.to_dict() == naive.to_dict()


class TestMaxRecomputations:
    def test_exhaustion_raises(self):
        flows = [
            FlowSpec(fid=i, src=f"send{i}", dst="recv", size_bytes=1 * MBYTE)
            for i in range(3)
        ]
        sim = FlowLevelSimulation(SingleBottleneck(3), PdqModel())
        with pytest.raises(ExperimentError, match="did not converge"):
            sim.run(flows, max_recomputations=2)

    def test_limit_not_hit_counts_match_naive(self):
        flows = [
            FlowSpec(fid=i, src=f"send{i}", dst="recv", size_bytes=1 * MBYTE)
            for i in range(3)
        ]
        opt = FlowLevelSimulation(SingleBottleneck(3), PdqModel())
        opt.run(flows)
        naive = NaiveFlowLevelSimulation(
            SingleBottleneck(3), naive_model_for(PdqModel())
        )
        naive.run(flows)
        assert opt.recomputations == naive.recomputations


class TestCriticalityCachingContract:
    """Satellite: the _criticality caching contract is explicit —
    random draws once per flow, estimate is dynamic, spec values win."""

    def _flow(self, fid=0, size=500 * KBYTE, criticality=None):
        spec = FlowSpec(fid=fid, src="a", dst="b", size_bytes=size,
                        criticality=criticality)
        return FlowProgress(spec, [("a", "b")], 1e9, 150e-6, float(size), 0.0)

    def test_random_mode_draws_once_and_caches_on_flow(self):
        model = PdqModel(PdqConfig.full(criticality_mode="random"))
        flow = self._flow()
        first = model._criticality(flow, 0.0)
        assert flow.criticality == first  # cached on the flow
        flow.remaining_wire /= 2  # progress must not re-draw
        assert model._criticality(flow, 1.0) == first

    def test_random_mode_is_deterministic_per_fid(self):
        model = PdqModel(PdqConfig.full(criticality_mode="random"))
        a, b = self._flow(fid=7), self._flow(fid=7)
        assert model._criticality(a, 0.0) == model._criticality(b, 0.0)

    def test_estimate_mode_is_dynamic_and_never_cached(self):
        config = PdqConfig.full(criticality_mode="estimate")
        model = PdqModel(config)
        flow = self._flow(size=500 * KBYTE)
        assert model._criticality(flow, 0.0) == 0.0
        assert flow.criticality is None  # never cached on the flow
        flow.remaining_wire -= 2 * config.estimate_chunk
        assert model._criticality(flow, 0.0) == pytest.approx(
            float(2 * config.estimate_chunk)
        )
        assert flow.criticality is None

    def test_spec_criticality_wins_in_every_mode(self):
        for mode in ("deadline", "random", "estimate"):
            model = PdqModel(PdqConfig.full(criticality_mode=mode))
            flow = self._flow(criticality=0.25)
            assert model._criticality(flow, 0.0) == 0.25

    def test_key_cache_disabled_for_dynamic_modes(self):
        assert PdqModel(PdqConfig.full())._keys_are_static()
        assert PdqModel(
            PdqConfig.full(criticality_mode="random"))._keys_are_static()
        assert not PdqModel(
            PdqConfig.full(criticality_mode="estimate"))._keys_are_static()
        assert not PdqModel(PdqConfig.full(aging_rate=1.0))._keys_are_static()
