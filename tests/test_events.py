"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.events import PeriodicTimer, Simulator, Timer


class TestSimulator:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        for t in [0.5, 0.1, 0.9, 0.3]:
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [0.1, 0.3, 0.5, 0.9]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(1.0000001, lambda: fired.append("b"))
        sim.run(until=1.0)
        assert fired == ["a"]
        assert sim.now == 1.0

    def test_run_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.run(until=1.0)
        assert fired == []
        sim.run(until=3.0)
        assert fired == ["late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]

    def test_max_events_limit(self):
        sim = Simulator()
        count = [0]

        def loop():
            count[0] += 1
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        sim.run(max_events=5)
        assert count[0] == 5

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.pending() == 1

    def test_pending_drains_with_run(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.pending() == 3
        sim.run(until=2.0)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0

    def test_cancel_after_fire_keeps_pending_exact(self):
        # e.g. a PeriodicTimer stopped from its own callback cancels the
        # event that just fired; the live counter must not double-count
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        fired.cancel()
        assert sim.pending() == 1
        assert sim.peek_time() == 10.0

    def test_stop_from_periodic_callback_keeps_pending_exact(self):
        from repro.events import PeriodicTimer

        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
        timer.start()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.pending() == 1  # the t=10 event is still live

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_preserves_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        fired = []
        assert sim.peek_time() == 2.0  # gc of tombstones only
        assert sim.pending() == 1
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_peek_time_empty(self):
        sim = Simulator()
        assert sim.peek_time() is None
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        assert sim.peek_time() is None
        assert sim.pending() == 0

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_property_fires_in_nondecreasing_time(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestTypedFastPath:
    """call_after/call_at: the no-handle, closure-free scheduling path."""

    def test_call_after_passes_args(self):
        sim = Simulator()
        got = []
        sim.call_after(0.5, got.append, ("x", 2))
        sim.run()
        assert got == [("x", 2)]

    def test_schedule_passes_args_too(self):
        sim = Simulator()
        got = []
        sim.schedule(0.5, lambda a, b: got.append((a, b)), "y", 3)
        sim.run()
        assert got == [("y", 3)]

    def test_same_timestamp_fifo_across_both_entry_shapes(self):
        # fast-path and cancellable entries share one seq stream, so ties
        # fire strictly in scheduling order regardless of shape
        sim = Simulator()
        fired = []
        sim.call_after(1.0, fired.append, 0)
        sim.schedule(1.0, fired.append, 1)
        sim.call_at(1.0, fired.append, 2)
        sim.schedule_at(1.0, fired.append, 3)
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_until_inclusive_for_fast_path(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, fired.append, "at")
        sim.call_after(1.0000001, fired.append, "after")
        sim.run(until=1.0)
        assert fired == ["at"]
        assert sim.now == 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-0.1, lambda: None)

    def test_call_at_in_past_rejected(self):
        sim = Simulator()
        sim.call_after(1.0, lambda: sim.call_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_counts_in_pending(self):
        sim = Simulator()
        sim.call_after(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        sim.run()
        assert sim.pending() == 0


class TestCancellationSemantics:
    def test_cancel_own_event_from_its_callback_is_noop(self):
        sim = Simulator()
        holder = {}

        def fire():
            holder["event"].cancel()  # already fired: must not double-count

        holder["event"] = sim.schedule(1.0, fire)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending() == 0
        assert sim.processed_events == 2

    def test_cancel_sibling_at_same_timestamp_from_callback(self):
        sim = Simulator()
        fired = []
        second = None

        def first_cb():
            fired.append("a")
            second.cancel()  # same-timestamp sibling, not yet fired

        sim.schedule(1.0, first_cb)
        second = sim.schedule(1.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a"]
        assert sim.pending() == 0

    def test_stop_then_resume_processes_remaining_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert sim.now == 1.0  # stop leaves now at the stopping event
        sim.run()  # resumes: _stopped resets on entry
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_compaction_collects_tombstones_below_heap_top(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: fired.append("top"))  # stays the heap top
        doomed = [sim.schedule(1.0 + i * 1e-6, lambda: fired.append("no"))
                  for i in range(5000)]
        for event in doomed:
            event.cancel()
        # bounded compaction rebuilt the heap without popping anything:
        # the cancelled entries below the top are gone, not just skipped
        assert sim.compactions >= 1
        assert len(sim._heap) < 200
        assert sim.pending() == 1
        sim.run()
        assert fired == ["top"]

    def test_cancelled_ratio_diagnostic(self):
        sim = Simulator()
        assert sim.cancelled_ratio == 0.0
        events = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        events[0].cancel()
        assert sim.cancelled_ratio == pytest.approx(0.1)
        sim.run()
        assert sim.cancelled_ratio == 0.0


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]

    def test_restart_replaces_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_armed_and_expiry(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(3.0)
        assert timer.armed
        assert timer.expiry == 3.0

    def test_restart_from_own_callback(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, cb)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert not timer.armed

    def test_lazy_push_back_fires_once_at_final_expiry(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(2.0)  # push-back: heap untouched
        timer.start(3.0)  # push-back again
        assert timer.expiry == 3.0
        assert sim.pending() == 1
        assert sim.cancelled_ratio == 0.0  # no tombstones from push-backs
        sim.run()
        assert fired == [3.0]
        # the stale entry fired once at t=1 and chased straight to the
        # real deadline: two heap entries total, not one per push-back
        assert sim.processed_events == 2

    def test_pull_earlier_reschedules(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(5.0)
        timer.start(1.0)  # earlier: must cancel and re-push
        sim.run()
        assert fired == [1.0]

    def test_cancel_during_lazy_window_suppresses_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(2.0)  # lazy: underlying entry still at t=1
        timer.cancel()
        assert not timer.armed
        sim.run()
        assert fired == []

    def test_push_back_after_fire_rearms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        timer.stop()
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: (fired.append(sim.now),
                                                 timer.stop()))
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0]

    def test_first_delay_override(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(first_delay=0.25)
        sim.run(until=1.5)
        timer.stop()
        assert fired == [0.25, 1.25]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_period_change_takes_effect_next_firing(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            timer.period = 0.5

        timer = PeriodicTimer(sim, 1.0, cb)
        timer.start()
        sim.run(until=2.2)
        timer.stop()
        assert fired == [1.0, 1.5, 2.0]

    def test_start_from_own_callback_leaves_no_duplicate(self):
        # regression: a callback calling start() mid-fire used to have its
        # freshly scheduled event overwritten by the post-callback
        # reschedule, leaving an uncancellable duplicate cadence
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) == 1:
                timer.start(0.5)  # restart the cadence from t=1.0

        timer = PeriodicTimer(sim, 1.0, cb)
        timer.start()
        sim.run(until=4.0)
        timer.stop()
        assert fired == [1.0, 1.5, 2.5, 3.5]

    def test_stop_from_own_callback_after_restart(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            timer.start(0.25)
            timer.stop()

        timer = PeriodicTimer(sim, 1.0, cb)
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0]
        assert sim.pending() == 0
