"""Tests for the declarative Experiment API (panels, reducers, registry,
``run-spec``) and the figure-migration pins.

The golden fixtures under ``tests/data/`` were captured from the
pre-migration imperative ``figN`` modules (``capture_golden.py``): every
migrated panel must reproduce those results byte-identically (after a
canonicalizing JSON round-trip), and ``run-fig N --dry-run`` plus the
validation pair grids must be unchanged.
"""

import importlib
import importlib.util
import json
from pathlib import Path

import pytest

from repro.campaign import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.campaign.cli import main as cli_main
from repro.campaign.registry import build_topology, validate_spec_kinds
from repro.errors import CampaignError, ExperimentError
from repro.experiments.api import (
    Experiment,
    Panel,
    SearchSpec,
    experiment_kinds,
    figure_numbers,
    get_experiment,
    load_experiment_file,
    run_panel,
    validate_experiment,
)
from repro.experiments.reducers import collector_metric, get_reducer
from repro.units import KBYTE

DATA = Path(__file__).parent / "data"
SPECS_DIR = Path(__file__).parent.parent / "examples" / "specs"


def _load_capture_module():
    spec = importlib.util.spec_from_file_location(
        "capture_golden", DATA / "capture_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_CAPTURE = _load_capture_module()
GOLDEN = json.loads((DATA / "experiment_golden.json").read_text())
CLI_PINS = json.loads((DATA / "cli_pins.json").read_text())


def _flow_base(**overrides) -> ScenarioSpec:
    spec = dict(
        protocol="RCP",
        topology=TopologySpec("single_rooted"),
        workload=WorkloadSpec("fig3.aggregation", {
            "n_flows": 2,
            "mean_size": 100 * KBYTE,
            "mean_deadline": None,
        }),
        engine="flow",
    )
    spec.update(overrides)
    return ScenarioSpec(**spec)


# -- byte-identical figure outputs ------------------------------------------------


class TestGoldenFigureOutputs:
    """Every migrated panel reproduces the pre-migration output."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_panel_matches_pre_migration_output(self, name):
        target, kwargs = _CAPTURE.GOLDEN_CALLS[name]
        module_name, _, attr = target.partition(":")
        func = getattr(importlib.import_module(module_name), attr)
        assert _CAPTURE.canonicalize(func(**kwargs)) == GOLDEN[name]


class TestCliPins:
    @pytest.mark.parametrize("figure", sorted(CLI_PINS["dry_run"], key=int))
    def test_run_fig_dry_run_output_unchanged(self, figure, capsys):
        assert cli_main(["run-fig", figure, "--dry-run"]) == 0
        assert capsys.readouterr().out == CLI_PINS["dry_run"][figure]

    @pytest.mark.parametrize("mode", ["quick", "full"])
    def test_validation_pair_grids_unchanged(self, mode):
        from repro.validate.pairs import default_pairs

        got = [
            {"name": p.name, "family": p.family, "packet_key": p.packet.key,
             "fluid_key": p.fluid.key,
             "tolerance": [p.tolerance.fct_rtol, p.tolerance.app_tput_atol,
                           p.tolerance.completion_atol]}
            for p in default_pairs(mode == "quick")
        ]
        assert got == CLI_PINS["pairs"][mode]

    def test_no_figures_dict_remains(self):
        import repro.campaign.cli as cli

        assert not hasattr(cli, "FIGURES")


# -- spec hashing -----------------------------------------------------------------


def _pinned_panel() -> Panel:
    return Panel(
        name="pinned",
        base=_flow_base(),
        axes=(
            ("protocol", ("RCP", "D3")),
            ("scheme", (("plain", {"options.n_subflows": 1}),
                        ("striped", {"options.n_subflows": 2}))),
            ("seed", (1, 2)),
        ),
        reducer="series",
        reducer_params={"x": "protocol", "metric": "mean_fct"},
    )


class TestSpecHashes:
    def test_panel_key_is_stable_across_versions(self):
        """Pinned: canonicalization changes silently break caches and
        user spec files."""
        assert _pinned_panel().key == (
            "1fc9d5eec1d908b2616fdf38c05c6bac"
            "eb2b2db82ab57427037d47ee12ddad5f"
        )

    def test_experiment_key_is_stable_across_versions(self):
        experiment = Experiment(name="pinned-exp", title="ignored",
                                panels=(_pinned_panel(),),
                                meta={"note": "pin"})
        assert experiment.key == (
            "371fc2ce8f83f360a6b06ebf05cb97bc"
            "58d7f72a97efd67a64fec620f3d024bf"
        )

    def test_title_and_wraps_do_not_change_the_key(self):
        a = _pinned_panel()
        b = Panel(name="pinned", title="a title", wraps="mod:func",
                  wraps_kwargs={"x": 1}, base=a.base, axes=a.axes,
                  reducer=a.reducer, reducer_params=a.reducer_params)
        assert a.key == b.key

    def test_canonical_roundtrip_preserves_key(self):
        panel = _pinned_panel()
        restored = Panel.from_dict(
            json.loads(json.dumps(panel.canonical()))
        )
        assert restored.key == panel.key
        assert [s.key for s in restored.expand()] == \
            [s.key for s in panel.expand()]

    def test_search_panel_roundtrip(self):
        panel = Panel(
            name="searchy",
            base=_flow_base(),
            axes=(("protocol", ("RCP",)),),
            search=SearchSpec(axis="workload.n_flows", target=0.5,
                              seeds=(1, 2), hi=8, scale=2.0),
        )
        restored = Panel.from_dict(json.loads(json.dumps(panel.canonical())))
        assert restored.key == panel.key
        assert restored.search == panel.search


# -- grid expansion ---------------------------------------------------------------


class TestPanelGrids:
    def test_labeled_axis_sets_multiple_fields(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("scheme", (("one", {"protocol": "RCP"}),
                              ("two", {"protocol": "PDQ(Full)",
                                       "options.criticality_mode":
                                       "random"}))),),
        )
        cells = panel.cells()
        assert [combo["scheme"] for combo, _ in cells] == ["one", "two"]
        assert cells[0][1].options == {}
        assert cells[1][1].protocol == "PDQ(Full)"
        assert cells[1][1].options == {"criticality_mode": "random"}

    def test_composite_axis_zips_fields(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol,seed", (("RCP", 1), ("D3", 2))),),
        )
        cells = panel.cells()
        assert len(cells) == 2
        assert cells[1][0]["protocol,seed"] == ("D3", 2)
        assert cells[1][1].protocol == "D3"
        assert cells[1][1].seed == 2

    def test_composite_axis_arity_checked(self):
        with pytest.raises(CampaignError):
            Panel(name="p", base=_flow_base(),
                  axes=(("protocol,seed", (("RCP",),)),)).cells()

    def test_exclude_drops_matching_cells(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("engine", ("packet", "flow")),
                  ("protocol", ("RCP", "TCP"))),
            exclude=({"engine": "flow", "protocol": "TCP"},),
        )
        combos = [combo for combo, _ in panel.cells()]
        assert len(combos) == 3
        assert {"engine": "flow", "protocol": "TCP"} not in combos

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            Panel(name="p", base=_flow_base(),
                  axes=(("protocol", ()),)).cells()

    def test_panel_shape_validation(self):
        with pytest.raises(CampaignError):
            Panel(name="nothing")
        with pytest.raises(CampaignError):
            Panel(name="both", runner="fig1.motivation", base=_flow_base())
        with pytest.raises(CampaignError):
            Panel(name="search-needs-base",
                  search=SearchSpec(axis="workload.n_flows"))

    def test_exclude_must_name_declared_axes(self):
        with pytest.raises(CampaignError, match="unknown axis"):
            Panel(name="p", base=_flow_base(),
                  axes=(("engine", ("packet", "flow")),),
                  exclude=({"engin": "flow"},))

    def test_exclude_rejected_on_explicit_specs(self):
        with pytest.raises(CampaignError, match="explicit spec list"):
            Panel(name="p", specs=(_flow_base(),),
                  exclude=({"protocol": "TCP"},))

    def test_custom_panel_rejects_ignored_reducer(self):
        with pytest.raises(CampaignError, match="silently ignored"):
            Panel(name="p", runner="fig1.motivation", reducer="series")

    def test_custom_panel_wrappers_accept_positional_args(self):
        from repro.experiments.fig6 import fig6_panel
        from repro.experiments.fig9 import fig9b_panel

        assert fig6_panel(2).params == {"n_flows": 2}
        assert fig9b_panel((0.0,), ("PDQ(Full)",)).params == {
            "loss_rates": (0.0,), "protocols": ("PDQ(Full)",),
        }
        with pytest.raises(TypeError):
            fig6_panel(1, 2, 3, 4, 5)  # more args than the runner takes

    def test_duplicate_panel_names_rejected(self):
        panel = Panel(name="p", base=_flow_base(),
                      axes=(("seed", (1,)),))
        with pytest.raises(CampaignError):
            Experiment(name="e", panels=(panel, panel))


# -- execution --------------------------------------------------------------------


class TestPanelExecution:
    def test_grid_panel_series_reducer(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP", "D3")), ("seed", (1, 2))),
            reducer="series",
            reducer_params={"x": "protocol", "metric": "mean_fct"},
        )
        result = run_panel(panel)
        assert set(result) == {"RCP", "D3"}
        assert all(v > 0 for v in result.values())

    def test_table_reducer_schema(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP",)), ("seed", (1, 2))),
            reducer="table",
            reducer_params={"metrics": ["mean_fct",
                                        "completion_fraction"]},
        )
        result = run_panel(panel)
        assert result["columns"] == ["protocol", "mean_fct",
                                     "completion_fraction"]
        assert len(result["rows"]) == 1
        assert result["rows"][0][0] == "RCP"
        assert result["rows"][0][2] == 1.0

    def test_search_capped_at_hi(self):
        # target 0.0 always passes; grow=False returns hi after two probes
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP",)),),
            search=SearchSpec(axis="workload.n_flows", target=0.0,
                              metric="completion_fraction", hi=4,
                              grow=False),
            reducer="series",
            reducer_params={"x": "protocol"},
        )
        assert run_panel(panel) == {"RCP": 4}

    def test_search_require_deadlines_short_circuits(self):
        # the workload draws no deadlines, so every probe passes without
        # running a single scenario
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP",)),),
            search=SearchSpec(axis="workload.n_flows", target=0.99,
                              hi=4, grow=False, require_deadlines=True),
            reducer="series",
            reducer_params={"x": "protocol"},
        )
        assert run_panel(panel) == {"RCP": 4}

    def test_normalize_to_flat_series(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP", "D3")), ("seed", (1,))),
            reducer="series",
            reducer_params={"x": "protocol", "metric": "mean_fct",
                            "normalize_to": "RCP"},
        )
        result = run_panel(panel)
        assert result["RCP"] == 1.0

    def test_agreement_reducer_needs_engine_axis(self):
        panel = Panel(
            name="p", base=_flow_base(),
            axes=(("protocol", ("RCP",)),),
            reducer="validate.agreement",
        )
        with pytest.raises(ExperimentError):
            run_panel(panel)

    def test_run_experiment_keys_by_panel(self):
        from repro.experiments.api import run_experiment

        experiment = Experiment(name="e", panels=(
            Panel(name="a", base=_flow_base(), axes=(("seed", (1,)),),
                  reducer="series",
                  reducer_params={"x": "seed", "metric": "mean_fct"}),
        ))
        result = run_experiment(experiment)
        assert list(result) == ["a"]


# -- registries and errors --------------------------------------------------------


class TestRegistries:
    def test_figures_and_validate_registered(self):
        kinds = experiment_kinds()
        assert "validate" in kinds
        assert figure_numbers() == [1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]
        assert [p.name for p in get_experiment("fig3").panels] == [
            "fig3a", "fig3b", "fig3c", "fig3d", "fig3e",
        ]

    def test_unknown_kind_errors_suggest_close_matches(self):
        with pytest.raises(CampaignError, match="fattree"):
            build_topology("fatree", {})
        with pytest.raises(CampaignError,
                           match="Did you mean 'fig3.aggregation'"):
            validate_spec_kinds(_flow_base(
                workload=WorkloadSpec("fig3.agregation", {"n_flows": 2}),
            ))
        with pytest.raises(CampaignError, match="Did you mean 'packet'"):
            ScenarioSpec(
                protocol="RCP", topology=TopologySpec("single_rooted"),
                workload=WorkloadSpec("empty"), engine="packat",
            )
        with pytest.raises(CampaignError, match="Did you mean 'series'"):
            get_reducer("serie")
        with pytest.raises(CampaignError, match="Did you mean 'mean_fct'"):
            collector_metric("mean_fc")
        with pytest.raises(CampaignError, match="Did you mean 'fig5'"):
            get_experiment("fig55")

    def test_experiment_registry_unknown(self):
        with pytest.raises(CampaignError, match="registered"):
            get_experiment("no-such-experiment")


# -- run-spec files ---------------------------------------------------------------


EXAMPLE_SPECS = sorted(SPECS_DIR.glob("*.json"))


class TestRunSpecFiles:
    def test_examples_exist(self):
        assert len(EXAMPLE_SPECS) >= 2

    @pytest.mark.parametrize(
        "path", EXAMPLE_SPECS, ids=[p.stem for p in EXAMPLE_SPECS]
    )
    def test_example_file_roundtrip(self, path):
        experiment = load_experiment_file(str(path))
        # every registry reference resolves and every grid expands
        validate_experiment(experiment)
        restored = Experiment.from_dict(
            json.loads(json.dumps(experiment.canonical()))
        )
        assert restored.key == experiment.key

    @pytest.mark.parametrize(
        "path", EXAMPLE_SPECS, ids=[p.stem for p in EXAMPLE_SPECS]
    )
    def test_example_file_dry_run_cli(self, path, capsys):
        assert cli_main(["run-spec", str(path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run: no scenarios executed" in out

    def test_smallest_example_runs_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = cli_main([
            "run-spec", str(SPECS_DIR / "aggregation_deadline_sweep.json"),
            "--jobs", "0", "--no-cache", "--out", str(out_path),
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "aggregation-deadline-sweep"
        series = payload["results"]["app-throughput"]
        assert set(series) == {"PDQ(Full)", "D3", "RCP"}
        table = payload["results"]["summary-table"]
        assert table["columns"][0] == "protocol"

    def test_run_spec_caches_scenarios(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["run-spec",
                str(SPECS_DIR / "aggregation_deadline_sweep.json"),
                "--jobs", "0", "--cache", cache]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" in out

    def test_bad_file_reports_campaign_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "bad",
            "panels": [{
                "name": "p",
                "base": {
                    "protocol": "RCP",
                    "topology": {"kind": "single_rooted"},
                    "workload": {"kind": "no.such.kind"},
                    "engine": "flow",
                },
                "axes": [["seed", [1]]],
            }],
        }))
        assert cli_main(["run-spec", str(bad), "--dry-run"]) == 1
        assert "unknown workload kind" in capsys.readouterr().err

    def test_unknown_reducer_caught_by_dry_run(self, tmp_path, capsys):
        bad = tmp_path / "bad_reducer.json"
        bad.write_text(json.dumps({
            "name": "bad",
            "panels": [{
                "name": "p",
                "base": {
                    "protocol": "RCP",
                    "topology": {"kind": "single_rooted"},
                    "workload": {"kind": "empty"},
                    "engine": "flow",
                },
                "axes": [["seed", [1]]],
                "reducer": "serie",
            }],
        }))
        assert cli_main(["run-spec", str(bad), "--dry-run"]) == 1
        assert "Did you mean 'series'" in capsys.readouterr().err

    def test_not_json_reports_campaign_error(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("{not json")
        assert cli_main(["run-spec", str(bad), "--dry-run"]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_misspelled_panel_field_rejected(self):
        with pytest.raises(CampaignError, match="did you mean 'exclude'"):
            Panel.from_dict({
                "name": "p",
                "base": _flow_base().canonical(),
                "axes": [["seed", [1]]],
                "exlude": [{"protocol": "TCP"}],
            })
        with pytest.raises(CampaignError,
                           match="did you mean 'require_deadlines'"):
            SearchSpec.from_dict({"axis": "workload.n_flows",
                                  "require_deadline": True})
        with pytest.raises(CampaignError, match="did you mean 'panels'"):
            Experiment.from_dict({"name": "e", "panles": []})

    def test_composite_axis_result_survives_cli_json(self, tmp_path,
                                                     capsys):
        """Tuple-keyed reducer output must not crash the CLI dump."""
        spec = tmp_path / "composite.json"
        spec.write_text(json.dumps({
            "name": "composite",
            "panels": [{
                "name": "p",
                "base": _flow_base().canonical(),
                "axes": [["protocol,seed", [["RCP", 1], ["D3", 2]]]],
                "reducer": "series",
                "reducer_params": {"x": "protocol,seed",
                                   "metric": "mean_fct"},
            }],
        }))
        rc = cli_main(["run-spec", str(spec), "--jobs", "0", "--no-cache"])
        assert rc == 0
        assert "('RCP', 1)" in capsys.readouterr().out


class TestValidateExperimentTolerances:
    def test_edge_panels_declare_harness_tolerances(self):
        """The registered validate experiment must gate edge cells with
        the same bounds the harness path (edge_pairs) pins."""
        from repro.validate.pairs import SINGLE_FLOW_RTOL

        experiment = get_experiment("validate")
        single = experiment.panel("edge-single-agreement")
        assert single.reducer_params["fct_rtol_by_protocol"] == \
            SINGLE_FLOW_RTOL
        empty = experiment.panel("edge-empty-agreement")
        assert empty.reducer_params["fct_rtol"] == 0.0
        assert empty.reducer_params["completion_atol"] == 0.15
