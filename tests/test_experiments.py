"""Smoke tests for the per-figure experiment harness (tiny scales)."""

import pytest

from repro.experiments import binary_search_max, make_stack
from repro.experiments.fig1 import run as run_fig1
from repro.experiments.fig3 import run_fig3a, run_fig3d
from repro.experiments.fig4 import pattern_flows
from repro.experiments.fig5 import vl2_workload
from repro.experiments.fig8 import permutation_workload, topology_for
from repro.experiments.fig10 import run_fig10
from repro.experiments.scenario import normalize, run_flow_level
from repro.experiments.tables import format_table
from repro.errors import ExperimentError
from repro.units import KBYTE, MSEC


class TestScenarioHelpers:
    def test_make_stack_names(self):
        for name in ["PDQ(Full)", "PDQ(ES+ET)", "PDQ(ES)", "PDQ(Basic)",
                     "D3", "RCP", "TCP"]:
            stack = make_stack(name)
            assert stack.name == name

    def test_make_stack_unknown(self):
        with pytest.raises(ExperimentError):
            make_stack("QUIC")

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_requires_reference(self):
        with pytest.raises(ExperimentError):
            normalize({"a": 2.0}, "missing")


class TestBinarySearch:
    def test_finds_threshold(self):
        assert binary_search_max(lambda n: n <= 23, lo=1, hi=64) == 23

    def test_zero_when_lo_fails(self):
        assert binary_search_max(lambda n: False, lo=1, hi=8) == 0

    def test_grows_hi(self):
        assert binary_search_max(lambda n: n <= 100, lo=1, hi=4) == 100

    def test_bad_range(self):
        with pytest.raises(ExperimentError):
            binary_search_max(lambda n: True, lo=0, hi=4)


class TestFig1:
    def test_matches_paper_exactly(self):
        result = run_fig1()
        assert result["fair_sharing_completions"] == [3.0, 5.0, 6.0]
        assert result["sjf_completions"] == [1.0, 3.0, 6.0]
        assert result["fair_sharing_mean"] == pytest.approx(4.67, abs=0.01)
        assert result["sjf_mean"] == pytest.approx(3.33, abs=0.01)
        assert result["edf_deadline_misses"] == 0
        assert result["d3_failing_orders"] == 5


class TestFig3Reduced:
    def test_fig3a_ordering(self):
        """At a contended load, PDQ beats the deadline-agnostic schemes."""
        result = run_fig3a(flow_counts=(8,),
                           protocols=("PDQ(Full)", "RCP"), seeds=(1,))
        assert result["PDQ(Full)"][8] >= result["RCP"][8]
        assert result["Optimal"][8] >= result["PDQ(Full)"][8] - 0.15

    def test_fig3d_pdq_closer_to_optimal_than_tcp(self):
        result = run_fig3d(flow_counts=(5,),
                           protocols=("PDQ(Full)", "TCP"), seeds=(1,))
        assert result["PDQ(Full)"][5] < result["TCP"][5]
        assert result["PDQ(Full)"][5] >= 1.0  # optimal is a lower bound


class TestFig4Workloads:
    @pytest.mark.parametrize("pattern", [
        "Aggregation", "Stride(1)", "Stride(N/2)", "Staggered(0.7)",
        "Staggered(0.3)", "RandomPermutation",
    ])
    def test_pattern_flows_valid(self, pattern):
        flows = pattern_flows(pattern, 10, seed=1,
                              mean_deadline=20 * MSEC)
        assert len(flows) == 10
        assert all(f.src != f.dst for f in flows)
        assert all(f.has_deadline for f in flows)
        assert len({f.fid for f in flows}) == 10

    def test_unknown_pattern(self):
        with pytest.raises(ExperimentError):
            pattern_flows("Mesh", 4, seed=1)


class TestFig5Workload:
    def test_vl2_workload_mixes_deadlines(self):
        flows = vl2_workload(rate_per_sec=3000, duration=0.05, seed=1)
        assert len(flows) > 50
        with_deadline = sum(1 for f in flows if f.has_deadline)
        assert 0 < with_deadline < len(flows)

    def test_arrivals_within_window(self):
        flows = vl2_workload(rate_per_sec=2000, duration=0.05, seed=2)
        assert all(0 <= f.arrival < 0.05 for f in flows)


class TestFig8Helpers:
    def test_topology_families(self):
        assert topology_for("fattree", 16).stats()["hosts"] == 16
        assert topology_for("bcube", 16).stats()["hosts"] == 16
        assert topology_for("jellyfish", 16).stats()["hosts"] >= 16

    def test_unknown_family(self):
        with pytest.raises(ExperimentError):
            topology_for("torus", 16)

    def test_permutation_workload_size(self):
        topo = topology_for("fattree", 16)
        flows = permutation_workload(topo, flows_per_server=2, seed=1)
        assert len(flows) == 32


class TestFig10Reduced:
    def test_perfect_beats_rcp(self):
        result = run_fig10(distributions=("uniform",), seeds=(1, 2))
        row = result["uniform"]
        assert row["PDQ perfect"] < row["RCP"]

    def test_flow_level_pdq_runs_with_modes(self):
        from repro.topology import SingleBottleneck
        from repro.workload.patterns import aggregation_flows
        from repro.workload.sizes import uniform_sizes

        flows = aggregation_flows(
            [f"send{i}" for i in range(4)], "recv",
            uniform_sizes(4, 100 * KBYTE, rng=1), rng=1,
        )
        for mode in ("random", "estimate"):
            metrics = run_flow_level(SingleBottleneck(4), "PDQ(Full)",
                                     flows, criticality_mode=mode)
            assert len(metrics.completed_records()) == 4


class TestTables:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in text
